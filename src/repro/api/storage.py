"""Pluggable storage backends behind the :class:`~repro.api.Dataset` handle.

A :class:`StorageBackend` turns a *location* (a path, directory or in-memory
name) into a raw 2-D matrix plus optional labels, and knows how to create new
datasets at such a location.  Three backends ship with the library:

``memory``
    Named in-memory arrays.  The degenerate backend that makes the
    transparency property testable — the same :class:`~repro.api.Dataset`
    code path works on plain ``ndarray`` data.
``mmap``
    A single M3 binary matrix file served through ``numpy.memmap`` — the
    paper's storage model.
``shard``
    A directory of M3 files tiling the matrix row-wise (see
    :mod:`repro.api.sharded`); row chunks are served across shard boundaries.
``shard`` (compressed v2)
    The same scheme also serves blocked v2 directories — shards are
    ``.m3b`` files of independently compressed fixed-size blocks (codec,
    ``block_rows``, row/column layout and on-disk ``storage_dtype`` recorded
    in the manifest).  Opening is transparent: the manifest version picks the
    matrix class, and the streaming pipeline decodes blocks on its compute
    pool.  Write one with ``session.create(spec, X, y, codec="zlib")`` or
    ``m3 convert``.
``shard`` (appendable)
    Sharded directories (v1 and v2) are also *appendable*: ``Dataset.append``
    streams rows into an open tail shard and commits a new manifest
    generation (``manifest.<gen>.json`` + ``CURRENT``, atomic renames), while
    open handles keep serving the generation they were opened at — the handle
    pool's freshness fingerprint is the manifest generation, so readers
    mid-scan never see the manifest flip.  ``Session.refresh`` opts a handle
    into the latest generation; ``m3 traind`` tails committed generations and
    republishes freshly trained models.

Locations are written as URI-style *specs* — ``"mmap:///data/train.m3"``,
``"shard:///data/train/"``, ``"memory://train"`` — or as bare filesystem
paths, in which case the scheme is inferred (directory → ``shard``,
otherwise ``mmap``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.api.sharded import (
    CURRENT_NAME,
    MANIFEST_NAME,
    ShardAppender,
    ShardedMatrix,
    generation_manifest_name,
    manifest_generation,
    open_sharded_matrix,
    read_manifest,
    write_sharded_dataset,
)
from repro.data.formats import (
    HEADER_SIZE,
    open_binary_matrix,
    read_binary_matrix_header,
    write_binary_matrix,
)

SpecLike = Union[str, Path]


@dataclass(frozen=True)
class DatasetSpec:
    """A parsed dataset spec: a backend scheme plus a backend location."""

    scheme: str
    location: str

    def __str__(self) -> str:
        return f"{self.scheme}://{self.location}"


def parse_spec(spec: SpecLike) -> DatasetSpec:
    """Parse ``spec`` into a :class:`DatasetSpec`.

    ``Path`` objects and plain strings without a scheme infer the backend from
    the filesystem: an existing directory (or a trailing separator, or a
    directory containing a shard manifest) selects ``shard``; everything else
    selects ``mmap``.
    """
    if isinstance(spec, DatasetSpec):
        return spec
    if isinstance(spec, Path):
        return DatasetSpec(scheme=_infer_path_scheme(str(spec)), location=str(spec))
    if not isinstance(spec, str):
        raise TypeError(f"dataset spec must be a str or Path, got {type(spec).__name__}")
    if "://" in spec:
        scheme, _, location = spec.partition("://")
        scheme = scheme.lower()
        if not location:
            raise ValueError(f"dataset spec {spec!r} has an empty location")
        if scheme == "file":
            scheme = _infer_path_scheme(location)
        return DatasetSpec(scheme=scheme, location=location)
    return DatasetSpec(scheme=_infer_path_scheme(spec), location=spec)


def _infer_path_scheme(path_str: str) -> str:
    if path_str.endswith(("/", "\\")) or Path(path_str).is_dir():
        return "shard"
    return "mmap"


@dataclass
class StorageHandle:
    """What a backend returns from :meth:`StorageBackend.open`.

    Attributes
    ----------
    matrix:
        The raw 2-D matrix (``ndarray``, ``memmap`` or
        :class:`~repro.api.sharded.ShardedMatrix`).  The :class:`Dataset`
        wraps it in an :class:`~repro.core.mmap_matrix.MmapMatrix` for trace
        recording and advice.
    labels:
        Optional label vector aligned with the matrix rows.
    data_offset:
        Byte offset of row 0 within the backing file, so recorded trace
        offsets are file offsets (0 when there is no single backing file).
    metadata:
        Backend-specific facts (shard count, file size, …) surfaced through
        ``Dataset.info()``.
    closer:
        Optional callable releasing backend resources.
    """

    matrix: Any
    labels: Optional[np.ndarray] = None
    data_offset: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)
    closer: Optional[Any] = None


def _stat_token(path: Path) -> Optional[Tuple[int, int]]:
    """``(mtime_ns, size)`` of ``path``, or ``None`` when it does not exist."""
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def _reject_options(scheme: str, options: Dict[str, Any]) -> None:
    """Fail loudly on options a backend does not understand."""
    if options:
        raise TypeError(
            f"unexpected options for {scheme} backend: {sorted(options)}"
        )


class StorageBackend(abc.ABC):
    """Protocol implemented by every storage backend."""

    #: URI scheme the backend registers under.
    scheme: str = ""

    @abc.abstractmethod
    def open(self, location: str, mode: str = "r") -> StorageHandle:
        """Open the dataset at ``location`` and return its raw pieces."""

    @abc.abstractmethod
    def create(
        self,
        location: str,
        data: np.ndarray,
        labels: Optional[np.ndarray] = None,
        **options: Any,
    ) -> str:
        """Materialise ``data`` (and ``labels``) at ``location``; return it."""

    @abc.abstractmethod
    def info(self, location: str) -> Dict[str, Any]:
        """Describe the dataset at ``location`` without loading its data."""

    @abc.abstractmethod
    def exists(self, location: str) -> bool:
        """Whether a dataset exists at ``location``."""

    def fingerprint(self, location: str) -> Any:
        """A cheap freshness token for the dataset at ``location``.

        The session handle pool compares fingerprints before reusing a cached
        handle, so a dataset rewritten on disk between opens is re-opened
        instead of served from a stale memory map.  ``None`` (the default)
        means the backend has no rewrite signal to offer.
        """
        return None


class MemoryBackend(StorageBackend):
    """Named in-memory datasets, scoped to the owning :class:`Session`."""

    scheme = "memory"

    def __init__(self) -> None:
        self._store: Dict[str, Tuple[np.ndarray, Optional[np.ndarray]]] = {}

    def open(self, location: str, mode: str = "r") -> StorageHandle:
        if location not in self._store:
            raise KeyError(
                f"no in-memory dataset named {location!r}; create it with "
                f"Session.create('memory://{location}', data, labels)"
            )
        data, labels = self._store[location]
        return StorageHandle(
            matrix=data,
            labels=labels,
            data_offset=0,
            metadata={
                "backend": self.scheme,
                "rows": int(data.shape[0]),
                "cols": int(data.shape[1]),
                "dtype": str(data.dtype),
                "has_labels": labels is not None,
                "nbytes": int(data.nbytes),
            },
        )

    def create(
        self,
        location: str,
        data: np.ndarray,
        labels: Optional[np.ndarray] = None,
        **options: Any,
    ) -> str:
        _reject_options(self.scheme, options)
        data = np.asarray(data)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            if labels.shape != (data.shape[0],):
                raise ValueError(
                    f"labels must have shape ({data.shape[0]},), got {labels.shape}"
                )
        self._store[location] = (data, labels)
        return location

    def info(self, location: str) -> Dict[str, Any]:
        return self.open(location).metadata

    def exists(self, location: str) -> bool:
        return location in self._store


class MmapBackend(StorageBackend):
    """A single M3 binary matrix file served through ``numpy.memmap``."""

    scheme = "mmap"

    def open(self, location: str, mode: str = "r") -> StorageHandle:
        path = Path(location)
        data, labels, header = open_binary_matrix(path, mode=mode)
        return StorageHandle(
            matrix=data,
            labels=labels,
            data_offset=HEADER_SIZE,
            metadata={
                "backend": self.scheme,
                "path": str(path),
                "rows": header.rows,
                "cols": header.cols,
                "dtype": str(header.dtype),
                "has_labels": header.has_labels,
                "nbytes": header.data_bytes,
                "file_bytes": header.file_bytes,
            },
        )

    def create(
        self,
        location: str,
        data: np.ndarray,
        labels: Optional[np.ndarray] = None,
        **options: Any,
    ) -> str:
        _reject_options(self.scheme, options)
        write_binary_matrix(Path(location), data, labels)
        return location

    def info(self, location: str) -> Dict[str, Any]:
        header = read_binary_matrix_header(Path(location))
        return {
            "backend": self.scheme,
            "path": location,
            "rows": header.rows,
            "cols": header.cols,
            "dtype": str(header.dtype),
            "has_labels": header.has_labels,
            "nbytes": header.data_bytes,
            "file_bytes": header.file_bytes,
        }

    def exists(self, location: str) -> bool:
        return Path(location).is_file()

    def fingerprint(self, location: str) -> Any:
        return _stat_token(Path(location))


class ShardedBackend(StorageBackend):
    """A directory of M3 shard files tiling the matrix row-wise."""

    scheme = "shard"

    def __init__(self, default_shard_rows: Optional[int] = None) -> None:
        self.default_shard_rows = default_shard_rows

    def open(
        self, location: str, mode: str = "r", generation: Optional[int] = None
    ) -> StorageHandle:
        # Dispatches on the manifest: raw v1 directories open memmap-backed,
        # compressed v2 directories open as a CompressedShardedMatrix.
        # ``generation`` pins the open to one committed manifest generation
        # (None = latest); the matrix is a snapshot of that generation.
        matrix = open_sharded_matrix(Path(location), mode=mode, generation=generation)
        metadata = {
            "backend": self.scheme,
            "path": str(Path(location)),
            "rows": matrix.shape[0],
            "cols": matrix.shape[1],
            "dtype": str(matrix.dtype),
            "has_labels": matrix.manifest.has_labels,
            "nbytes": matrix.nbytes,
            "num_shards": matrix.num_shards,
            "generation": matrix.generation,
            # One file per shard: the parallel chunk pipeline sizes its
            # reader pool from this layout, and the readahead hinter's
            # posix_fadvise fallback targets these files directly.
            "shard_paths": [
                str(Path(location) / shard.filename)
                for shard in matrix.manifest.shards
            ],
        }
        if matrix.is_compressed:
            metadata.update(
                {
                    "codec": matrix.codec,
                    "block_rows": matrix.block_rows,
                    "layout": matrix.layout,
                    "storage_dtype": str(matrix.storage_dtype),
                    "compressed_bytes": matrix.compressed_nbytes,
                    "compression_ratio": matrix.manifest.ratio,
                }
            )
        return StorageHandle(
            matrix=matrix,
            # Labels stay a lazy per-shard view: in-core consumers materialise
            # them once via np.asarray, the streaming engine slices per chunk.
            labels=matrix.lazy_labels,
            data_offset=0,
            metadata=metadata,
            closer=matrix.close,
        )

    def create(
        self,
        location: str,
        data: np.ndarray,
        labels: Optional[np.ndarray] = None,
        **options: Any,
    ) -> str:
        shard_rows = options.pop("shard_rows", None) or self.default_shard_rows
        codec = options.pop("codec", None)
        block_rows = options.pop("block_rows", None)
        storage_dtype = options.pop("storage_dtype", None)
        layout = options.pop("layout", None)
        _reject_options(self.scheme, options)
        data = np.asarray(data)
        if shard_rows is None:
            # Default to ~4 shards so small datasets still exercise stitching.
            shard_rows = max(1, -(-int(data.shape[0]) // 4))
        write_sharded_dataset(
            Path(location),
            data,
            labels,
            shard_rows=shard_rows,
            codec=codec,
            block_rows=block_rows,
            storage_dtype=storage_dtype,
            layout=layout or "row",
        )
        return location

    def info(self, location: str) -> Dict[str, Any]:
        manifest = read_manifest(Path(location))
        info: Dict[str, Any] = {
            "backend": self.scheme,
            "path": str(Path(location)),
            "rows": manifest.rows,
            "cols": manifest.cols,
            "dtype": str(manifest.dtype),
            "has_labels": manifest.has_labels,
            "nbytes": manifest.rows * manifest.cols * manifest.dtype.itemsize,
            "num_shards": len(manifest.shards),
        }
        if manifest.generation > 0 or manifest.tail_shard is not None:
            # Appendable dataset: surface the generation protocol state.
            tail = manifest.tail_shard
            info.update(
                {
                    "generation": manifest.generation,
                    "committed_rows": manifest.rows,
                    "tail_shard": None if tail is None else tail.filename,
                    "tail_rows": 0 if tail is None else tail.rows,
                    "tail_sealed": tail is None,
                }
            )
        if manifest.codec is not None:
            info.update(
                {
                    "format_version": manifest.version,
                    "codec": manifest.codec,
                    "block_rows": manifest.block_rows,
                    "layout": manifest.layout,
                    "storage_dtype": str(manifest.storage_dtype or manifest.dtype),
                    "compressed_bytes": manifest.compressed_bytes,
                    "compression_ratio": manifest.ratio,
                    "shard_ratios": [
                        {"filename": s.filename, "ratio": s.ratio}
                        for s in manifest.shards
                    ],
                }
            )
        return info

    def exists(self, location: str) -> bool:
        directory = Path(location)
        return (directory / MANIFEST_NAME).is_file() or (
            directory / CURRENT_NAME
        ).is_file()

    def append(
        self,
        location: str,
        data: np.ndarray,
        labels: Optional[np.ndarray] = None,
        shard_rows: Optional[int] = None,
        trace: Any = None,
    ) -> int:
        """Append rows to the dataset, committing one new generation.

        Returns the committed generation number.  Open handles keep serving
        the generation they were opened at; re-open (``Session.refresh``)
        to see the new rows.  For sustained streams, hold a
        :class:`~repro.api.sharded.ShardAppender` directly instead of
        paying the manifest read per call.
        """
        appender = ShardAppender(
            Path(location),
            shard_rows=shard_rows or self.default_shard_rows,
            trace=trace,
        )
        return appender.append(data, labels).generation

    def fingerprint(self, location: str) -> Any:
        directory = Path(location)
        generation = manifest_generation(directory)
        if generation is not None and generation > 0:
            # Appendable dataset: the generation number *is* the freshness
            # signal — committed generations are immutable, so the handle
            # pool re-opens exactly when CURRENT advances.  The stat token
            # of the (immutable) generation manifest guards against the
            # directory being wholesale re-created at the same generation.
            return (
                "gen",
                generation,
                _stat_token(directory / generation_manifest_name(generation)),
            )
        tokens = [_stat_token(directory / MANIFEST_NAME)]
        try:
            manifest = read_manifest(directory)
        except (ValueError, OSError, KeyError):
            return tuple(tokens)
        tokens.extend(_stat_token(directory / shard.filename) for shard in manifest.shards)
        return tuple(tokens)


#: Default backend classes, keyed by URI scheme.
BACKEND_REGISTRY: Dict[str, Type[StorageBackend]] = {
    MemoryBackend.scheme: MemoryBackend,
    MmapBackend.scheme: MmapBackend,
    ShardedBackend.scheme: ShardedBackend,
}


def register_backend(backend_class: Type[StorageBackend]) -> Type[StorageBackend]:
    """Register a backend class under its ``scheme`` (usable as a decorator)."""
    if not backend_class.scheme:
        raise ValueError(f"{backend_class.__name__} must define a non-empty scheme")
    BACKEND_REGISTRY[backend_class.scheme] = backend_class
    return backend_class


def make_backend(scheme: str) -> StorageBackend:
    """Instantiate the registered backend for ``scheme``."""
    try:
        backend_class = BACKEND_REGISTRY[scheme]
    except KeyError:
        known = ", ".join(sorted(BACKEND_REGISTRY))
        raise ValueError(
            f"unknown storage backend scheme {scheme!r} (known: {known})"
        ) from None
    return backend_class()
