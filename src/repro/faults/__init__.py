"""Seeded deterministic fault injection for the whole pipeline.

Every robustness claim in this repository is testable because the code
paths that can fail in production — positioned reads, block decodes,
buffer-pool leases, append commits, trainer polls, server dispatch —
carry a named **injection site**.  A :class:`FaultPlan` arms a subset of
those sites with a probability, a fire budget and a seed; when the plan
is active, :func:`maybe_fire` raises :class:`InjectedFault` at armed
sites exactly as a real ``EIO`` / torn write / poisoned payload would,
and the hardening built on top (checksums, :mod:`repro.faults.retry`,
bounded waits, serving degradation) has to absorb it.

Zero cost when off
------------------
Mirrors :mod:`repro.analysis.runtime`: with no plan active (the default)
each site costs one function call and a ``None`` check — nothing is
parsed, no RNG is consulted, no lock is taken.  Sites sit at *block*
granularity (one check per ~1 MiB fetch/decode, per lease, per commit
step), never per row, which is what keeps the disabled overhead inside
the ``BENCH_faults.json`` budget (≤ 1.03× streaming fit).

Activation
----------
* ``REPRO_FAULTS=<spec>`` in the environment (parsed once, lazily), or
* ``Session(faults=<spec or FaultPlan>)``, or
* :func:`set_fault_plan` directly (tests use this for scoping).

Spec grammar (also accepted by :meth:`FaultPlan.parse`)::

    spec  := rule ("," rule)*
    rule  := site (":" key "=" value)*
    key   := "p" (probability, default 1.0)
           | "n" (max fires; default 1, n<=0 means unlimited)
           | "seed" (per-rule RNG seed, default 0)

    REPRO_FAULTS="read.pread:p=0.5:n=2:seed=7,decode.block"

Determinism: each rule draws from its own ``random.Random`` seeded by
``seed`` mixed with the site name, so a single-threaded run fires at the
same call ordinals every time.  (Across reader *threads* the interleaving
of draws is scheduling-dependent — chaos tests pin ``p=1.0`` with a fire
budget when they need exact behaviour.)

The site catalogue lives in :data:`SITES` (and, prose-form, in
``src/repro/faults/README.md``); :meth:`FaultPlan.parse` rejects unknown
sites so a typo cannot silently disarm a chaos run.
"""

from __future__ import annotations

import os
import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.analysis.runtime import make_lock
from repro.faults.retry import RetriesExhausted, RetryPolicy, policy_for

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "SITES",
    "fault_sites",
    "active_plan",
    "set_fault_plan",
    "faults_enabled",
    "maybe_fire",
    "should_fire",
    "RetryPolicy",
    "RetriesExhausted",
    "policy_for",
]


#: Every named injection site threaded through the real code paths.
#: ``FaultPlan.parse`` validates against this catalogue.
SITES: Dict[str, str] = {
    "read.pread": (
        "formats_v2.BlockedMatrixReader._pread — the positioned read every "
        "v2 block/label fetch goes through"
    ),
    "read.gather": (
        "chunk-pipeline reader gathering raw v1 rows out of shard memmaps"
    ),
    "decode.block": "codec decode of one coded block payload",
    "pool.lease": "ChunkBufferPool lease acquisition in a reader thread",
    "append.pre_fsync": (
        "ShardAppender durability point — before fsync of freshly landed "
        "bytes"
    ),
    "append.pre_rename": (
        "ShardAppender commit — before the atomic tmp→final rename"
    ),
    "append.post_rename": (
        "ShardAppender commit — after the rename, before the commit "
        "sequence completes"
    ),
    "append.recover": (
        "ShardAppender tail recovery — truncating orphan rows on reopen"
    ),
    "trainer.poll": "Trainer manifest-generation poll of an appendable dataset",
    "serve.dispatch": "ModelServer micro-batch dispatch",
    "net.accept": (
        "NetServer connection accept — the new connection drops before any "
        "request is read"
    ),
    "net.read": (
        "NetServer request read — the connection dies mid-read, as a reset "
        "or torn frame would"
    ),
    "net.write": (
        "NetServer response write — the response is lost after compute, as "
        "a broken pipe would"
    ),
    "write.trailer": (
        "BlockedMatrixWriter.finalize — torn trailer write (partial JSON "
        "header lands, prefix still commits)"
    ),
}


def fault_sites() -> Tuple[str, ...]:
    """Sorted names of every known injection site."""
    return tuple(sorted(SITES))


class InjectedFault(OSError):
    """The error an armed injection site raises.

    Subclasses :class:`OSError` so the hardening under test — retry
    policies, reader error paths, appender recovery — handles an injected
    fault through exactly the code that would handle a real ``EIO``.
    """

    def __init__(self, site: str, ordinal: int, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"injected fault #{ordinal} at site {site!r}{suffix}"
        )
        self.site = site
        self.ordinal = ordinal


@dataclass(frozen=True)
class FaultRule:
    """Arming of one site: fire with ``probability``, at most ``count`` times.

    ``count=None`` means unlimited; ``seed`` makes the per-rule draw
    sequence reproducible.
    """

    site: str
    probability: float = 1.0
    count: Optional[int] = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            known = ", ".join(fault_sites())
            raise ValueError(
                f"unknown fault site {self.site!r} (known sites: {known})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.count is not None and self.count < 0:
            raise ValueError(
                f"fault count must be >= 0 or None, got {self.count}"
            )


class FaultPlan:
    """A set of armed sites plus their live fire/trigger accounting.

    Thread-safe: sites fire from reader threads, dispatcher threads and
    the appender concurrently.  The internal lock is a registered leaf
    (rank 920) — it nests inside every pipeline lock and never acquires
    anything itself.
    """

    def __init__(self, rules: Iterable[FaultRule]) -> None:
        self._lock = make_lock("repro.faults.FaultPlan._lock")
        self._rules: Dict[str, FaultRule] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._fired: Dict[str, int] = {}
        self._checked: Dict[str, int] = {}
        for rule in rules:
            if rule.site in self._rules:
                raise ValueError(f"site {rule.site!r} armed twice in one plan")
            self._rules[rule.site] = rule
            # Mix the site name into the seed so two rules with the same
            # seed still draw independent sequences.
            mixed = rule.seed ^ zlib.crc32(rule.site.encode("utf-8"))
            self._rngs[rule.site] = random.Random(mixed)
            self._fired[rule.site] = 0
            self._checked[rule.site] = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string (see module docstring)."""
        rules = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            site = parts[0].strip()
            kwargs: Dict[str, Union[float, int, None]] = {}
            for part in parts[1:]:
                if "=" not in part:
                    raise ValueError(
                        f"malformed fault rule {chunk!r}: expected key=value, "
                        f"got {part!r}"
                    )
                key, _, value = part.partition("=")
                key = key.strip()
                value = value.strip()
                try:
                    if key == "p":
                        kwargs["probability"] = float(value)
                    elif key == "n":
                        n = int(value)
                        kwargs["count"] = None if n <= 0 else n
                    elif key == "seed":
                        kwargs["seed"] = int(value)
                    else:
                        raise ValueError(
                            f"unknown fault rule key {key!r} in {chunk!r} "
                            f"(known: p, n, seed)"
                        )
                except ValueError as error:
                    if "unknown fault rule key" in str(error):
                        raise
                    raise ValueError(
                        f"malformed fault rule {chunk!r}: {key}={value!r} is "
                        f"not a number"
                    ) from None
            rules.append(FaultRule(site=site, **kwargs))  # type: ignore[arg-type]
        if not rules:
            raise ValueError(f"fault spec {spec!r} arms no sites")
        return cls(rules)

    # -- firing ---------------------------------------------------------------

    def should_fire(self, site: str) -> bool:
        """Whether an armed ``site`` fires this time (consumes budget)."""
        rule = self._rules.get(site)
        if rule is None:
            return False
        with self._lock:
            self._checked[site] += 1
            if rule.count is not None and self._fired[site] >= rule.count:
                return False
            if rule.probability < 1.0:
                if self._rngs[site].random() >= rule.probability:
                    return False
            self._fired[site] += 1
            return True

    def fire(self, site: str, detail: str = "") -> None:
        """Raise :class:`InjectedFault` if ``site`` fires this time."""
        if self.should_fire(site):
            raise InjectedFault(site, self._fired[site], detail)

    # -- accounting -----------------------------------------------------------

    def fires(self, site: Optional[str] = None) -> int:
        """Faults fired so far — for ``site``, or in total."""
        with self._lock:
            if site is not None:
                return self._fired.get(site, 0)
            return sum(self._fired.values())

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"checked": n, "fired": n}`` accounting."""
        with self._lock:
            return {
                site: {
                    "checked": self._checked[site],
                    "fired": self._fired[site],
                }
                for site in self._rules
            }

    @property
    def sites(self) -> Tuple[str, ...]:
        """The armed site names."""
        return tuple(self._rules)

    def __repr__(self) -> str:
        armed = ", ".join(
            f"{rule.site}(p={rule.probability}, n={rule.count})"
            for rule in self._rules.values()
        )
        return f"FaultPlan({armed})"


# -- activation (the zero-cost-when-off gate) ---------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ENV_CHECKED = False


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, resolving ``REPRO_FAULTS`` lazily once."""
    global _ENV_CHECKED, _ACTIVE
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        if spec and _ACTIVE is None:
            _ACTIVE = FaultPlan.parse(spec)
    return _ACTIVE


def set_fault_plan(
    plan: Union[FaultPlan, str, None]
) -> Optional[FaultPlan]:
    """Activate ``plan`` process-wide, returning the previous plan.

    Accepts a :class:`FaultPlan`, a spec string, or ``None`` to disarm.
    ``Session(faults=...)`` and the chaos suite route through here; pass
    the returned previous plan back in to restore scope.
    """
    global _ACTIVE, _ENV_CHECKED
    previous = _ACTIVE if _ENV_CHECKED else active_plan()
    _ENV_CHECKED = True
    _ACTIVE = FaultPlan.parse(plan) if isinstance(plan, str) else plan
    return previous


def faults_enabled() -> bool:
    """Whether any fault plan is currently active."""
    return active_plan() is not None


def maybe_fire(site: str, detail: str = "") -> None:
    """The hot-path site hook: raise if an active plan arms ``site``.

    One call + ``None`` check when no plan is active.
    """
    plan = _ACTIVE
    if plan is None:
        if _ENV_CHECKED:
            return
        plan = active_plan()
        if plan is None:
            return
    plan.fire(site, detail)


def should_fire(site: str) -> bool:
    """Non-raising variant of :func:`maybe_fire` for crash-simulation sites
    that need to corrupt state *themselves* (e.g. a torn trailer write)
    rather than raise at the check point."""
    plan = _ACTIVE
    if plan is None:
        if _ENV_CHECKED:
            return False
        plan = active_plan()
        if plan is None:
            return False
    return plan.should_fire(site)
