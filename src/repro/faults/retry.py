"""The shared retry policy: bounded exponential backoff with jitter.

Readers, the trainer's generation polls, and anything else that touches
a device retry transient failures through one :class:`RetryPolicy`, so
the backoff shape and the failure contract are uniform: a retryable
error is attempted at most ``attempts`` times with exponentially growing
(jittered, capped) sleeps between tries, and exhaustion raises a typed
:class:`RetriesExhausted` chained from the last cause — the caller sees
*both* that the budget ran out and exactly what kept failing.

What retries and what does not
------------------------------
``retry_on`` defaults to :class:`OSError` only: device-level errors
(including :class:`~repro.faults.InjectedFault`) are plausibly
transient.  Corruption is not — a
:class:`~repro.data.formats_v2.ChecksumError` or
:class:`~repro.data.codecs.CodecError` re-reads to the same bad bytes,
so those propagate immediately rather than burning the budget.

Per-site budgets live in :data:`SITE_BUDGETS`; :func:`policy_for`
resolves the policy a call site should use (unlisted sites get
:data:`DEFAULT_POLICY`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type

__all__ = [
    "RetriesExhausted",
    "RetryPolicy",
    "DEFAULT_POLICY",
    "SITE_BUDGETS",
    "policy_for",
]


class RetriesExhausted(RuntimeError):
    """Every attempt of a retried operation failed.

    Always raised ``from`` the last underlying error, so the full causal
    chain (e.g. ``RetriesExhausted`` ← ``InjectedFault``) survives into
    tracebacks and test assertions.
    """

    def __init__(self, site: str, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"site {site!r}: {attempts} attempt(s) failed; last error: "
            f"{last!r}"
        )
        self.site = site
        self.attempts = attempts


#: Jitter draws only perturb sleep durations, never control flow, so a
#: module-level seeded RNG keeps runs byte-reproducible where it matters.
_jitter = random.Random(0x5EED5)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``attempts`` tries, jittered sleeps.

    The first retry sleeps ``backoff_s`` (± ``jitter`` fraction), each
    subsequent retry doubles the base up to ``max_backoff_s``.  Defaults
    are deliberately small — the transients this shields against (a
    flaky read, a lease racing a close) resolve in milliseconds, and
    tests that exhaust the budget should not stall the suite.
    """

    attempts: int = 3
    backoff_s: float = 0.005
    max_backoff_s: float = 0.1
    jitter: float = 0.25
    retry_on: Tuple[Type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def sleep_for(self, retry_index: int) -> float:
        """The jittered sleep before retry ``retry_index`` (0-based)."""
        base = min(self.backoff_s * (2 ** retry_index), self.max_backoff_s)
        if base <= 0 or self.jitter == 0:
            return base
        return base * (1.0 + self.jitter * (2.0 * _jitter.random() - 1.0))

    def call(
        self,
        fn: Callable[[], Any],
        site: str = "",
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Run ``fn`` under this policy; return its result.

        ``on_retry(retry_index, error)`` fires before each backoff sleep
        — the pipeline uses it to count retries into its stats.  Raises
        :class:`RetriesExhausted` (chained from the last error) once the
        budget is spent; non-retryable errors propagate untouched.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.attempts):
            try:
                return fn()
            except self.retry_on as error:  # noqa: PERF203 — the cold path
                last = error
                if attempt + 1 >= self.attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt, error)
                delay = self.sleep_for(attempt)
                if delay > 0:
                    # Backoff, not polling: nothing signals "the device
                    # recovered", so there is no condition to wait on.
                    time.sleep(delay)  # lint: disable=R003
        assert last is not None
        raise RetriesExhausted(site, self.attempts, last) from last


#: The policy unlisted sites fall back to.
DEFAULT_POLICY = RetryPolicy()

#: Per-site retry budgets.  Reads get an extra attempt (transient device
#: errors are their whole threat model); the trainer poll gets more still
#: because a missed poll only delays a publish, it never corrupts one.
SITE_BUDGETS: Dict[str, RetryPolicy] = {
    "read.pread": RetryPolicy(attempts=4),
    "read.gather": RetryPolicy(attempts=4),
    "pool.lease": RetryPolicy(attempts=4),
    "trainer.poll": RetryPolicy(attempts=5),
}


def policy_for(site: str) -> RetryPolicy:
    """The retry policy for ``site`` (its budget, or the default)."""
    return SITE_BUDGETS.get(site, DEFAULT_POLICY)
