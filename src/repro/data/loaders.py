"""Text-format loaders and savers (CSV and libsvm).

Spark reads its training data from text files on HDFS (the paper stored the
datasets "on the cluster's HDFS"); mlpack reads CSV.  These helpers provide
both formats so the distributed baseline and the examples can exchange data
with the binary M3 format.  They are intentionally simple, dependency-free
implementations — large data should use the binary format in
:mod:`repro.data.formats`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np


def save_csv_matrix(
    path: Union[str, Path],
    data: np.ndarray,
    labels: Optional[np.ndarray] = None,
    delimiter: str = ",",
) -> None:
    """Write ``data`` (and optional ``labels`` as the first column) to CSV."""
    path = Path(path)
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if labels is not None:
        labels = np.asarray(labels).reshape(-1, 1)
        if labels.shape[0] != data.shape[0]:
            raise ValueError("labels length must match number of rows")
        data = np.hstack([labels, data])
    np.savetxt(path, data, delimiter=delimiter, fmt="%.10g")


def load_csv_matrix(
    path: Union[str, Path],
    labels_in_first_column: bool = False,
    delimiter: str = ",",
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Load a CSV matrix; optionally split off a label column.

    Returns ``(data, labels)`` where ``labels`` is ``None`` unless
    ``labels_in_first_column`` is true.
    """
    path = Path(path)
    raw = np.loadtxt(path, delimiter=delimiter, ndmin=2)
    if labels_in_first_column:
        if raw.shape[1] < 2:
            raise ValueError("CSV must have at least two columns to hold labels + features")
        return raw[:, 1:], raw[:, 0].astype(np.int64)
    return raw, None


def save_libsvm(
    path: Union[str, Path],
    data: np.ndarray,
    labels: np.ndarray,
) -> None:
    """Write a dense matrix in libsvm/svmlight sparse text format.

    Zero entries are omitted, feature indices are 1-based — the convention
    Spark MLlib's ``loadLibSVMFile`` expects.
    """
    path = Path(path)
    data = np.asarray(data)
    labels = np.asarray(labels)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if labels.shape[0] != data.shape[0]:
        raise ValueError("labels length must match number of rows")
    with path.open("w", encoding="ascii") as handle:
        for row, label in zip(data, labels):
            parts = [f"{label:g}"]
            nonzero = np.nonzero(row)[0]
            parts.extend(f"{j + 1}:{row[j]:.10g}" for j in nonzero)
            handle.write(" ".join(parts) + "\n")


def load_libsvm(
    path: Union[str, Path],
    num_features: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Load a libsvm/svmlight file into a dense ``(data, labels)`` pair.

    Parameters
    ----------
    path:
        The libsvm text file.
    num_features:
        Total number of features.  If omitted it is inferred from the largest
        feature index present in the file.
    """
    path = Path(path)
    rows = []
    labels = []
    max_index = 0
    with path.open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            labels.append(float(parts[0]))
            entries = []
            for token in parts[1:]:
                index_str, value_str = token.split(":", 1)
                index = int(index_str)
                max_index = max(max_index, index)
                entries.append((index, float(value_str)))
            rows.append(entries)
    if num_features is None:
        num_features = max_index
    data = np.zeros((len(rows), num_features), dtype=np.float64)
    for i, entries in enumerate(rows):
        for index, value in entries:
            if index < 1 or index > num_features:
                raise ValueError(
                    f"feature index {index} out of range 1..{num_features} on row {i}"
                )
            data[i, index - 1] = value
    return data, np.asarray(labels)
