"""Chunked out-of-core dataset writers.

The paper materialised up to 190 GB of dense Infimnist data on disk.  Writing
such a file must itself be out-of-core: :class:`OutOfCoreWriter` appends row
chunks to an M3 binary matrix file without ever holding more than one chunk in
memory, and :func:`write_infimnist_dataset` drives it from an
:class:`~repro.data.infimnist.InfimnistGenerator` to produce a dataset of any
requested size (by example count or by on-disk bytes).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.data.formats import (
    BinaryMatrixHeader,
    HEADER_SIZE,
    create_binary_matrix,
    read_binary_matrix_header,
)
from repro.data.infimnist import BYTES_PER_IMAGE, InfimnistGenerator, NUM_FEATURES


class OutOfCoreWriter:
    """Fills a pre-created M3 binary matrix file one row-chunk at a time.

    The target file must have been created with
    :func:`~repro.data.formats.create_binary_matrix`; the writer tracks how
    many rows have been appended and refuses to overflow the declared shape.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.header: BinaryMatrixHeader = read_binary_matrix_header(self.path)
        self._rows_written = 0

    @property
    def rows_written(self) -> int:
        """Number of rows appended so far."""
        return self._rows_written

    @property
    def complete(self) -> bool:
        """Whether every declared row has been written."""
        return self._rows_written == self.header.rows

    def append(self, chunk: np.ndarray, labels: Optional[np.ndarray] = None) -> None:
        """Append a chunk of rows (and labels, if the file has a label section)."""
        chunk = np.ascontiguousarray(chunk, dtype=self.header.dtype)
        if chunk.ndim != 2 or chunk.shape[1] != self.header.cols:
            raise ValueError(
                f"chunk must have shape (n, {self.header.cols}), got {chunk.shape}"
            )
        n = chunk.shape[0]
        if self._rows_written + n > self.header.rows:
            raise ValueError(
                f"appending {n} rows would overflow the declared {self.header.rows} rows"
            )
        if self.header.has_labels:
            if labels is None:
                raise ValueError("file has a label section but no labels were given")
            labels = np.ascontiguousarray(labels, dtype=np.int64)
            if labels.shape != (n,):
                raise ValueError(f"labels must have shape ({n},), got {labels.shape}")
        elif labels is not None:
            raise ValueError("file has no label section but labels were given")

        row_bytes = self.header.cols * self.header.dtype.itemsize
        data_offset = HEADER_SIZE + self._rows_written * row_bytes
        with self.path.open("r+b") as handle:
            handle.seek(data_offset)
            handle.write(chunk.tobytes())
            if self.header.has_labels and labels is not None:
                handle.seek(self.header.label_offset + self._rows_written * 8)
                handle.write(labels.tobytes())
        self._rows_written += n

    def finalize(self) -> BinaryMatrixHeader:
        """Verify that the file is fully written and return its header."""
        if not self.complete:
            raise RuntimeError(
                f"dataset incomplete: {self._rows_written}/{self.header.rows} rows written"
            )
        return self.header


def write_infimnist_dataset(
    path: Union[str, Path],
    num_examples: Optional[int] = None,
    target_bytes: Optional[int] = None,
    seed: int = 0,
    chunk_rows: int = 1024,
    generator: Optional[InfimnistGenerator] = None,
) -> BinaryMatrixHeader:
    """Materialise an Infimnist-style dataset file in M3 binary format.

    Exactly one of ``num_examples`` or ``target_bytes`` must be given; with
    ``target_bytes`` the number of examples is chosen so the data section is as
    close to the target as possible without exceeding it (mirroring how the
    paper's "10 GB … 190 GB" subsets are defined).

    Returns the header of the written file.
    """
    if (num_examples is None) == (target_bytes is None):
        raise ValueError("specify exactly one of num_examples or target_bytes")
    if target_bytes is not None:
        num_examples = max(1, target_bytes // BYTES_PER_IMAGE)
    assert num_examples is not None
    if num_examples <= 0:
        raise ValueError(f"num_examples must be positive, got {num_examples}")
    if chunk_rows <= 0:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")

    gen = generator or InfimnistGenerator(seed=seed)
    create_binary_matrix(path, num_examples, NUM_FEATURES, np.float64, with_labels=True)
    writer = OutOfCoreWriter(path)
    for features, labels in gen.iter_batches(num_examples, chunk_rows):
        writer.append(features, labels)
    return writer.finalize()
