"""The pluggable block-codec registry of the v2 shard format.

A :class:`Codec` turns a block of raw array bytes into a (hopefully smaller)
payload and back.  Two codecs ship with the library:

``none``
    The identity codec: the payload *is* the raw bytes.  A v2 dataset written
    with ``codec="none"`` keeps the blocked layout (block-granular reads,
    column-major option, dtype downcasting) without spending CPU on
    compression — the baseline every compressed configuration is measured
    against.
``zlib``
    DEFLATE via the stdlib :mod:`zlib`.  Dense numeric blocks — especially
    downcast float32 or small-integer data — routinely compress several-fold,
    which converts an I/O-bound scan into decode compute the streaming
    pipeline's worker pool can parallelize (``zlib`` releases the GIL while
    (de)compressing).

Codecs are looked up by name through :data:`CODEC_REGISTRY`; downstream code
registers new ones (lz4, zstd bindings when available) with
:func:`register_codec` without touching the format code.  The decode side is
deliberately split in two shapes:

* :meth:`Codec.decode` returns the raw bytes (one transient allocation, owned
  by the caller);
* :meth:`Codec.decode_into` writes straight into a caller buffer when the
  codec can (the ``none`` codec always can; ``zlib`` decodes once and copies),
  returning the byte count — this is what lets the chunk pipeline land
  decoded blocks in preallocated :class:`~repro.api.chunks.ChunkBufferPool`
  leases instead of fresh arrays.
"""

from __future__ import annotations

import abc
import zlib
from typing import Dict, Tuple, Union

from repro.faults import maybe_fire

__all__ = [
    "Codec",
    "NoneCodec",
    "ZlibCodec",
    "CODEC_REGISTRY",
    "get_codec",
    "register_codec",
    "available_codecs",
]

BytesLike = Union[bytes, bytearray, memoryview]


class CodecError(ValueError):
    """A payload failed to decode (corrupt data or wrong codec)."""


class Codec(abc.ABC):
    """Protocol implemented by every block codec."""

    #: Registry name, stored in shard headers and manifests.
    name: str = ""

    @abc.abstractmethod
    def encode(self, data: BytesLike) -> bytes:
        """Compress ``data`` into a payload."""

    @abc.abstractmethod
    def decode(self, payload: BytesLike, raw_bytes: int) -> bytes:
        """Decompress ``payload`` back into exactly ``raw_bytes`` bytes."""

    def decode_into(self, payload: BytesLike, out: memoryview) -> int:
        """Decompress ``payload`` into ``out``; returns the bytes written.

        The default decodes to a transient bytes object and copies; codecs
        that can stream into a caller buffer override this.
        """
        raw = self.decode(payload, len(out))
        out[: len(raw)] = raw
        return len(raw)

    def _check_size(self, raw: bytes, raw_bytes: int) -> bytes:
        if len(raw) != raw_bytes:
            raise CodecError(
                f"codec {self.name!r} decoded {len(raw)} bytes where the "
                f"block header declares {raw_bytes} (corrupt payload?)"
            )
        return raw


class NoneCodec(Codec):
    """The identity codec: payloads are the raw block bytes."""

    name = "none"

    def encode(self, data: BytesLike) -> bytes:
        return bytes(data)

    def decode(self, payload: BytesLike, raw_bytes: int) -> bytes:
        maybe_fire("decode.block", self.name)
        return self._check_size(bytes(payload), raw_bytes)

    def decode_into(self, payload: BytesLike, out: memoryview) -> int:
        maybe_fire("decode.block", self.name)
        view = memoryview(payload)
        if len(view) != len(out):
            raise CodecError(
                f"codec 'none' payload holds {len(view)} bytes but the "
                f"output buffer expects {len(out)}"
            )
        out[:] = view
        return len(view)


class ZlibCodec(Codec):
    """DEFLATE via the stdlib; ``level`` trades ratio for encode speed."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not -1 <= level <= 9:
            raise ValueError(f"zlib level must be in [-1, 9], got {level}")
        self.level = level

    def encode(self, data: BytesLike) -> bytes:
        return zlib.compress(bytes(data), self.level)

    def decode(self, payload: BytesLike, raw_bytes: int) -> bytes:
        maybe_fire("decode.block", self.name)
        try:
            raw = zlib.decompress(bytes(payload))
        except zlib.error as error:
            raise CodecError(f"zlib payload failed to decode: {error}") from error
        return self._check_size(raw, raw_bytes)


#: Codec name -> prototype instance.  Looked up per shard open, not per block.
CODEC_REGISTRY: Dict[str, Codec] = {
    NoneCodec.name: NoneCodec(),
    ZlibCodec.name: ZlibCodec(),
}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under its ``name`` (usable on instances)."""
    if not codec.name:
        raise ValueError(f"{type(codec).__name__} must define a non-empty name")
    CODEC_REGISTRY[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    """The registered codec called ``name``."""
    try:
        return CODEC_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CODEC_REGISTRY))
        raise ValueError(f"unknown codec {name!r} (known: {known})") from None


def available_codecs() -> Tuple[str, ...]:
    """Sorted names of every registered codec."""
    return tuple(sorted(CODEC_REGISTRY))
