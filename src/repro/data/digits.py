"""Procedural digit glyphs.

MNIST images are 28×28 grayscale pictures of handwritten digits.  Without the
original dataset available offline, we rasterise each digit 0–9 from a simple
7×5 bitmap font, upscale it to 20×20 with smoothing, and centre it on a 28×28
canvas — the same geometry as MNIST (digits occupy a centred 20×20 box).  The
glyphs are crude compared with handwriting, but combined with the pseudo-random
deformations in :mod:`repro.data.deformations` they give ten visually distinct,
learnable classes, which is all the paper's runtime experiments require.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

IMAGE_SIZE = 28
"""Width and height of a digit image in pixels."""

GLYPH_BOX = 20
"""Size of the box the glyph occupies within the 28x28 canvas."""

#: 7-row × 5-column bitmap font for digits 0–9.  ``#`` marks an "on" pixel.
_FONT = {
    0: ["#####", "#...#", "#...#", "#...#", "#...#", "#...#", "#####"],
    1: ["..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."],
    2: ["#####", "....#", "....#", "#####", "#....", "#....", "#####"],
    3: ["#####", "....#", "....#", "#####", "....#", "....#", "#####"],
    4: ["#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"],
    5: ["#####", "#....", "#....", "#####", "....#", "....#", "#####"],
    6: ["#####", "#....", "#....", "#####", "#...#", "#...#", "#####"],
    7: ["#####", "....#", "...#.", "..#..", "..#..", ".#...", ".#..."],
    8: ["#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"],
    9: ["#####", "#...#", "#...#", "#####", "....#", "....#", "#####"],
}


def _bitmap(digit: int) -> np.ndarray:
    """Return the 7×5 float bitmap for ``digit``."""
    rows = _FONT[digit]
    return np.array([[1.0 if ch == "#" else 0.0 for ch in row] for row in rows], dtype=np.float64)


def _upscale(bitmap: np.ndarray, target: int) -> np.ndarray:
    """Nearest-neighbour upscale ``bitmap`` into a ``target``×``target`` box."""
    rows, cols = bitmap.shape
    row_idx = (np.arange(target) * rows // target).clip(0, rows - 1)
    col_idx = (np.arange(target) * cols // target).clip(0, cols - 1)
    return bitmap[np.ix_(row_idx, col_idx)]


def _smooth(image: np.ndarray, passes: int = 1) -> np.ndarray:
    """Box-blur ``image`` to soften the hard bitmap edges (stroke-like look)."""
    result = image
    for _ in range(passes):
        padded = np.pad(result, 1, mode="edge")
        result = (
            padded[:-2, :-2] + padded[:-2, 1:-1] + padded[:-2, 2:]
            + padded[1:-1, :-2] + padded[1:-1, 1:-1] + padded[1:-1, 2:]
            + padded[2:, :-2] + padded[2:, 1:-1] + padded[2:, 2:]
        ) / 9.0
    return result


def _render_template(digit: int) -> np.ndarray:
    """Render the canonical 28×28 glyph for ``digit`` with values in [0, 1]."""
    glyph = _upscale(_bitmap(digit), GLYPH_BOX)
    glyph = _smooth(glyph, passes=2)
    peak = glyph.max()
    if peak > 0:
        glyph = glyph / peak
    canvas = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float64)
    margin = (IMAGE_SIZE - GLYPH_BOX) // 2
    canvas[margin : margin + GLYPH_BOX, margin : margin + GLYPH_BOX] = glyph
    return canvas


#: Canonical 28×28 glyph for every digit, values in [0, 1].
DIGIT_TEMPLATES: Dict[int, np.ndarray] = {digit: _render_template(digit) for digit in range(10)}


def render_digit(digit: int) -> np.ndarray:
    """Return a copy of the canonical 28×28 glyph for ``digit``.

    Parameters
    ----------
    digit:
        The digit class, 0–9.

    Raises
    ------
    ValueError
        If ``digit`` is outside 0–9.
    """
    if digit not in DIGIT_TEMPLATES:
        raise ValueError(f"digit must be in 0..9, got {digit}")
    return DIGIT_TEMPLATES[digit].copy()
