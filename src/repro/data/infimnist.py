"""An Infimnist-style infinite digit image generator.

The paper's dataset is Infimnist: "an infinite supply of digit images (0–9)
derived from the well-known MNIST dataset using pseudo-random deformations and
translations.  Each image is 28×28 pixel grayscale image (784 features; each
image is 6272 bytes)".  6272 bytes per image corresponds to 784 features
stored as 8-byte doubles — i.e. the authors materialised a dense ``float64``
matrix, which is also what we generate.

:class:`InfimnistGenerator` is *indexable*: example ``i`` is produced by
seeding a pseudo-random generator with ``hash(seed, i)`` and deforming the
canonical glyph of digit ``i % 10``.  The same index always produces the same
image, so any prefix (or any slice) of the infinite stream is well defined
without storing anything — which is how the 10 GB…190 GB subsets of the
paper's 32 M-image dataset are all "subsets of the full 32M images".
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.deformations import DeformationParams, deform_image
from repro.data.digits import IMAGE_SIZE, render_digit

IMAGE_SHAPE = (IMAGE_SIZE, IMAGE_SIZE)
"""Shape of a single generated image."""

NUM_FEATURES = IMAGE_SIZE * IMAGE_SIZE
"""Number of features per image (784, as in MNIST/Infimnist)."""

BYTES_PER_IMAGE = NUM_FEATURES * 8
"""Bytes per image as a dense float64 row (6272, matching the paper)."""


class InfimnistGenerator:
    """Deterministic, indexable generator of deformed digit images.

    Parameters
    ----------
    seed:
        Master seed.  Two generators with the same seed produce identical
        streams.
    params:
        Deformation strengths; see :class:`~repro.data.deformations.DeformationParams`.
    dtype:
        Output dtype of feature vectors (default ``float64`` to match the
        paper's 6272 bytes/image).

    Examples
    --------
    >>> gen = InfimnistGenerator(seed=7)
    >>> x, y = gen.example(123)
    >>> x.shape
    (784,)
    >>> int(y)
    3
    """

    def __init__(
        self,
        seed: int = 0,
        params: Optional[DeformationParams] = None,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.seed = int(seed)
        self.params = params or DeformationParams()
        self.dtype = np.dtype(dtype)

    # -- single examples -------------------------------------------------------

    def label(self, index: int) -> int:
        """Digit label of example ``index`` (the class cycles 0–9)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return index % 10

    def image(self, index: int) -> np.ndarray:
        """28×28 image for example ``index``, values in [0, 1]."""
        digit = self.label(index)
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, index]))
        return deform_image(render_digit(digit), rng, self.params).astype(self.dtype)

    def example(self, index: int) -> Tuple[np.ndarray, int]:
        """Return ``(features, label)`` for example ``index``.

        Features are the flattened 784-vector of the image.
        """
        return self.image(index).reshape(-1), self.label(index)

    # -- batches ---------------------------------------------------------------

    def batch(self, start: int, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Generate ``count`` consecutive examples starting at ``start``.

        Returns
        -------
        (features, labels):
            ``features`` has shape ``(count, 784)`` and ``labels`` shape
            ``(count,)`` with integer classes 0–9.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        features = np.empty((count, NUM_FEATURES), dtype=self.dtype)
        labels = np.empty(count, dtype=np.int64)
        for row, index in enumerate(range(start, start + count)):
            x, y = self.example(index)
            features[row] = x
            labels[row] = y
        return features, labels

    def iter_batches(
        self, num_examples: int, batch_size: int, start: int = 0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(features, labels)`` batches covering ``num_examples`` rows."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        produced = 0
        while produced < num_examples:
            count = min(batch_size, num_examples - produced)
            yield self.batch(start + produced, count)
            produced += count

    # -- size helpers ----------------------------------------------------------

    @staticmethod
    def bytes_for_examples(num_examples: int) -> int:
        """On-disk size of ``num_examples`` dense float64 rows (paper's metric)."""
        return num_examples * BYTES_PER_IMAGE

    @staticmethod
    def examples_for_bytes(num_bytes: int) -> int:
        """Number of whole examples that fit in ``num_bytes``."""
        return num_bytes // BYTES_PER_IMAGE
