"""Synthetic dataset generators used by tests, examples and ablations.

These are self-contained equivalents of the scikit-learn helpers the project
cannot depend on offline: Gaussian blobs for clustering, a linearly separable
(with controllable noise) classification problem for logistic regression, and
a low-rank matrix for PCA.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def make_blobs(
    n_samples: int = 300,
    n_features: int = 2,
    centers: int = 3,
    cluster_std: float = 1.0,
    center_box: Tuple[float, float] = (-10.0, 10.0),
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate isotropic Gaussian blobs for clustering.

    Returns
    -------
    (X, y, centers):
        ``X`` is ``(n_samples, n_features)``, ``y`` the integer blob index of
        each sample, and ``centers`` the true blob centres.
    """
    if n_samples <= 0 or n_features <= 0 or centers <= 0:
        raise ValueError("n_samples, n_features and centers must be positive")
    if cluster_std <= 0:
        raise ValueError("cluster_std must be positive")
    rng = np.random.default_rng(seed)
    true_centers = rng.uniform(center_box[0], center_box[1], size=(centers, n_features))
    assignments = rng.integers(0, centers, size=n_samples)
    noise = rng.normal(0.0, cluster_std, size=(n_samples, n_features))
    X = true_centers[assignments] + noise
    return X, assignments, true_centers


def make_classification(
    n_samples: int = 400,
    n_features: int = 10,
    n_classes: int = 2,
    class_sep: float = 2.0,
    noise: float = 1.0,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a classification problem with Gaussian class-conditional data.

    Each class gets a mean drawn on a sphere of radius ``class_sep``; samples
    are that mean plus isotropic Gaussian noise.  With ``class_sep`` well above
    ``noise`` the problem is nearly separable, which makes convergence of the
    logistic-regression tests fast and deterministic.
    """
    if n_classes < 2:
        raise ValueError("n_classes must be at least 2")
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    directions = rng.normal(size=(n_classes, n_features))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    means = directions * class_sep
    labels = rng.integers(0, n_classes, size=n_samples)
    X = means[labels] + rng.normal(0.0, noise, size=(n_samples, n_features))
    return X, labels


def make_low_rank_matrix(
    n_samples: int = 200,
    n_features: int = 30,
    effective_rank: int = 5,
    noise: float = 0.01,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Generate a matrix whose singular values decay sharply after ``effective_rank``.

    Used by the PCA tests: the leading ``effective_rank`` principal components
    should capture almost all the variance.
    """
    if effective_rank <= 0 or effective_rank > min(n_samples, n_features):
        raise ValueError("effective_rank must be in 1..min(n_samples, n_features)")
    rng = np.random.default_rng(seed)
    left = rng.normal(size=(n_samples, effective_rank))
    right = rng.normal(size=(effective_rank, n_features))
    scales = np.linspace(1.0, 0.1, effective_rank)
    X = (left * scales) @ right
    if noise > 0:
        X = X + rng.normal(0.0, noise, size=X.shape)
    return X
