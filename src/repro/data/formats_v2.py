"""The M3 v2 *blocked* matrix format: fixed-size blocks, independently coded.

Where the v1 format (:mod:`repro.data.formats`) is a raw memory-mappable
array, v2 trades the mmap property for bandwidth: the matrix is split into
fixed-size row **blocks**, each independently compressed through a pluggable
:mod:`~repro.data.codecs` codec, optionally stored in a narrower dtype
(float32/float16 downcasting), and optionally laid out **column-major** inside
each block so a column-subset scan fetches only the columns it needs.

Layout::

    bytes 0..7     magic  b"M3BLOCKS"
    bytes 8..11    format version (uint32, little endian; currently 2)
    bytes 12..15   CRC32 of the JSON header trailer (uint32; 0 in files
                   written before checksums existed — those skip the check)
    bytes 16..23   header offset (uint64) — where the JSON header starts
    bytes 24..31   header length (uint64)
    bytes 32..     coded segments, tightly packed, in block order
    trailer        the JSON header itself (written last, Parquet-style, so
                   the writer can stream blocks without knowing their sizes
                   up front)

The trailer CRC is what makes a *torn convert* detectable at open time:
the prefix is rewritten last, so a crash mid-trailer leaves either the
placeholder prefix (no header to find) or a prefix whose CRC does not
match the bytes on disk — both refuse to open instead of serving garbage.
Every coded segment additionally records a CRC32 of its payload in the
header's segment table, verified before decode; corruption raises
:class:`ChecksumError` naming the file, block and segment.  Files written
before checksums existed carry three-element segment entries and are
read without verification.

The JSON header carries the geometry (``rows``/``cols``/``block_rows``), the
codec and layout names, the *logical* dtype (what consumers see) and the
*storage* dtype (what is on disk), and the full block/segment table: for the
``row`` layout each block is one segment of ``block_rows x cols`` values in C
order; for the ``column`` layout each block holds ``cols`` segments, one per
column, so segment ``j`` of a block can be fetched and decoded on its own.
Labels, when present, are one coded int64 segment.

Reads go through :class:`BlockedMatrixReader`, which serves rows with
``os.pread`` — positioned reads on one shared file descriptor, so a pool of
reader threads can fetch blocks concurrently with no lock at all.  The fetch
(I/O) and decode (CPU) halves are separate methods, which is what lets the
parallel chunk pipeline fetch compressed payloads on its reader pool and
decompress them on the decode worker pool straight into reusable buffers.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.codecs import Codec, get_codec
from repro.faults import InjectedFault, maybe_fire, should_fire

BLOCKED_MAGIC = b"M3BLOCKS"
BLOCKED_VERSION = 2
BLOCKED_PREFIX = struct.Struct("<8sII QQ")
BLOCKED_PREFIX_SIZE = 32
DEFAULT_BLOCK_BYTES = 1024 * 1024
"""Target raw bytes per block when no explicit ``block_rows`` is given."""

LAYOUTS = ("row", "column")


class ChecksumError(ValueError):
    """Stored and computed CRCs disagree: the bytes on disk are corrupt.

    The message always names the file, and — for segment checksums — the
    block and segment, so a scrub (``m3 info --verify``) can report exactly
    which blocks need re-converting.
    """


#: One segment of the block table: ``(file_offset, coded_bytes, raw_bytes,
#: payload_crc32_or_None)``.  ``None`` marks files written before checksums.
Segment = Tuple[int, int, int, Optional[int]]


def _parse_segment(raw: Sequence[Any]) -> Segment:
    """Normalise a JSON segment entry (3 legacy / 4 current elements)."""
    offset, coded, raw_bytes = (int(raw[0]), int(raw[1]), int(raw[2]))
    crc = int(raw[3]) if len(raw) > 3 and raw[3] is not None else None
    return (offset, coded, raw_bytes, crc)


def default_block_rows(cols: int, itemsize: int, target_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
    """Rows per block targeting ``target_bytes`` of raw storage per block."""
    return max(1, target_bytes // max(cols * itemsize, 1))


@dataclass(frozen=True)
class BlockInfo:
    """One block of a blocked matrix file: a row band plus its segments."""

    start_row: int
    rows: int
    #: ``(file_offset, coded_bytes, raw_bytes, payload_crc32)`` per segment —
    #: one segment for the ``row`` layout, one per column for the ``column``
    #: layout.  The CRC is ``None`` in files written before checksums.
    segments: Tuple[Segment, ...]

    @property
    def stop_row(self) -> int:
        """Global index one past the block's last row."""
        return self.start_row + self.rows

    @property
    def coded_bytes(self) -> int:
        """Total coded payload bytes of the block."""
        return sum(segment[1] for segment in self.segments)


@dataclass(frozen=True)
class BlockedMatrixHeader:
    """Parsed header of an M3 v2 blocked matrix file."""

    version: int
    codec: str
    dtype: np.dtype
    storage_dtype: np.dtype
    rows: int
    cols: int
    block_rows: int
    layout: str
    has_labels: bool
    blocks: Tuple[BlockInfo, ...]
    label_segment: Optional[Segment]
    raw_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """Raw-to-coded size ratio (>= 1 means the codec saved bytes)."""
        if self.compressed_bytes <= 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


def _normalize_layout(layout: str) -> str:
    if layout not in LAYOUTS:
        raise ValueError(f"layout must be one of {LAYOUTS}, got {layout!r}")
    return layout


class BlockedMatrixWriter:
    """Stream rows into a blocked v2 file with bounded memory.

    ``append`` buffers at most one block of rows; every full block is coded
    and written immediately, so converting a dataset far larger than RAM
    holds one block plus its coded payload at a time.  ``finalize`` flushes
    the tail block, writes the label segment and the JSON header trailer,
    and patches the prefix to point at it.
    """

    def __init__(
        self,
        path: Union[str, Path],
        cols: int,
        block_rows: Optional[int] = None,
        codec: Union[str, Codec] = "zlib",
        dtype: Any = np.float64,
        storage_dtype: Optional[Any] = None,
        layout: str = "row",
    ) -> None:
        if cols <= 0:
            raise ValueError(f"cols must be positive, got {cols}")
        self.path = Path(path)
        self.cols = int(cols)
        self.dtype = np.dtype(dtype)
        self.storage_dtype = self.dtype if storage_dtype is None else np.dtype(storage_dtype)
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self.layout = _normalize_layout(layout)
        if block_rows is None:
            block_rows = default_block_rows(self.cols, self.storage_dtype.itemsize)
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        self.block_rows = int(block_rows)
        self.rows_written = 0
        self.raw_bytes = 0
        self.compressed_bytes = 0
        self._blocks: List[BlockInfo] = []
        self._pending: List[np.ndarray] = []
        self._pending_rows = 0
        self._labels: List[np.ndarray] = []
        self._label_segment: Optional[Segment] = None
        self._handle = self.path.open("wb")
        # Placeholder prefix; finalize() rewrites it with the real header
        # offset once every segment has been written.
        self._handle.write(
            BLOCKED_PREFIX.pack(BLOCKED_MAGIC, BLOCKED_VERSION, 0, 0, 0)
        )
        self._offset = BLOCKED_PREFIX_SIZE
        self._finalized = False

    # -- appending -----------------------------------------------------------

    def append(self, rows: np.ndarray) -> None:
        """Append a band of rows (any height); blocks flush as they fill."""
        self._check_writable()
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.cols:
            raise ValueError(
                f"expected rows of shape (n, {self.cols}), got {rows.shape}"
            )
        if rows.shape[0] == 0:
            return
        self._pending.append(rows)
        self._pending_rows += int(rows.shape[0])
        while self._pending_rows >= self.block_rows:
            self._flush_block(self.block_rows)

    def append_labels(self, labels: np.ndarray) -> None:
        """Append the label slice matching previously appended rows."""
        self._check_writable()
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        if labels.size:
            self._labels.append(labels)

    # -- block encoding ------------------------------------------------------

    def _take_pending(self, rows: int) -> np.ndarray:
        taken: List[np.ndarray] = []
        needed = rows
        while needed > 0:
            head = self._pending[0]
            if head.shape[0] <= needed:
                taken.append(head)
                needed -= head.shape[0]
                self._pending.pop(0)
            else:
                taken.append(head[:needed])
                self._pending[0] = head[needed:]
                needed = 0
        self._pending_rows -= rows
        if len(taken) == 1:
            return taken[0]
        return np.concatenate(taken, axis=0)

    def _write_segment(self, raw: bytes) -> Segment:
        payload = self.codec.encode(raw)
        offset = self._offset
        self._handle.write(payload)
        self._offset += len(payload)
        self.raw_bytes += len(raw)
        self.compressed_bytes += len(payload)
        return (offset, len(payload), len(raw), zlib.crc32(payload))

    def _flush_block(self, rows: int) -> None:
        block = self._take_pending(rows)
        stored = np.ascontiguousarray(block, dtype=self.storage_dtype)
        segments: List[Segment] = []
        if self.layout == "row":
            segments.append(self._write_segment(stored.tobytes()))
        else:
            for col in range(self.cols):
                segments.append(
                    self._write_segment(np.ascontiguousarray(stored[:, col]).tobytes())
                )
        self._blocks.append(
            BlockInfo(start_row=self.rows_written, rows=rows, segments=tuple(segments))
        )
        self.rows_written += rows

    # -- lifecycle -----------------------------------------------------------

    def _check_writable(self) -> None:
        if self._finalized:
            raise RuntimeError(f"writer for {self.path} is already finalized")

    def finalize(self) -> BlockedMatrixHeader:
        """Flush the tail block, write labels + header trailer, close the file."""
        self._check_writable()
        self._finalized = True
        if self._pending_rows > 0:
            self._flush_block(self._pending_rows)
        has_labels = bool(self._labels)
        if has_labels:
            labels = np.concatenate(self._labels) if len(self._labels) > 1 else self._labels[0]
            if labels.shape[0] != self.rows_written:
                self._handle.close()
                raise ValueError(
                    f"{self.path}: {labels.shape[0]} labels appended for "
                    f"{self.rows_written} rows"
                )
            self._label_segment = self._write_segment(labels.tobytes())
        header = {
            "codec": self.codec.name,
            "dtype": self.dtype.str,
            "storage_dtype": self.storage_dtype.str,
            "rows": self.rows_written,
            "cols": self.cols,
            "block_rows": self.block_rows,
            "layout": self.layout,
            "has_labels": has_labels,
            "blocks": [
                {"start_row": b.start_row, "rows": b.rows,
                 "segments": [list(segment) for segment in b.segments]}
                for b in self._blocks
            ],
            "labels": list(self._label_segment) if self._label_segment else None,
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
        }
        payload = json.dumps(header).encode("utf-8")
        trailer_crc = zlib.crc32(payload)
        header_offset = self._offset
        if should_fire("write.trailer"):
            # Simulate a torn convert: half the trailer lands (the rest is
            # garbage) but the prefix still commits with the real CRC and
            # length, exactly as a crash between two write() syscalls could
            # leave the file.  The trailer CRC check rejects it at open.
            torn = payload[: len(payload) // 2]
            self._handle.write(torn + b"\x00" * (len(payload) - len(torn)))
            self._handle.seek(0)
            self._handle.write(
                BLOCKED_PREFIX.pack(
                    BLOCKED_MAGIC,
                    BLOCKED_VERSION,
                    trailer_crc,
                    header_offset,
                    len(payload),
                )
            )
            self._handle.close()
            raise InjectedFault("write.trailer", 1, str(self.path))
        self._handle.write(payload)
        self._handle.seek(0)
        self._handle.write(
            BLOCKED_PREFIX.pack(
                BLOCKED_MAGIC,
                BLOCKED_VERSION,
                trailer_crc,
                header_offset,
                len(payload),
            )
        )
        self._handle.close()
        return read_blocked_header(self.path)

    def __enter__(self) -> "BlockedMatrixWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is None:
            if not self._finalized:
                self.finalize()
        elif not self._handle.closed:
            self._handle.close()


def write_blocked_matrix(
    path: Union[str, Path],
    data: np.ndarray,
    labels: Optional[np.ndarray] = None,
    block_rows: Optional[int] = None,
    codec: Union[str, Codec] = "zlib",
    storage_dtype: Optional[Any] = None,
    layout: str = "row",
) -> BlockedMatrixHeader:
    """Write an in-memory matrix (and optional labels) as one v2 blocked file."""
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    writer = BlockedMatrixWriter(
        path,
        cols=int(data.shape[1]),
        block_rows=block_rows,
        codec=codec,
        dtype=data.dtype,
        storage_dtype=storage_dtype,
        layout=layout,
    )
    writer.append(data)
    if labels is not None:
        writer.append_labels(labels)
    return writer.finalize()


def read_blocked_header(path: Union[str, Path]) -> BlockedMatrixHeader:
    """Read and validate the header of a v2 blocked matrix file.

    Errors name the offending path and the expected-vs-actual magic/version,
    and the declared segment extents are checked against the real file size so
    a truncated shard fails here instead of mid-decode.
    """
    path = Path(path)
    actual_bytes = path.stat().st_size
    with path.open("rb") as handle:
        raw = handle.read(BLOCKED_PREFIX_SIZE)
        if len(raw) < BLOCKED_PREFIX_SIZE:
            raise ValueError(
                f"{path} is too small to be an M3 blocked matrix file: "
                f"expected at least a {BLOCKED_PREFIX_SIZE}-byte prefix, "
                f"found {len(raw)} bytes"
            )
        magic, version, trailer_crc, header_offset, header_len = BLOCKED_PREFIX.unpack(raw)
        if magic != BLOCKED_MAGIC:
            raise ValueError(
                f"{path} is not an M3 blocked matrix file: expected magic "
                f"{BLOCKED_MAGIC!r}, found {magic!r}"
            )
        if version != BLOCKED_VERSION:
            raise ValueError(
                f"{path}: unsupported M3 blocked format version {version} "
                f"(this build reads version {BLOCKED_VERSION}; the file may "
                f"have been written by a newer repro)"
            )
        if header_offset + header_len > actual_bytes:
            raise ValueError(
                f"{path} is truncated: the header trailer is declared at "
                f"bytes [{header_offset}, {header_offset + header_len}) but "
                f"the file is only {actual_bytes} bytes"
            )
        handle.seek(header_offset)
        payload = handle.read(header_len)
    if trailer_crc != 0:
        computed = zlib.crc32(payload)
        if computed != trailer_crc:
            raise ChecksumError(
                f"{path}: header trailer CRC mismatch (stored "
                f"{trailer_crc:#010x}, computed {computed:#010x}) — the file "
                f"was torn mid-convert or corrupted on disk"
            )
    try:
        parsed: Dict[str, Any] = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"{path}: corrupt v2 header trailer: {error}") from error
    blocks = tuple(
        BlockInfo(
            start_row=int(entry["start_row"]),
            rows=int(entry["rows"]),
            segments=tuple(_parse_segment(seg) for seg in entry["segments"]),
        )
        for entry in parsed["blocks"]
    )
    label_segment = parsed.get("labels")
    header = BlockedMatrixHeader(
        version=version,
        codec=str(parsed["codec"]),
        dtype=np.dtype(parsed["dtype"]),
        storage_dtype=np.dtype(parsed["storage_dtype"]),
        rows=int(parsed["rows"]),
        cols=int(parsed["cols"]),
        block_rows=int(parsed["block_rows"]),
        layout=_normalize_layout(str(parsed["layout"])),
        has_labels=bool(parsed["has_labels"]),
        blocks=blocks,
        label_segment=_parse_segment(label_segment) if label_segment else None,
        raw_bytes=int(parsed["raw_bytes"]),
        compressed_bytes=int(parsed["compressed_bytes"]),
    )
    for block in header.blocks:
        for offset, coded, _raw, _crc in block.segments:
            if offset + coded > actual_bytes:
                raise ValueError(
                    f"{path} is truncated: block at row {block.start_row} "
                    f"declares a segment at bytes [{offset}, {offset + coded}) "
                    f"but the file is only {actual_bytes} bytes"
                )
    return header


@dataclass(frozen=True)
class BlockPayload:
    """Fetched (still-coded) payloads of one block — the I/O half of a read.

    ``columns`` is ``None`` when every segment of the block was fetched, or
    the fetched column indices for a column-subset read of a column-major
    block.
    """

    index: int
    payloads: Tuple[bytes, ...]
    columns: Optional[Tuple[int, ...]]
    compressed_bytes: int


class BlockedMatrixReader:
    """Random and streaming reads over a v2 blocked matrix file.

    The reader keeps one file descriptor and serves every fetch with
    ``os.pread``, so concurrent fetches from a reader pool need no locking.
    Fetch (:meth:`fetch_block`) and decode (:meth:`decode_block_into`) are
    separate so callers can schedule the two halves on different thread
    pools; :meth:`read_rows_into` composes them for synchronous use.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.header = read_blocked_header(self.path)
        self.codec = get_codec(self.header.codec)
        self._fd: Optional[int] = os.open(str(self.path), os.O_RDONLY)
        #: Coded bytes fetched through this reader (accounting; single-threaded
        #: consumers read it, concurrent fetches also return their own counts).
        self.payload_bytes_read = 0

    # -- geometry ------------------------------------------------------------

    @property
    def rows(self) -> int:
        """Logical row count."""
        return self.header.rows

    @property
    def cols(self) -> int:
        """Column count."""
        return self.header.cols

    @property
    def dtype(self) -> np.dtype:
        """The logical dtype reads are served in."""
        return self.header.dtype

    def blocks_for(self, start: int, stop: int) -> range:
        """Indices of the blocks overlapping rows ``[start, stop)``."""
        start = max(0, start)
        stop = min(self.header.rows, stop)
        if stop <= start:
            return range(0)
        return range(start // self.header.block_rows,
                     (stop - 1) // self.header.block_rows + 1)

    # -- fetch (I/O) ---------------------------------------------------------

    def _pread(self, offset: int, length: int) -> bytes:
        fd = self._fd
        if fd is None:
            raise RuntimeError(f"reader for {self.path} is closed")
        maybe_fire("read.pread", str(self.path))
        payload = os.pread(fd, length, offset)
        if len(payload) != length:
            raise ValueError(
                f"{self.path} is truncated: wanted {length} bytes at offset "
                f"{offset}, got {len(payload)}"
            )
        return payload

    def fetch_block(
        self, index: int, columns: Optional[Sequence[int]] = None
    ) -> BlockPayload:
        """Fetch the coded payload(s) of block ``index`` (I/O only, no decode).

        ``columns`` restricts a **column-major** block to the named columns'
        segments, so a column-subset scan reads only the bytes it needs;
        row-major blocks always fetch their single full segment.
        """
        block = self.header.blocks[index]
        if columns is not None and self.header.layout == "column":
            wanted = tuple(int(c) for c in columns)
            segments = [block.segments[c] for c in wanted]
        else:
            wanted = None
            segments = list(block.segments)
        payloads = tuple(
            self._pread(segment[0], segment[1]) for segment in segments
        )
        fetched = sum(segment[1] for segment in segments)
        self.payload_bytes_read += fetched
        return BlockPayload(
            index=index, payloads=payloads, columns=wanted, compressed_bytes=fetched
        )

    # -- decode (CPU) --------------------------------------------------------

    def _decode_segment(
        self,
        payload: bytes,
        segment: Segment,
        block_index: int,
        segment_index: int,
    ) -> np.ndarray:
        self._verify_segment(payload, segment, block_index, segment_index)
        raw = self.codec.decode(payload, segment[2])
        return np.frombuffer(raw, dtype=self.header.storage_dtype)

    def _verify_segment(
        self,
        payload: bytes,
        segment: Segment,
        block_index: int,
        segment_index: int,
    ) -> None:
        """CRC-check one coded payload before it reaches the codec.

        Legacy entries (no stored CRC) skip verification; verifying the
        *coded* bytes catches on-disk corruption before decode ever runs.
        """
        crc = segment[3]
        if crc is None:
            return
        computed = zlib.crc32(payload)
        if computed != crc:
            raise ChecksumError(
                f"{self.path}: block {block_index} segment {segment_index} "
                f"CRC mismatch (stored {crc:#010x}, computed {computed:#010x})"
            )

    def decode_block_into(
        self,
        fetched: BlockPayload,
        lo: int,
        hi: int,
        out: np.ndarray,
        out_offset: int = 0,
    ) -> None:
        """Decode global rows ``[lo, hi)`` of a fetched block into ``out``.

        ``out`` is a 2-D array in the *logical* dtype: decoded storage values
        are cast on the copy, so a float32-on-disk dataset streams float64 to
        consumers without an intermediate full-block logical array.
        """
        block = self.header.blocks[fetched.index]
        lo = max(lo, block.start_row)
        hi = min(hi, block.stop_row)
        if hi <= lo:
            return
        local = slice(lo - block.start_row, hi - block.start_row)
        dest = out[out_offset : out_offset + (hi - lo)]
        if self.header.layout == "row":
            values = self._decode_segment(
                fetched.payloads[0], block.segments[0], fetched.index, 0
            ).reshape(block.rows, self.header.cols)
            np.copyto(dest, values[local], casting="unsafe")
        else:
            columns = (
                fetched.columns
                if fetched.columns is not None
                else range(self.header.cols)
            )
            for position, col in enumerate(columns):
                segment = block.segments[col]
                values = self._decode_segment(
                    fetched.payloads[position], segment, fetched.index, col
                )
                target = position if fetched.columns is not None else col
                np.copyto(dest[:, target], values[local], casting="unsafe")

    # -- composed reads ------------------------------------------------------

    def read_rows_into(self, start: int, stop: int, out: np.ndarray) -> np.ndarray:
        """Fetch + decode rows ``[start, stop)`` into preallocated ``out``."""
        start = max(0, start)
        stop = min(self.header.rows, stop)
        rows = max(0, stop - start)
        if out.ndim != 2 or out.shape[0] < rows or out.shape[1] != self.header.cols:
            raise ValueError(
                f"output buffer of shape {out.shape} cannot hold {rows} rows "
                f"of {self.header.cols} columns"
            )
        for index in self.blocks_for(start, stop):
            fetched = self.fetch_block(index)
            block = self.header.blocks[index]
            lo = max(start, block.start_row)
            self.decode_block_into(fetched, start, stop, out, out_offset=lo - start)
        return out[:rows]

    def read_rows(self, start: int, stop: int) -> np.ndarray:
        """Fetch + decode rows ``[start, stop)`` into a fresh logical array."""
        rows = max(0, min(self.header.rows, stop) - max(0, start))
        out = np.empty((rows, self.header.cols), dtype=self.header.dtype)
        return self.read_rows_into(start, stop, out)

    def read_block(self, index: int) -> np.ndarray:
        """Decode one whole block into a fresh logical array."""
        block = self.header.blocks[index]
        return self.read_rows(block.start_row, block.stop_row)

    def read_columns(self, start: int, stop: int, columns: Sequence[int]) -> np.ndarray:
        """Rows ``[start, stop)`` restricted to ``columns``.

        On a column-major file only the named columns' segments are fetched
        and decoded; on a row-major file the whole blocks are decoded and
        sliced (correct, but reads every byte — the layout exists precisely
        to avoid that).
        """
        start = max(0, start)
        stop = min(self.header.rows, stop)
        columns = [int(c) for c in columns]
        for col in columns:
            if not 0 <= col < self.header.cols:
                raise IndexError(
                    f"column {col} out of range for {self.header.cols} columns"
                )
        rows = max(0, stop - start)
        out = np.empty((rows, len(columns)), dtype=self.header.dtype)
        if rows == 0:
            return out
        if self.header.layout == "column":
            for index in self.blocks_for(start, stop):
                fetched = self.fetch_block(index, columns=columns)
                block = self.header.blocks[index]
                lo = max(start, block.start_row)
                self.decode_block_into(fetched, start, stop, out, out_offset=lo - start)
            return out
        for index in self.blocks_for(start, stop):
            block = self.header.blocks[index]
            lo = max(start, block.start_row)
            hi = min(stop, block.stop_row)
            decoded = self.read_rows(lo, hi)
            out[lo - start : hi - start] = decoded[:, columns]
        return out

    def compressed_bytes_for(self, start: int, stop: int) -> int:
        """Coded bytes a full-width read of rows ``[start, stop)`` fetches."""
        return sum(
            self.header.blocks[index].coded_bytes
            for index in self.blocks_for(start, stop)
        )

    def read_labels(self) -> Optional[np.ndarray]:
        """Decode the label vector (``None`` for unlabelled files)."""
        segment = self.header.label_segment
        if segment is None:
            return None
        offset, coded, raw_bytes, crc = segment
        payload = self._pread(offset, coded)
        if crc is not None:
            computed = zlib.crc32(payload)
            if computed != crc:
                raise ChecksumError(
                    f"{self.path}: label segment CRC mismatch (stored "
                    f"{crc:#010x}, computed {computed:#010x})"
                )
        raw = self.codec.decode(payload, raw_bytes)
        self.payload_bytes_read += coded
        return np.frombuffer(raw, dtype=np.int64).copy()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the file descriptor."""
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def __enter__(self) -> "BlockedMatrixReader":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        h = self.header
        return (
            f"BlockedMatrixReader(rows={h.rows}, cols={h.cols}, codec={h.codec!r}, "
            f"block_rows={h.block_rows}, layout={h.layout!r}, path={str(self.path)!r})"
        )


def verify_blocked_file(path: Union[str, Path]) -> List[str]:
    """Scrub every segment of a blocked file: fetch, CRC-check, decode.

    Returns a list of human-readable problem strings (empty means clean).
    The scrub keeps going after the first bad block so one pass reports
    every corrupt region; errors that make the file unreadable at all
    (bad magic, torn trailer) yield a single entry.
    """
    path = Path(path)
    problems: List[str] = []
    try:
        reader = BlockedMatrixReader(path)
    except (ChecksumError, ValueError, OSError) as error:
        return [f"{path}: unreadable: {error}"]
    with reader:
        header = reader.header
        for index, block in enumerate(header.blocks):
            try:
                fetched = reader.fetch_block(index)
            except (ChecksumError, ValueError, OSError) as error:
                problems.append(f"{path}: block {index}: fetch failed: {error}")
                continue
            for position, segment in enumerate(block.segments):
                try:
                    reader._decode_segment(
                        fetched.payloads[position], segment, index, position
                    )
                except (ChecksumError, ValueError, OSError) as error:
                    message = str(error)
                    if str(path) not in message:
                        message = f"{path}: {message}"
                    problems.append(message)
        if header.label_segment is not None:
            try:
                reader.read_labels()
            except (ChecksumError, ValueError, OSError) as error:
                problems.append(f"{path}: labels: {error}")
    return problems
