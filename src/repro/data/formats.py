"""The M3 binary matrix format.

The central requirement of memory mapping is that the on-disk representation
*is* the in-memory representation: a dense, row-major array of fixed-width
elements with a small fixed-size header.  This module defines that format.

Layout::

    bytes 0..7     magic  b"M3MATRIX"
    bytes 8..11    format version      (uint32, little endian)
    bytes 12..15   dtype code length   (uint32) followed by the dtype string
    bytes 16..31   dtype string        (padded with NULs to 16 bytes)
    bytes 32..39   number of rows      (uint64)
    bytes 40..47   number of columns   (uint64)
    bytes 48..55   label column flag   (uint64; 1 if a label vector follows the
                                        data matrix, 0 otherwise)
    bytes 56..63   reserved            (uint64, zero)
    bytes 64..     row-major data matrix, then (optionally) an int64 label
                   vector of length ``rows``

The 64-byte header keeps the data section 64-byte aligned, which is friendly
to both the page cache and SIMD loads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

MAGIC = b"M3MATRIX"
FORMAT_VERSION = 1
HEADER_SIZE = 64
_HEADER_STRUCT = struct.Struct("<8sI I16s QQQQ")


@dataclass(frozen=True)
class BinaryMatrixHeader:
    """Parsed header of an M3 binary matrix file."""

    version: int
    dtype: np.dtype
    rows: int
    cols: int
    has_labels: bool

    @property
    def data_bytes(self) -> int:
        """Size in bytes of the data matrix section."""
        return self.rows * self.cols * self.dtype.itemsize

    @property
    def label_bytes(self) -> int:
        """Size in bytes of the label section (0 if absent)."""
        return self.rows * 8 if self.has_labels else 0

    @property
    def file_bytes(self) -> int:
        """Expected total file size."""
        return HEADER_SIZE + self.data_bytes + self.label_bytes

    @property
    def label_offset(self) -> int:
        """Byte offset of the label vector within the file."""
        return HEADER_SIZE + self.data_bytes


def _pack_header(dtype: np.dtype, rows: int, cols: int, has_labels: bool) -> bytes:
    dtype_str = np.dtype(dtype).str.encode("ascii")
    if len(dtype_str) > 16:
        raise ValueError(f"dtype string too long: {dtype_str!r}")
    return _HEADER_STRUCT.pack(
        MAGIC,
        FORMAT_VERSION,
        len(dtype_str),
        dtype_str.ljust(16, b"\0"),
        rows,
        cols,
        1 if has_labels else 0,
        0,
    )


def read_binary_matrix_header(path: Union[str, Path]) -> BinaryMatrixHeader:
    """Read and validate the header of an M3 binary matrix file.

    Besides parsing, this validates the actual file size against the size the
    header implies (``header.file_bytes``), so a truncated file fails here
    with a clear error instead of deep inside ``numpy.memmap``.
    """
    path = Path(path)
    with path.open("rb") as handle:
        raw = handle.read(HEADER_SIZE)
    if len(raw) < _HEADER_STRUCT.size:
        raise ValueError(
            f"{path} is too small to be an M3 matrix file: expected at least "
            f"a {_HEADER_STRUCT.size}-byte header, found {len(raw)} bytes"
        )
    magic, version, dtype_len, dtype_raw, rows, cols, has_labels, _reserved = (
        _HEADER_STRUCT.unpack(raw[: _HEADER_STRUCT.size])
    )
    if magic != MAGIC:
        hint = ""
        if magic == b"M3BLOCKS":
            hint = (
                "; this is a v2 blocked shard — read it through "
                "repro.data.formats_v2 or the shard:// backend"
            )
        raise ValueError(
            f"{path} is not an M3 matrix file: expected magic {MAGIC!r}, "
            f"found {magic!r}{hint}"
        )
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported M3 matrix format version {version} "
            f"(this build reads version {FORMAT_VERSION}; the file may have "
            f"been written by a newer repro)"
        )
    dtype = np.dtype(dtype_raw[:dtype_len].decode("ascii"))
    header = BinaryMatrixHeader(
        version=version,
        dtype=dtype,
        rows=rows,
        cols=cols,
        has_labels=bool(has_labels),
    )
    actual_bytes = path.stat().st_size
    if actual_bytes < header.file_bytes:
        raise ValueError(
            f"{path} is truncated: header declares a {header.rows} x {header.cols} "
            f"{header.dtype} matrix{' with labels' if header.has_labels else ''} "
            f"({header.file_bytes} bytes expected) but the file is only "
            f"{actual_bytes} bytes"
        )
    return header


def write_binary_matrix(
    path: Union[str, Path],
    data: np.ndarray,
    labels: Optional[np.ndarray] = None,
) -> BinaryMatrixHeader:
    """Write a dense matrix (and optional labels) to ``path`` in M3 format.

    Parameters
    ----------
    path:
        Destination file path.
    data:
        2-D array of shape ``(rows, cols)``.
    labels:
        Optional 1-D integer array of length ``rows``.
    """
    path = Path(path)
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if labels is not None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (data.shape[0],):
            raise ValueError(
                f"labels must have shape ({data.shape[0]},), got {labels.shape}"
            )
    rows, cols = data.shape
    header = _pack_header(data.dtype, rows, cols, labels is not None)
    with path.open("wb") as handle:
        handle.write(header.ljust(HEADER_SIZE, b"\0"))
        handle.write(np.ascontiguousarray(data).tobytes())
        if labels is not None:
            handle.write(labels.tobytes())
    return read_binary_matrix_header(path)


def create_binary_matrix(
    path: Union[str, Path],
    rows: int,
    cols: int,
    dtype: Union[str, np.dtype] = np.float64,
    with_labels: bool = False,
) -> BinaryMatrixHeader:
    """Create an (uninitialised) M3 matrix file of the given shape.

    The file is created sparse where the filesystem supports it (only the
    header is physically written, the rest is a hole), so "creating" a huge
    dataset file is cheap; rows are filled in later by an
    :class:`~repro.data.writers.OutOfCoreWriter` or by writing through a
    memory map.
    """
    path = Path(path)
    dtype = np.dtype(dtype)
    if rows < 0 or cols <= 0:
        raise ValueError(f"invalid shape ({rows}, {cols})")
    header_bytes = _pack_header(dtype, rows, cols, with_labels)
    total = HEADER_SIZE + rows * cols * dtype.itemsize + (rows * 8 if with_labels else 0)
    with path.open("wb") as handle:
        handle.write(header_bytes.ljust(HEADER_SIZE, b"\0"))
        handle.truncate(total)
    return read_binary_matrix_header(path)


def open_binary_matrix(
    path: Union[str, Path],
    mode: str = "r",
) -> Tuple[np.memmap, Optional[np.memmap], BinaryMatrixHeader]:
    """Open an M3 matrix file as memory-mapped arrays.

    Parameters
    ----------
    path:
        The matrix file.
    mode:
        ``"r"`` (read-only), ``"r+"`` (read-write) or ``"c"`` (copy-on-write),
        as accepted by :class:`numpy.memmap`.

    Returns
    -------
    (data, labels, header):
        ``data`` is a ``(rows, cols)`` memmap; ``labels`` is a ``(rows,)``
        int64 memmap or ``None``; ``header`` is the parsed header.
    """
    path = Path(path)
    header = read_binary_matrix_header(path)
    data = np.memmap(
        path,
        dtype=header.dtype,
        mode=mode,
        offset=HEADER_SIZE,
        shape=(header.rows, header.cols),
        order="C",
    )
    labels: Optional[np.memmap] = None
    if header.has_labels:
        labels = np.memmap(
            path,
            dtype=np.int64,
            mode=mode,
            offset=header.label_offset,
            shape=(header.rows,),
        )
    return data, labels, header
