"""Pseudo-random deformations and translations of digit images.

Infimnist derives an infinite supply of images by applying pseudo-random
elastic deformations and translations to MNIST digits.  We mirror that recipe
on our procedural glyphs: each generated example is produced from the digit's
canonical template by

1. a small random translation (±3 pixels in each axis),
2. a smooth random displacement field ("elastic" deformation),
3. a small random rotation and scale jitter,
4. additive pixel noise.

All randomness is driven by a seed derived deterministically from the example
index, so example *i* is always the same image — exactly the property that
makes Infimnist an "infinite supply" that can be indexed rather than stored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.digits import IMAGE_SIZE


@dataclass(frozen=True)
class DeformationParams:
    """Strengths of each deformation component.

    Attributes
    ----------
    max_translation:
        Maximum absolute translation in pixels along each axis.
    elastic_alpha:
        Amplitude of the elastic displacement field, in pixels.
    elastic_sigma:
        Smoothing radius of the displacement field, in pixels.
    max_rotation_deg:
        Maximum absolute rotation in degrees.
    scale_jitter:
        Maximum relative scale change (0.1 = ±10 %).
    noise_std:
        Standard deviation of the additive Gaussian pixel noise.
    """

    max_translation: int = 3
    elastic_alpha: float = 2.5
    elastic_sigma: float = 4.0
    max_rotation_deg: float = 12.0
    scale_jitter: float = 0.10
    noise_std: float = 0.03

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if self.max_translation < 0:
            raise ValueError("max_translation must be non-negative")
        if self.elastic_sigma <= 0:
            raise ValueError("elastic_sigma must be positive")
        if not 0 <= self.scale_jitter < 1:
            raise ValueError("scale_jitter must be in [0, 1)")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")


def _smooth_field(field: np.ndarray, sigma: float) -> np.ndarray:
    """Smooth a random field with repeated box blurs approximating a Gaussian."""
    passes = max(1, int(round(sigma)))
    result = field
    for _ in range(min(passes, 8)):
        padded = np.pad(result, 1, mode="edge")
        result = (
            padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2]
            + padded[1:-1, 2:] + padded[1:-1, 1:-1]
        ) / 5.0
    return result


def _bilinear_sample(image: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Sample ``image`` at fractional coordinates with bilinear interpolation."""
    size = image.shape[0]
    rows = np.clip(rows, 0.0, size - 1.0)
    cols = np.clip(cols, 0.0, size - 1.0)
    r0 = np.floor(rows).astype(np.intp)
    c0 = np.floor(cols).astype(np.intp)
    r1 = np.minimum(r0 + 1, size - 1)
    c1 = np.minimum(c0 + 1, size - 1)
    fr = rows - r0
    fc = cols - c0
    top = image[r0, c0] * (1 - fc) + image[r0, c1] * fc
    bottom = image[r1, c0] * (1 - fc) + image[r1, c1] * fc
    return top * (1 - fr) + bottom * fr


def deform_image(
    image: np.ndarray,
    rng: np.random.Generator,
    params: DeformationParams = DeformationParams(),
) -> np.ndarray:
    """Apply a pseudo-random deformation to a 28×28 image.

    Parameters
    ----------
    image:
        The source image, shape ``(28, 28)``, values in [0, 1].
    rng:
        NumPy random generator driving every random choice (so the result is
        fully determined by the generator's state).
    params:
        Deformation strengths.

    Returns
    -------
    numpy.ndarray
        The deformed image, same shape, values clipped to [0, 1].
    """
    if image.shape != (IMAGE_SIZE, IMAGE_SIZE):
        raise ValueError(f"expected a {IMAGE_SIZE}x{IMAGE_SIZE} image, got {image.shape}")
    params.validate()

    size = IMAGE_SIZE
    grid_rows, grid_cols = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    grid_rows = grid_rows.astype(np.float64)
    grid_cols = grid_cols.astype(np.float64)
    centre = (size - 1) / 2.0

    # 1. Rotation + scale about the image centre (inverse mapping).
    angle = np.deg2rad(rng.uniform(-params.max_rotation_deg, params.max_rotation_deg))
    scale = 1.0 + rng.uniform(-params.scale_jitter, params.scale_jitter)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    rel_r = grid_rows - centre
    rel_c = grid_cols - centre
    src_rows = (cos_a * rel_r + sin_a * rel_c) / scale + centre
    src_cols = (-sin_a * rel_r + cos_a * rel_c) / scale + centre

    # 2. Translation.
    if params.max_translation > 0:
        dr = rng.integers(-params.max_translation, params.max_translation + 1)
        dc = rng.integers(-params.max_translation, params.max_translation + 1)
    else:
        dr = dc = 0
    src_rows = src_rows - dr
    src_cols = src_cols - dc

    # 3. Elastic displacement field.
    if params.elastic_alpha > 0:
        disp_r = _smooth_field(rng.uniform(-1, 1, (size, size)), params.elastic_sigma)
        disp_c = _smooth_field(rng.uniform(-1, 1, (size, size)), params.elastic_sigma)
        src_rows = src_rows + params.elastic_alpha * disp_r
        src_cols = src_cols + params.elastic_alpha * disp_c

    deformed = _bilinear_sample(image, src_rows, src_cols)

    # 4. Pixel noise.
    if params.noise_std > 0:
        deformed = deformed + rng.normal(0.0, params.noise_std, deformed.shape)

    return np.clip(deformed, 0.0, 1.0)
