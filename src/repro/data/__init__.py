"""Dataset substrate.

The M3 paper evaluates on *Infimnist*, "an infinite supply of digit images
(0–9) derived from the well-known MNIST dataset using pseudo-random
deformations and translations", materialised as a dense matrix of up to
32 million 784-feature rows (190 GB).  We do not have the Infimnist tool or
the MNIST source images offline, so this package procedurally renders digit
glyphs and applies deterministic pseudo-random translations, elastic-style
deformations and noise — preserving what the experiments need: an arbitrarily
large, dense, learnable matrix of 28×28 grayscale digit images.

The package also provides the on-disk formats (a raw dense binary matrix
format suitable for memory mapping, plus CSV/libsvm text loaders), synthetic
Gaussian-blob generators used by unit tests, chunked out-of-core writers and a
small dataset catalog.
"""

from repro.data.digits import DIGIT_TEMPLATES, render_digit
from repro.data.deformations import DeformationParams, deform_image
from repro.data.infimnist import InfimnistGenerator, IMAGE_SHAPE, NUM_FEATURES
from repro.data.formats import (
    BinaryMatrixHeader,
    create_binary_matrix,
    open_binary_matrix,
    read_binary_matrix_header,
    write_binary_matrix,
)
from repro.data.loaders import load_csv_matrix, load_libsvm, save_csv_matrix, save_libsvm
from repro.data.synthetic import make_blobs, make_classification, make_low_rank_matrix
from repro.data.writers import OutOfCoreWriter, write_infimnist_dataset
from repro.data.catalog import DatasetCatalog, DatasetEntry

__all__ = [
    "DIGIT_TEMPLATES",
    "render_digit",
    "DeformationParams",
    "deform_image",
    "InfimnistGenerator",
    "IMAGE_SHAPE",
    "NUM_FEATURES",
    "BinaryMatrixHeader",
    "create_binary_matrix",
    "open_binary_matrix",
    "read_binary_matrix_header",
    "write_binary_matrix",
    "load_csv_matrix",
    "save_csv_matrix",
    "load_libsvm",
    "save_libsvm",
    "make_blobs",
    "make_classification",
    "make_low_rank_matrix",
    "OutOfCoreWriter",
    "write_infimnist_dataset",
    "DatasetCatalog",
    "DatasetEntry",
]
