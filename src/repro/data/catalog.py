"""A small on-disk dataset catalog.

The benchmark harness generates many dataset files (different sizes for the
Figure 1a sweep, train/test splits for the examples).  The catalog keeps a
JSON manifest next to the data files recording what each one is — shape,
dtype, generator seed, on-disk size — so runs can be reproduced and files can
be reused rather than regenerated.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Union


@dataclass
class DatasetEntry:
    """Catalog record for a single dataset file."""

    name: str
    path: str
    rows: int
    cols: int
    dtype: str
    size_bytes: int
    seed: int = 0
    description: str = ""

    @property
    def size_gib(self) -> float:
        """On-disk size in GiB."""
        return self.size_bytes / (1024 ** 3)


class DatasetCatalog:
    """JSON-backed manifest of generated dataset files.

    Parameters
    ----------
    root:
        Directory holding the data files and the ``catalog.json`` manifest.
    """

    MANIFEST_NAME = "catalog.json"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._entries: Dict[str, DatasetEntry] = {}
        self._load()

    @property
    def manifest_path(self) -> Path:
        """Path of the JSON manifest."""
        return self.root / self.MANIFEST_NAME

    def _load(self) -> None:
        if not self.manifest_path.exists():
            return
        payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        for record in payload.get("datasets", []):
            entry = DatasetEntry(**record)
            self._entries[entry.name] = entry

    def _save(self) -> None:
        payload = {"datasets": [asdict(entry) for entry in self._entries.values()]}
        self.manifest_path.write_text(json.dumps(payload, indent=2), encoding="utf-8")

    # -- CRUD ------------------------------------------------------------------

    def add(self, entry: DatasetEntry, overwrite: bool = False) -> None:
        """Register a dataset; refuses to overwrite unless ``overwrite``."""
        if entry.name in self._entries and not overwrite:
            raise KeyError(f"dataset {entry.name!r} already registered")
        self._entries[entry.name] = entry
        self._save()

    def get(self, name: str) -> DatasetEntry:
        """Look up a dataset by name; raises ``KeyError`` if absent."""
        return self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[DatasetEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def remove(self, name: str, delete_file: bool = False) -> None:
        """Unregister a dataset and optionally delete its file."""
        entry = self._entries.pop(name, None)
        if entry is None:
            raise KeyError(f"dataset {name!r} is not registered")
        if delete_file:
            path = Path(entry.path)
            if path.exists():
                path.unlink()
        self._save()

    def resolve_path(self, name: str) -> Path:
        """Absolute path of a registered dataset's file."""
        return Path(self.get(name).path)

    def find_existing(self, name: str) -> Optional[DatasetEntry]:
        """Return the entry if registered *and* its file exists, else ``None``."""
        entry = self._entries.get(name)
        if entry is None:
            return None
        if not Path(entry.path).exists():
            return None
        return entry
