"""Driver for the ``m3 lint`` static pass.

Collects ``.py`` files, parses them once with :mod:`ast`, and runs the
selected rules from :mod:`repro.analysis.rules` over every module.  Rule
R004 additionally gets the whole-batch module index so it can resolve
``__all__`` re-exports (the common ``__init__`` pattern) back to the
defining module.

Suppression comments
--------------------
A trailing ``# lint: <tags>`` comment on the flagged line adjusts the
linter; recognised tags are ``disable=RNNN`` (mute one rule on that line),
``transfers-ownership`` (R002: the created resource is owned elsewhere)
and ``caller-holds-lock`` (R003, on a ``def`` line: the method is only
called with the owning lock held).  ``# noqa`` on an ``except`` line marks
a deliberate broad handler for R003.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.findings import RULES, Finding

__all__ = ["LintError", "ParsedModule", "LintReport", "lint_paths", "collect_files"]


class LintError(ValueError):
    """A usage error (unknown rule, missing path, unreadable file)."""


_LINT_TAG = re.compile(r"#\s*lint:\s*(?P<body>[^#]*)")


@dataclass
class ParsedModule:
    """One parsed source file plus the source-level context rules need."""

    path: Path
    name: str
    tree: ast.Module
    lines: List[str]

    def line(self, lineno: int) -> str:
        """The 1-based physical source line (empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def tags(self, lineno: int) -> Set[str]:
        """``# lint:`` tags present on the given line."""
        match = _LINT_TAG.search(self.line(lineno))
        if not match:
            return set()
        body = match.group("body")
        # Prose may follow the tags after an em-dash or double space.
        body = body.split("—")[0].split("--")[0]
        return {tag.strip() for tag in body.split(",") if tag.strip()}

    def suppressed(self, lineno: int, rule: str) -> bool:
        """Whether ``rule`` is muted on ``lineno`` via ``# lint: disable=``."""
        return f"disable={rule}" in self.tags(lineno)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files: int
    selected: List[str]
    modules: List[ParsedModule] = field(default_factory=list, repr=False)

    @property
    def clean(self) -> bool:
        """True when no findings were produced."""
        return not self.findings


def module_name_for(path: Path) -> str:
    """The dotted module name for ``path``.

    Files under a ``repro`` package directory get their real dotted name
    (``repro.api.chunks``) so registry keys and re-export resolution line
    up; stray files (test fixtures) are named by their stem.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[index:])
    return parts[-1] if parts else ""


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if not path.exists():
            raise LintError(f"path does not exist: {path}")
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise LintError(f"not a Python file or directory: {path}")
    # De-duplicate while preserving order.
    seen: Set[Path] = set()
    unique = []
    for candidate in files:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(candidate)
    return unique


def parse_module(path: Path) -> ParsedModule:
    """Parse one file, attaching parent links used by the rules."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from error
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        raise LintError(f"syntax error in {path}: {error}") from error
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]
    return ParsedModule(
        path=path,
        name=module_name_for(path),
        tree=tree,
        lines=text.splitlines(),
    )


def resolve_rules(select: Optional[str]) -> List[str]:
    """Validate a ``--select`` expression into an ordered rule-id list."""
    if not select:
        return sorted(RULES)
    chosen = []
    for token in select.split(","):
        rule = token.strip().upper()
        if not rule:
            continue
        if rule not in RULES:
            raise LintError(
                f"unknown rule {rule!r} (known: {', '.join(sorted(RULES))})"
            )
        if rule not in chosen:
            chosen.append(rule)
    if not chosen:
        raise LintError("--select produced an empty rule set")
    return chosen


def lint_paths(
    paths: Sequence[Path], select: Optional[str] = None
) -> LintReport:
    """Lint ``paths`` with the selected rules and return the full report."""
    from repro.analysis import rules as rule_impls

    selected = resolve_rules(select)
    files = collect_files([Path(path) for path in paths])
    modules = [parse_module(path) for path in files]
    index = {module.name: module for module in modules}

    findings: List[Finding] = []
    for module in modules:
        if "R001" in selected:
            findings.extend(rule_impls.check_r001(module))
        if "R002" in selected:
            findings.extend(rule_impls.check_r002(module))
        if "R003" in selected:
            findings.extend(rule_impls.check_r003(module))
        if "R004" in selected:
            findings.extend(rule_impls.check_r004(module, index))
        if "R005" in selected:
            findings.extend(rule_impls.check_r005(module))

    # The same definition can be reached through several exporting modules
    # (R004 re-export chasing) — keep one finding per distinct diagnostic.
    unique = sorted(set(findings), key=lambda finding: finding.sort_key())
    findings = unique
    return LintReport(
        findings=findings,
        files=len(files),
        selected=selected,
        modules=modules,
    )
