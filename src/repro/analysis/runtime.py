"""Opt-in runtime verification of the concurrency invariants.

This module is the dynamic half of ``repro.analysis``: where the static
linter (rules R001–R003) proves properties of the *source*, the classes
here check the same properties on the *live* program.

Enablement
----------
Instrumentation is off by default and costs nothing when off: the
factories :func:`make_lock`, :func:`make_rlock` and :func:`make_condition`
return plain :mod:`threading` primitives unless analysis is enabled, so the
hot paths run exactly the code they ran before this module existed.  Enable
it with ``REPRO_ANALYSIS=1`` in the environment, or programmatically with
:func:`set_analysis_enabled` (the benchmark and the test suite use the
latter so they can compare both modes in one process).  The decision is
taken when each lock is *constructed*, which is why toggling mid-stream
affects only objects built afterwards.

What runs when enabled
----------------------
* :class:`OrderedLock` keeps a per-thread acquisition stack and checks two
  things on every acquire: the declared rank from
  :data:`repro.analysis.locks.LOCK_ORDER` must strictly increase along the
  stack, and the edge ``held -> acquiring`` must not close a cycle in the
  global :class:`LockOrderGraph`.  Either violation raises
  :class:`LockOrderViolation` *before* blocking on the lock — the bug
  surfaces as a traceback in the offending thread instead of a deadlock.
* :class:`LeaseTracker` records every activated
  :class:`~repro.api.chunks.BufferLease` until its refcount returns to
  zero; the suite-wide pytest fixture in ``tests/conftest.py`` fails any
  test that leaks one.
* :class:`ThreadLeakDetector` snapshots live threads so the same fixture
  can fail tests that leave non-daemon threads running.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.analysis.locks import LOCK_ORDER

__all__ = [
    "LockOrderViolation",
    "OrderedLock",
    "LockOrderGraph",
    "LeaseTracker",
    "ThreadLeakDetector",
    "analysis_enabled",
    "set_analysis_enabled",
    "make_lock",
    "make_rlock",
    "make_condition",
    "GRAPH",
    "LEASES",
]


class LockOrderViolation(RuntimeError):
    """A lock acquisition violated the declared or observed lock order."""


_FORCE: Optional[bool] = None


def analysis_enabled() -> bool:
    """Whether runtime instrumentation is currently enabled.

    ``set_analysis_enabled`` overrides take precedence; otherwise the
    ``REPRO_ANALYSIS`` environment variable decides (any value other than
    empty/``0`` enables).
    """
    if _FORCE is not None:
        return _FORCE
    return os.environ.get("REPRO_ANALYSIS", "").strip() not in ("", "0")


def set_analysis_enabled(value: Optional[bool]) -> Optional[bool]:
    """Force instrumentation on/off in-process, returning the prior override.

    Pass ``None`` to fall back to the ``REPRO_ANALYSIS`` environment
    variable.  Only locks constructed *after* the call are affected.
    """
    global _FORCE
    previous = _FORCE
    _FORCE = value
    return previous


class LockOrderGraph:
    """The global directed graph of observed ``held -> acquired`` edges.

    Nodes are lock *names* (not instances), so the order learned from one
    stream/server applies to every other instance of the same subsystem.
    An acquisition that would close a cycle — i.e. some other thread has
    already demonstrated the opposite order — raises
    :class:`LockOrderViolation` before the edge is recorded.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: Dict[str, Set[str]] = {}

    def record(self, held: str, acquiring: str) -> None:
        """Record that a thread acquired ``acquiring`` while holding ``held``."""
        if held == acquiring:
            return
        # Fast path: this exact edge was already recorded (and therefore
        # already cycle-checked).  A plain dict/set read is safe under the
        # GIL and keeps the steady-state cost of a nested acquisition at
        # two lookups instead of a contended global lock.
        succ = self._edges.get(held)
        if succ is not None and acquiring in succ:
            return
        with self._lock:
            if self._reaches(acquiring, held):
                raise LockOrderViolation(
                    f"acquiring {acquiring!r} while holding {held!r} inverts "
                    f"the previously observed lock order "
                    f"({acquiring!r} ->* {held!r} already recorded)"
                )
            self._edges.setdefault(held, set()).add(acquiring)

    def _reaches(self, source: str, target: str) -> bool:
        """Whether ``target`` is reachable from ``source`` (caller holds lock)."""
        frontier = [source]
        seen = {source}
        while frontier:
            node = frontier.pop()
            if node == target:
                return True
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def edges(self) -> Dict[str, Set[str]]:
        """A snapshot copy of the recorded edges."""
        with self._lock:
            return {node: set(succ) for node, succ in self._edges.items()}

    def clear(self) -> None:
        """Forget every recorded edge (test isolation)."""
        with self._lock:
            self._edges.clear()


#: Process-wide lock-order graph shared by every :class:`OrderedLock`.
GRAPH = LockOrderGraph()

_held = threading.local()


def _held_stack() -> List["OrderedLock"]:
    """The calling thread's stack of currently held ordered locks."""
    try:
        return _held.stack
    except AttributeError:
        _held.stack = []
        return _held.stack


class OrderedLock:
    """A lock wrapper that enforces rank order and learns the lock graph.

    Implements the full lock protocol (``acquire``/``release``/context
    manager) plus the private ``_release_save``/``_acquire_restore``/
    ``_is_owned`` hooks :class:`threading.Condition` uses, so
    ``threading.Condition(OrderedLock(name, reentrant=True))`` behaves like
    a condition over an ``RLock`` — including fully releasing (and popping
    from the held stack) around ``wait()``.
    """

    def __init__(
        self, name: str, rank: Optional[int] = None, reentrant: bool = False
    ) -> None:
        self.name = name
        self.rank = LOCK_ORDER.get(name) if rank is None else rank
        self.reentrant = reentrant
        # The wrapped primitive; ordering is tracked by the wrapper itself.
        self._inner: Any = (  # lint: disable=R001
            threading.RLock() if reentrant else threading.Lock()
        )

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"OrderedLock({self.name!r}, rank={self.rank}, {kind})"

    # -- order checking ------------------------------------------------------

    def _check(self) -> None:
        """Validate this acquisition against the thread's held stack."""
        stack = _held_stack()
        for entry in stack:
            if entry is self:
                if self.reentrant:
                    return  # re-entrant reacquire: no new ordering introduced
                raise LockOrderViolation(
                    f"{self.name!r} acquired twice by one thread "
                    f"(non-reentrant lock: guaranteed self-deadlock)"
                )
        if not stack:
            return
        top = stack[-1]
        if self.rank is not None and top.rank is not None and self.rank <= top.rank:
            raise LockOrderViolation(
                f"acquiring {self.name!r} (rank {self.rank}) while holding "
                f"{top.name!r} (rank {top.rank}): ranks must strictly "
                f"increase along the acquisition stack (see "
                f"repro.analysis.locks.LOCK_ORDER)"
            )
        GRAPH.record(top.name, self.name)

    # -- lock protocol -------------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire after validating lock order; returns the inner result."""
        self._check()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _held_stack().append(self)
        return acquired

    def release(self) -> None:
        """Release one level of the lock, unwinding the held stack."""
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    # -- threading.Condition protocol ----------------------------------------

    def _is_owned(self) -> bool:
        return any(entry is self for entry in _held_stack())

    def _release_save(self) -> Tuple[Any, int]:
        """Fully release around ``Condition.wait``, popping our stack entries."""
        stack = _held_stack()
        count = sum(1 for entry in stack if entry is self)
        stack[:] = [entry for entry in stack if entry is not self]
        if self.reentrant:
            state = self._inner._release_save()
        else:
            self._inner.release()
            state = None
        return (state, count)

    def _acquire_restore(self, saved: Tuple[Any, int]) -> None:
        """Reacquire after ``Condition.wait``, re-validating lock order."""
        state, count = saved
        self._check()
        if self.reentrant:
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        _held_stack().extend([self] * count)


# -- construction factories (the zero-cost passthrough) -----------------------

LockLike = Union[threading.Lock, OrderedLock]


def make_lock(name: str) -> Any:
    """A mutex named ``name``: plain ``threading.Lock`` unless analysis is on."""
    if analysis_enabled():
        return OrderedLock(name)
    return threading.Lock()


def make_rlock(name: str) -> Any:
    """A re-entrant mutex named ``name`` (plain ``RLock`` unless analysis is on)."""
    if analysis_enabled():
        return OrderedLock(name, reentrant=True)
    return threading.RLock()


def make_condition(name: str) -> threading.Condition:
    """A condition variable whose underlying lock is order-checked when enabled."""
    if analysis_enabled():
        return threading.Condition(OrderedLock(name, reentrant=True))
    return threading.Condition(threading.RLock())


# -- leak detection -----------------------------------------------------------


class LeaseTracker:
    """Registry of outstanding (activated, unreleased) buffer leases.

    :class:`~repro.api.chunks.BufferLease` reports activation and final
    release here when :attr:`enabled` is true; the check at the call sites
    is a single attribute read, so the tracker costs nothing when idle.
    The suite-wide fixture enables it around every test and fails the test
    if leases remain outstanding afterwards.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._outstanding: Dict[int, str] = {}
        self.activated_total = 0

    def activated(self, lease: Any) -> None:
        """Record that ``lease`` went live (refcount 0 -> 1)."""
        with self._lock:
            self.activated_total += 1
            self._outstanding[id(lease)] = repr(lease)

    def released(self, lease: Any) -> None:
        """Record that ``lease`` fully released (refcount back to 0)."""
        with self._lock:
            self._outstanding.pop(id(lease), None)

    def outstanding(self) -> List[str]:
        """Descriptions of every lease currently checked out."""
        with self._lock:
            return list(self._outstanding.values())

    def reset(self) -> None:
        """Drop all tracked state (start of a test)."""
        with self._lock:
            self._outstanding.clear()
            self.activated_total = 0


#: Process-wide lease tracker hooked into ``BufferLease``.
LEASES = LeaseTracker()


class ThreadLeakDetector:
    """Detects threads a block of code started but never joined.

    Usage: ``start()`` before the code under test, ``leaked()`` after.
    Only *non-daemon* threads count as leaks — the streaming pipeline's
    daemon readers are reaped by their owners' ``close()`` and by process
    exit, and each gets a short grace join before being reported.
    """

    def __init__(self) -> None:
        self._before: Set[int] = set()

    def start(self) -> None:
        """Snapshot the currently live threads."""
        self._before = {
            thread.ident for thread in threading.enumerate() if thread.ident
        }

    def leaked(self, grace: float = 1.0) -> List[threading.Thread]:
        """New non-daemon threads still alive after up to ``grace`` seconds."""
        candidates = [
            thread
            for thread in threading.enumerate()
            if thread.ident not in self._before
            and not thread.daemon
            and thread.is_alive()
        ]
        for thread in candidates:
            thread.join(timeout=grace)
        return [thread for thread in candidates if thread.is_alive()]
