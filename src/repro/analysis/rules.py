"""Rule implementations R001–R005 for the ``m3 lint`` static pass.

Each ``check_rNNN`` function takes a :class:`~repro.analysis.linter.ParsedModule`
(whose AST nodes carry ``_lint_parent`` links) and returns a list of
:class:`~repro.analysis.findings.Finding`.  The rules are deliberately
syntactic and flow-insensitive: they encode the *conventions* this codebase
commits to (rank-ordered locks, lexically scoped guards, ``finally``-based
cleanup), which is what makes them checkable without a data-flow engine.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.linter import ParsedModule
from repro.analysis.locks import LOCK_ORDER

__all__ = ["check_r001", "check_r002", "check_r003", "check_r004", "check_r005"]

_LOCK_CTORS = {"Lock", "RLock", "Condition"}
_LOCK_FACTORIES = {"make_lock", "make_rlock", "make_condition"}
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "appendleft", "popleft",
}
_CLOSERS = {
    "file": ("close",),
    "dataset": ("close",),
    "executor": ("shutdown",),
    "thread": ("join",),
    "lease": ("release",),
}


# -- shared AST helpers -------------------------------------------------------


def _parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_lint_parent", None)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _unwrap_subscripts(node: ast.AST) -> ast.AST:
    """Strip ``x[...]`` layers: ``self.results[i]`` -> ``self.results``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    current = _parent(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Keep climbing: methods live inside their class.
            current = _parent(current)
            continue
        current = _parent(current)
    return None


def _scope_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested defs/classes."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _functions(module: ParsedModule) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _in_finally_or_handler(node: ast.AST) -> bool:
    """Whether ``node`` sits inside a ``finally`` block or ``except`` handler."""
    child = node
    current = _parent(node)
    while current is not None:
        if isinstance(current, ast.Try):
            for stmt in current.finalbody:
                if child is stmt or any(child is sub for sub in ast.walk(stmt)):
                    return True
        if isinstance(current, ast.ExceptHandler):
            return True
        child = current
        current = _parent(current)
    return False


def _module_ranks(module: ParsedModule) -> Dict[str, int]:
    """A module-level ``LOCK_RANKS = {...}`` literal, if declared.

    This is the extension point single-file code (and the lint fixtures)
    use to declare ranks without touching the global registry.
    """
    ranks: Dict[str, int] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "LOCK_RANKS" not in targets or not isinstance(node.value, ast.Dict):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
            ):
                ranks[key.value] = value.value
    return ranks


# -- R001: lock order ---------------------------------------------------------


def _lock_ctor_calls(value: ast.AST) -> List[Tuple[ast.Call, str]]:
    """Lock-creating calls inside an assignment value.

    Returns ``(call, kind)`` pairs where kind is ``"raw"`` for direct
    ``threading.Lock/RLock/Condition`` construction and ``"factory"`` for
    the sanctioned ``make_lock``/``make_rlock``/``make_condition`` helpers.
    """
    calls: List[Tuple[ast.Call, str]] = []
    for node in ast.walk(value):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base == "threading" and func.attr in _LOCK_CTORS:
                calls.append((node, "raw"))
            elif func.attr in _LOCK_FACTORIES:
                calls.append((node, "factory"))
        elif isinstance(func, ast.Name):
            if func.id in _LOCK_CTORS:
                calls.append((node, "raw"))
            elif func.id in _LOCK_FACTORIES:
                calls.append((node, "factory"))
    return calls


def _rank_for_expr(
    expr: ast.AST, module: ParsedModule, ranks: Dict[str, int], class_name: Optional[str]
) -> Optional[Tuple[str, int]]:
    """Resolve a lock expression (``self._lock``, ``state.cond``) to its rank."""
    dotted = _dotted(expr)
    if dotted is None:
        return None
    last = dotted.split(".")[-1]
    if dotted.startswith("self.") and class_name:
        key = f"{module.name}.{class_name}.{last}"
        if key in LOCK_ORDER:
            return key, LOCK_ORDER[key]
    for candidate in (dotted, last):
        if candidate in ranks:
            return candidate, ranks[candidate]
    suffix_matches = [k for k in LOCK_ORDER if k.endswith(f".{last}")]
    if len(suffix_matches) == 1:
        return suffix_matches[0], LOCK_ORDER[suffix_matches[0]]
    return None


def check_r001(module: ParsedModule) -> List[Finding]:
    """Declared ranks, rank-ordered nesting, and acquire/release pairing."""
    findings: List[Finding] = []
    ranks = _module_ranks(module)

    # (a) Every constructed lock must have a declared rank.
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign):
            targets: Sequence[ast.AST] = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for call, kind in _lock_ctor_calls(value):
            if module.suppressed(call.lineno, "R001") or module.suppressed(
                node.lineno, "R001"
            ):
                continue
            if kind == "factory":
                if not call.args or not isinstance(call.args[0], ast.Constant):
                    continue  # dynamic name: checked at runtime instead
                name = call.args[0].value
                if name not in LOCK_ORDER and name not in ranks:
                    findings.append(
                        Finding(
                            rule="R001",
                            path=str(module.path),
                            line=call.lineno,
                            col=call.col_offset,
                            message=(
                                f"lock {name!r} has no declared rank: add it "
                                f"to repro.analysis.locks.LOCK_ORDER"
                            ),
                        )
                    )
                continue
            # Raw threading primitive: derive the dotted registry key.
            enclosing = _enclosing_class(node)
            keys: List[str] = []
            for target in targets:
                attr = _self_attr(target)
                if attr and enclosing is not None:
                    keys.append(f"{module.name}.{enclosing.name}.{attr}")
                elif isinstance(target, ast.Name):
                    keys.append(f"{module.name}.{target.id}")
            declared = any(
                key in LOCK_ORDER or key.split(".")[-1] in ranks for key in keys
            )
            if not declared:
                label = keys[0] if keys else "<local lock>"
                findings.append(
                    Finding(
                        rule="R001",
                        path=str(module.path),
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"lock {label!r} has no declared rank: register it "
                            f"in LOCK_ORDER (or a module LOCK_RANKS literal) "
                            f"and construct it via repro.analysis.runtime."
                            f"make_lock/make_rlock/make_condition"
                        ),
                    )
                )

    # (b) Nested `with` acquisitions must strictly increase in rank.
    def scan_with(
        body: Sequence[ast.stmt],
        held: List[Tuple[str, int]],
        class_name: Optional[str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.With):
                acquired: List[Tuple[str, int]] = []
                for item in stmt.items:
                    resolved = _rank_for_expr(
                        item.context_expr, module, ranks, class_name
                    )
                    if resolved is None:
                        continue
                    key, rank = resolved
                    inner = held + acquired
                    if (
                        inner
                        and key != inner[-1][0]
                        and rank <= inner[-1][1]
                        and not module.suppressed(stmt.lineno, "R001")
                    ):
                        findings.append(
                            Finding(
                                rule="R001",
                                path=str(module.path),
                                line=stmt.lineno,
                                col=stmt.col_offset,
                                message=(
                                    f"acquiring {key!r} (rank {rank}) while "
                                    f"holding {inner[-1][0]!r} (rank "
                                    f"{inner[-1][1]}): lock ranks must "
                                    f"strictly increase"
                                ),
                            )
                        )
                    acquired.append((key, rank))
                scan_with(stmt.body, held + acquired, class_name)
                continue
            # Recurse into compound statements, keeping the held stack.
            for field_name in ("body", "orelse", "finalbody", "handlers"):
                child = getattr(stmt, field_name, None)
                if not child:
                    continue
                if field_name == "handlers":
                    for handler in child:
                        scan_with(handler.body, held, class_name)
                else:
                    scan_with(child, held, class_name)

    for func in _functions(module):
        enclosing = _enclosing_class(func)
        scan_with(func.body, [], enclosing.name if enclosing else None)

    # (c) Explicit .acquire() calls need a paired .release() in the same scope.
    for func in _functions(module):
        acquires: Dict[str, ast.Call] = {}
        releases: Set[str] = set()
        enclosing = _enclosing_class(func)
        class_name = enclosing.name if enclosing else None
        for node in _scope_nodes(func):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            base = node.func.value
            dotted = _dotted(base)
            if dotted is None:
                continue
            last = dotted.split(".")[-1].lower()
            lockish = (
                "lock" in last
                or "cond" in last
                or "mutex" in last
                or _rank_for_expr(base, module, ranks, class_name) is not None
            )
            if not lockish:
                continue
            if node.func.attr == "acquire":
                if not module.suppressed(node.lineno, "R001"):
                    acquires.setdefault(dotted, node)
            elif node.func.attr == "release":
                releases.add(dotted)
        for dotted, call in acquires.items():
            if dotted not in releases:
                findings.append(
                    Finding(
                        rule="R001",
                        path=str(module.path),
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{dotted}.acquire() has no paired "
                            f"{dotted}.release() in this scope: use a `with` "
                            f"block or try/finally"
                        ),
                    )
                )
    return findings


# -- R002: resource discipline ------------------------------------------------


def _creation_kind(call: ast.Call) -> Optional[str]:
    """Classify a call that creates a resource needing explicit cleanup."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "file"
        if func.id == "ThreadPoolExecutor":
            return "executor"
        if func.id == "Thread":
            return "thread"
    elif isinstance(func, ast.Attribute):
        base = _dotted(func.value)
        base_last = base.split(".")[-1] if base else ""
        if func.attr == "open" and base_last in ("session", "_session"):
            return "dataset"
        if func.attr == "Thread" and base == "threading":
            return "thread"
        if func.attr == "ThreadPoolExecutor":
            return "executor"
        if func.attr == "lease":
            return "lease"
    return None


def _creation_disposition(call: ast.Call) -> Tuple[str, Optional[str]]:
    """How a creation call's value is consumed at its statement.

    Returns ``(disposition, name)`` where disposition is one of ``"with"``,
    ``"transfer"``, ``"tracked"`` (assigned to a local name, returned with
    that name), or ``"discarded"``.
    """
    node: ast.AST = call
    current = _parent(call)
    while current is not None:
        if isinstance(current, ast.withitem):
            return "with", None
        if isinstance(current, ast.Call) and node is not current.func:
            return "transfer", None  # fed straight into another call
        if isinstance(current, (ast.Return, ast.Yield, ast.YieldFrom)):
            return "transfer", None
        if isinstance(current, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in current.targets
            ):
                return "transfer", None
            if len(current.targets) == 1 and isinstance(current.targets[0], ast.Name):
                return "tracked", current.targets[0].id
            return "transfer", None
        if isinstance(current, ast.AnnAssign):
            if isinstance(current.target, ast.Name):
                return "tracked", current.target.id
            return "transfer", None
        if isinstance(current, ast.Expr):
            return "discarded", None
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            break
        node = current
        current = _parent(current)
    return "transfer", None


def _name_satisfied(func: ast.AST, name: str, kind: str) -> bool:
    """Whether local ``name`` of resource ``kind`` is provably cleaned up."""
    closers = _CLOSERS[kind]
    for node in _scope_nodes(func):
        if isinstance(node, ast.withitem):
            dotted = _dotted(node.context_expr)
            if dotted == name or (dotted or "").startswith(f"{name}."):
                return True
        if isinstance(node, ast.Call):
            # name.close()/join()/release()/shutdown() on a cleanup path.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in closers
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and _in_finally_or_handler(node)
            ):
                return True
            # name handed to another call (append to a pool, wrap, etc.).
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
        if isinstance(node, ast.Assign):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == name
                and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
            ):
                return True
    return False


def check_r002(module: ParsedModule) -> List[Finding]:
    """Leases/files/datasets/executors/threads are cleaned up on all paths."""
    findings: List[Finding] = []
    for func in _functions(module):
        for node in _scope_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            kind = _creation_kind(node)
            if kind is None:
                continue
            if module.suppressed(node.lineno, "R002"):
                continue
            if "transfers-ownership" in module.tags(node.lineno):
                continue
            disposition, name = _creation_disposition(node)
            if disposition in ("with", "transfer"):
                continue
            if disposition == "discarded":
                findings.append(
                    Finding(
                        rule="R002",
                        path=str(module.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{kind} created and discarded: bind it and close "
                            f"it, or mark the line '# lint: transfers-ownership'"
                        ),
                        symbol=func.name,
                    )
                )
                continue
            assert name is not None
            if not _name_satisfied(func, name, kind):
                closer = "/".join(_CLOSERS[kind])
                findings.append(
                    Finding(
                        rule="R002",
                        path=str(module.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{kind} {name!r} may leak: use `with`, call "
                            f".{closer}() in try/finally, or mark "
                            f"'# lint: transfers-ownership'"
                        ),
                        symbol=func.name,
                    )
                )
    return findings


# -- R003: concurrency hygiene ------------------------------------------------


def _is_broad_exception(type_node: Optional[ast.AST]) -> bool:
    if type_node is None:
        return False
    names: List[str] = []
    if isinstance(type_node, ast.Tuple):
        names = [_dotted(el) or "" for el in type_node.elts]
    else:
        names = [_dotted(type_node) or ""]
    return any(name in ("Exception", "BaseException") for name in names)


def _class_lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attribute names on ``self`` that hold locks/conditions for ``cls``."""
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            targets: Sequence[ast.AST] = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not _lock_ctor_calls(value):
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr:
                attrs.add(attr)
    return attrs


def check_r003(module: ParsedModule) -> List[Finding]:
    """Bare/swallowed excepts, sleep-polling, and unlocked shared mutation."""
    findings: List[Finding] = []

    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler):
            line = module.line(node.lineno)
            if "# noqa" in line or module.suppressed(node.lineno, "R003"):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        rule="R003",
                        path=str(module.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "bare `except:` swallows KeyboardInterrupt and "
                            "masks thread failures: catch a specific type"
                        ),
                    )
                )
            elif _is_broad_exception(node.type) and all(
                isinstance(stmt, ast.Pass) for stmt in node.body
            ):
                findings.append(
                    Finding(
                        rule="R003",
                        path=str(module.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "`except Exception: pass` silently swallows "
                            "errors in a thread path: handle, log, or "
                            "annotate with `# noqa: BLE001 — reason`"
                        ),
                    )
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("time.sleep", "sleep") and not module.suppressed(
                node.lineno, "R003"
            ):
                findings.append(
                    Finding(
                        rule="R003",
                        path=str(module.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "time.sleep polling in a hot path: wait on a "
                            "Condition/Event with a timeout instead"
                        ),
                    )
                )

    # Unlocked mutation of shared containers in lock-owning classes.
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_attrs = _class_lock_attrs(cls)
        if not lock_attrs:
            continue
        guards = {f"self.{attr}" for attr in lock_attrs}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            if "caller-holds-lock" in module.tags(method.lineno):
                continue
            findings.extend(
                _unlocked_mutations(module, cls, method, guards, lock_attrs)
            )
    return findings


def _mutated_self_attr(node: ast.AST, lock_attrs: Set[str]) -> Optional[Tuple[str, int, int]]:
    """``(attr, line, col)`` when ``node`` mutates a shared ``self`` container."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr not in _MUTATORS:
            return None
        base = _unwrap_subscripts(node.func.value)
        attr = _self_attr(base)
        if attr and attr not in lock_attrs:
            return attr, node.lineno, node.col_offset
    elif isinstance(node, (ast.Assign, ast.Delete)):
        targets = node.targets
        for target in targets:
            if isinstance(target, ast.Subscript):
                attr = _self_attr(_unwrap_subscripts(target))
                if attr and attr not in lock_attrs:
                    return attr, target.lineno, target.col_offset
    elif isinstance(node, ast.AugAssign):
        base = _unwrap_subscripts(node.target)
        while isinstance(base, ast.Attribute) and not (
            isinstance(base.value, ast.Name) and base.value.id == "self"
        ):
            base = base.value
        attr = _self_attr(base)
        if attr and attr not in lock_attrs:
            return attr, node.lineno, node.col_offset
    return None


def _unlocked_mutations(
    module: ParsedModule,
    cls: ast.ClassDef,
    method: ast.AST,
    guards: Set[str],
    lock_attrs: Set[str],
) -> List[Finding]:
    findings: List[Finding] = []

    def report(mutation: Tuple[str, int, int]) -> None:
        attr, line, col = mutation
        if module.suppressed(line, "R003"):
            return
        findings.append(
            Finding(
                rule="R003",
                path=str(module.path),
                line=line,
                col=col,
                message=(
                    f"self.{attr} mutated outside `with self."
                    f"{'/self.'.join(sorted(lock_attrs))}` in "
                    f"lock-owning class {cls.name}: guard it or "
                    f"annotate the method `# lint: caller-holds-lock`"
                ),
                symbol=f"{cls.name}.{getattr(method, 'name', '?')}",
            )
        )

    compound = (ast.If, ast.For, ast.While, ast.Try)

    def scan(body: Sequence[ast.stmt], guarded: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.With):
                now_guarded = guarded or any(
                    _dotted(item.context_expr) in guards for item in stmt.items
                )
                scan(stmt.body, now_guarded)
                continue
            if isinstance(stmt, compound):
                for field_name in ("body", "orelse", "finalbody"):
                    child = getattr(stmt, field_name, None)
                    if child:
                        scan(child, guarded)
                for handler in getattr(stmt, "handlers", []) or []:
                    scan(handler.body, guarded)
                continue
            if guarded:
                continue
            for node in ast.walk(stmt):
                mutation = _mutated_self_attr(node, lock_attrs)
                if mutation:
                    report(mutation)

    scan(getattr(method, "body", []), False)
    return findings


# -- R004: API surface --------------------------------------------------------


def _module_exports(module: ParsedModule) -> List[str]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            if isinstance(node.value, (ast.List, ast.Tuple)):
                return [
                    el.value
                    for el in node.value.elts
                    if isinstance(el, ast.Constant) and isinstance(el.value, str)
                ]
    return []


def _resolve_import_source(module: ParsedModule, name: str) -> Optional[str]:
    """The dotted module an ``__all__`` name is imported from, if any."""
    for node in module.tree.body:
        if not isinstance(node, ast.ImportFrom):
            continue
        for alias in node.names:
            exported = alias.asname or alias.name
            if exported != name:
                continue
            if node.level == 0:
                return node.module
            # Relative import: resolve against this module's package.
            package_parts = module.name.split(".")
            if node.level > len(package_parts):
                return None
            base = package_parts[: len(package_parts) - (node.level - 1)]
            if node.module:
                base = base + node.module.split(".")
            return ".".join(base)
    return None


def _find_definition(
    module: ParsedModule, name: str, index: Dict[str, ParsedModule]
) -> Tuple[Optional[ParsedModule], Optional[ast.AST]]:
    """Chase ``name`` through re-exports to its defining module and node."""
    current: Optional[ParsedModule] = module
    for _ in range(8):
        if current is None:
            return None, None
        for node in current.tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and node.name == name
            ):
                return current, node
        source = _resolve_import_source(current, name)
        if source is None:
            return None, None
        current = index.get(source)
    return None, None


def _unannotated_args(func: ast.AST) -> List[str]:
    args = getattr(func, "args", None)
    if args is None:
        return []
    missing = []
    positional = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for arg in positional:
        if arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    return missing


def _check_callable(
    module: ParsedModule,
    defining: ParsedModule,
    node: ast.AST,
    qualname: str,
    require_return: bool,
    require_docstring: bool = True,
) -> List[Finding]:
    findings = []
    if module.suppressed(node.lineno, "R004") or defining.suppressed(
        node.lineno, "R004"
    ):
        return findings
    if require_docstring and ast.get_docstring(node) is None:
        findings.append(
            Finding(
                rule="R004",
                path=str(defining.path),
                line=node.lineno,
                col=node.col_offset,
                message=f"exported {qualname} has no docstring",
                symbol=qualname,
            )
        )
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        missing = _unannotated_args(node)
        if missing:
            findings.append(
                Finding(
                    rule="R004",
                    path=str(defining.path),
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"exported {qualname} is missing type annotations "
                        f"for: {', '.join(missing)}"
                    ),
                    symbol=qualname,
                )
            )
        if require_return and node.returns is None:
            findings.append(
                Finding(
                    rule="R004",
                    path=str(defining.path),
                    line=node.lineno,
                    col=node.col_offset,
                    message=f"exported {qualname} has no return annotation",
                    symbol=qualname,
                )
            )
    return findings


def check_r004(
    module: ParsedModule, index: Dict[str, ParsedModule]
) -> List[Finding]:
    """``__all__`` exports carry docstrings and complete annotations."""
    findings: List[Finding] = []
    exports = _module_exports(module)
    if not exports:
        return findings
    seen: Set[Tuple[str, int]] = set()
    for name in exports:
        defining, node = _find_definition(module, name, index)
        if defining is None or node is None:
            continue  # external dependency or dynamically created
        key = (str(defining.path), node.lineno)
        if key in seen:
            continue
        seen.add(key)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(
                _check_callable(module, defining, node, name, require_return=True)
            )
        elif isinstance(node, ast.ClassDef):
            if (
                ast.get_docstring(node) is None
                and not defining.suppressed(node.lineno, "R004")
            ):
                findings.append(
                    Finding(
                        rule="R004",
                        path=str(defining.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=f"exported class {name} has no docstring",
                        symbol=name,
                    )
                )
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "__init__"
                ):
                    # The class docstring documents the parameters; __init__
                    # itself only needs complete annotations.
                    findings.extend(
                        _check_callable(
                            module,
                            defining,
                            item,
                            f"{name}.__init__",
                            require_return=False,
                            require_docstring=False,
                        )
                    )
    return findings


# -- R005: bounded waits ------------------------------------------------------


def check_r005(module: ParsedModule) -> List[Finding]:
    """Flag unbounded ``cond.wait()`` calls.

    A ``Condition.wait()`` (or ``Event.wait()``) with neither a positional
    timeout nor a ``timeout=`` keyword blocks forever if the matching
    ``notify`` is lost — a producer that died with an exception, a shutdown
    path that forgot one waiter.  Every wait in this codebase must carry a
    deadline and re-check its predicate in a loop; a stalled site should
    surface as a diagnostic error, never as a hang.
    """
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "wait"):
            continue
        if node.args:
            continue  # positional timeout — bounded
        if any(kw.arg == "timeout" for kw in node.keywords):
            continue
        line = module.line(node.lineno)
        if "# noqa" in line or module.suppressed(node.lineno, "R005"):
            continue
        findings.append(
            Finding(
                rule="R005",
                path=str(module.path),
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "unbounded .wait(): a missed notify hangs the thread "
                    "forever — pass a timeout and re-check the predicate "
                    "in a loop"
                ),
            )
        )
    return findings
