"""Finding model and output formats for the ``m3 lint`` static pass."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List

__all__ = ["RULES", "Finding", "format_text", "report_as_dict"]

#: Rule id -> one-line description (the stable public rule set).
RULES: Dict[str, str] = {
    "R001": (
        "lock-order: every lock attribute has a declared rank in LOCK_ORDER; "
        "nested acquisitions must strictly increase in rank; every .acquire() "
        "needs a paired release"
    ),
    "R002": (
        "resource discipline: leases, dataset handles, files, executors and "
        "threads must be closed/joined on all paths (with, try/finally, or "
        "'# lint: transfers-ownership')"
    ),
    "R003": (
        "concurrency hygiene: no bare/swallowed except in thread paths, no "
        "time.sleep polling, no mutation of shared containers outside the "
        "owning lock"
    ),
    "R004": (
        "api surface: names exported via __all__ must carry docstrings and "
        "complete type annotations"
    ),
    "R005": (
        "bounded waits: every Condition/Event .wait() must carry a timeout "
        "(a missed notify must surface as a diagnostic, never a hang)"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic, anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """The JSON-stable representation of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }

    def sort_key(self) -> Any:
        """Deterministic report order: by file, position, then rule."""
        return (self.path, self.line, self.col, self.rule)


def format_text(findings: Iterable[Finding]) -> List[str]:
    """Human-readable ``path:line:col: RULE message`` lines."""
    lines = []
    for finding in findings:
        where = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}{where}"
        )
    return lines


def report_as_dict(
    findings: List[Finding], files: int, selected: List[str]
) -> Dict[str, Any]:
    """The stable JSON report schema for ``m3 lint --format json``."""
    counts = {rule: 0 for rule in selected}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "version": 1,
        "tool": "m3-lint",
        "files": files,
        "rules": list(selected),
        "findings": [finding.as_dict() for finding in findings],
        "counts": counts,
        "total": len(findings),
    }
