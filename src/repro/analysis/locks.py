"""The project-wide lock-rank registry.

Every ``threading.Lock``/``RLock``/``Condition`` owned by ``src/repro``
declares a **rank** here.  The discipline is the classical lock-ordering
rule: a thread may only acquire a lock whose rank is *strictly greater*
than every rank it already holds.  Because all threads agree on one total
order, no cycle of lock waits — and therefore no deadlock — can form.

The registry is consumed twice:

* **Statically** by rule R001 of :mod:`repro.analysis.rules`: every lock
  attribute in the tree must have an entry (keyed by its dotted
  ``module.Class.attr`` name), and nested ``with`` acquisitions must follow
  rank order.
* **At runtime** by :class:`repro.analysis.runtime.OrderedLock` (enabled
  with ``REPRO_ANALYSIS=1``): the rank check runs on every acquisition,
  against the acquiring thread's actual held-lock stack.

Ranks only need to be ordered, not dense — leave gaps so new locks can
slot in between existing ones without renumbering.

Current order (outermost first; renumbered in one commit when the
network-serving locks landed, per the ROADMAP's standing instruction)::

    rank  10   repro.core.m3._DEFAULT_LOCK        default-engine singleton
    rank  20   NetServer._lock                    socket front-end accounting
    rank  30   NetClient._lock                    client write path + pending queue
    rank  40   ModelServer._cond                  serving queue + dispatcher wakeup
    rank  50   AdaptiveDelayController._lock      arrival-rate EWMA state
    rank  60   Trainer._lock                      train->publish daemon state
    rank  70   Session._lock                      dataset list + handle pool
    rank  80   ModelRegistry._lock                hot-model publish/resolve
    rank  90   ShardAppender._lock                tail-shard write + generation commit
    rank 100   _DecodePool.cond                   block-decode task queue
    rank 110   _ReaderPoolState.cond              reorder buffer + reader accounting
    rank 120   ReadaheadHinter._lock              madvise byte accounting
    rank 130   BufferLease._lock                  per-lease refcount
    rank 140   _BlockCache._lock                  decoded-block LRU (innermost)

The recorded nesting that motivates the order: a reader thread holding
``_ReaderPoolState.cond`` (110) releases a superseded chunk's
``BufferLease._lock`` (130); a dispatcher thread resolves models
(``ModelRegistry._lock``, 80) and opens datasets (``Session._lock``, 70)
while *not* holding ``ModelServer._cond`` (40).  The trainer daemon holds
``Trainer._lock`` (60) while opening snapshot datasets (``Session._lock``,
70) and publishing refreshed versions (``ModelRegistry._lock``, 80), so it
must rank above the server condition but below both; the shard appender
(90) is a near-leaf write lock that callers already holding session or
registry locks may enter, but which never re-enters the session layer.
The network front end sits *outside* the serving core: ``NetServer._lock``
(20) guards transport accounting only and is never held across a
``submit``; ``ModelServer.submit`` holding ``_cond`` (40) records arrivals
on the delay controller (50), so the controller ranks just inside the
server condition.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["LOCK_ORDER", "rank_of", "register_lock"]

#: Dotted lock name -> rank.  Acquisitions must strictly increase in rank.
LOCK_ORDER: Dict[str, int] = {
    # Outermost: the module-level default-engine singleton guard.
    "repro.core.m3._DEFAULT_LOCK": 10,
    # Network front end.  The transport accounting lock is held only for
    # counter updates on the event-loop thread and by stats() readers; it
    # is never held across a ModelServer.submit, but ranking it outside the
    # serving core keeps that the checked invariant rather than a comment.
    "repro.net.server.NetServer._lock": 20,
    # The client's write path: serialises request framing + the pending
    # deque against the reader thread.  Touches no server-side lock.
    "repro.net.client.NetClient._lock": 30,
    # Serving layer.
    "repro.serve.server.ModelServer._cond": 40,
    # The adaptive-delay controller: submit records arrivals while holding
    # ModelServer._cond (40 -> 50 is increasing); the controller itself is
    # a leaf of the serving layer and never acquires anything.
    "repro.net.controller.AdaptiveDelayController._lock": 50,
    # The train->publish daemon: holds its own state lock while opening
    # snapshot datasets (Session._lock, 70) and publishing refreshed model
    # versions (ModelRegistry._lock, 80), so it ranks above the server
    # condition and below both of those.
    "repro.serve.trainer.Trainer._lock": 60,
    "repro.api.session.Session._lock": 70,
    "repro.serve.registry.ModelRegistry._lock": 80,
    # The append path: serialises tail-shard writes and generation commits.
    # Callers already holding session/registry locks may append (70/80 -> 90
    # is increasing); the appender itself never re-enters the session layer.
    "repro.api.sharded.ShardAppender._lock": 90,
    # Streaming pipeline.  The decode pool's condition ranks below the reader
    # pool's: a decode worker may post a finished chunk into the reorder
    # buffer (100 -> 110 is increasing), while a reader holding the reorder
    # cond may never submit decode work (110 -> 100 would invert the order).
    "repro.api.chunks._DecodePool.cond": 100,
    "repro.api.chunks._ReaderPoolState.cond": 110,
    "repro.api.chunks.ReadaheadHinter._lock": 120,
    # The per-lease refcount, taken while posting/releasing chunks.
    "repro.api.chunks.BufferLease._lock": 130,
    # Innermost library lock: the decoded-block LRU is a pure leaf — decoding
    # happens outside it and nothing is acquired while it is held.
    "repro.api.sharded._BlockCache._lock": 140,
    # Internal leaf locks of the instrumentation layer itself.  They guard
    # tracker bookkeeping, are never held across another acquisition, and
    # rank above everything so holding *any* library lock may enter them.
    "repro.analysis.runtime.LockOrderGraph._lock": 900,
    "repro.analysis.runtime.LeaseTracker._lock": 910,
    # The fault-injection plan's accounting lock: sites fire while holding
    # appender/trainer/pipeline locks, so — like the trackers above — it is
    # a pure leaf ranked after everything in the library proper.
    "repro.faults.FaultPlan._lock": 920,
}


def rank_of(name: str) -> Optional[int]:
    """The declared rank of ``name``, or ``None`` for unregistered locks."""
    return LOCK_ORDER.get(name)


def register_lock(name: str, rank: int) -> None:
    """Declare a rank for ``name`` (used by tests and downstream extensions).

    Re-registering an existing name with a different rank is an error: the
    registry is a single global order, not a per-caller preference.
    """
    existing = LOCK_ORDER.get(name)
    if existing is not None and existing != rank:
        raise ValueError(
            f"lock {name!r} already registered with rank {existing}, "
            f"refusing to re-register with rank {rank}"
        )
    LOCK_ORDER[name] = rank
