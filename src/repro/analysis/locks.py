"""The project-wide lock-rank registry.

Every ``threading.Lock``/``RLock``/``Condition`` owned by ``src/repro``
declares a **rank** here.  The discipline is the classical lock-ordering
rule: a thread may only acquire a lock whose rank is *strictly greater*
than every rank it already holds.  Because all threads agree on one total
order, no cycle of lock waits — and therefore no deadlock — can form.

The registry is consumed twice:

* **Statically** by rule R001 of :mod:`repro.analysis.rules`: every lock
  attribute in the tree must have an entry (keyed by its dotted
  ``module.Class.attr`` name), and nested ``with`` acquisitions must follow
  rank order.
* **At runtime** by :class:`repro.analysis.runtime.OrderedLock` (enabled
  with ``REPRO_ANALYSIS=1``): the rank check runs on every acquisition,
  against the acquiring thread's actual held-lock stack.

Ranks only need to be ordered, not dense — leave gaps so new locks can
slot in between existing ones without renumbering.

Current order (outermost first)::

    rank  5   repro.core.m3._DEFAULT_LOCK        default-engine singleton
    rank 10   ModelServer._cond                  serving queue + dispatcher wakeup
    rank 20   Session._lock                      dataset list + handle pool
    rank 30   ModelRegistry._lock                hot-model publish/resolve
    rank 35   _DecodePool.cond                   block-decode task queue
    rank 40   _ReaderPoolState.cond              reorder buffer + reader accounting
    rank 45   ReadaheadHinter._lock              madvise byte accounting
    rank 50   BufferLease._lock                  per-lease refcount
    rank 55   _BlockCache._lock                  decoded-block LRU (innermost)

The recorded nesting that motivates the order: a reader thread holding
``_ReaderPoolState.cond`` (40) releases a superseded chunk's
``BufferLease._lock`` (50); a dispatcher thread resolves models
(``ModelRegistry._lock``, 30) and opens datasets (``Session._lock``, 20)
while *not* holding ``ModelServer._cond`` (10).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["LOCK_ORDER", "rank_of", "register_lock"]

#: Dotted lock name -> rank.  Acquisitions must strictly increase in rank.
LOCK_ORDER: Dict[str, int] = {
    # Outermost: the module-level default-engine singleton guard.
    "repro.core.m3._DEFAULT_LOCK": 5,
    # Serving layer.
    "repro.serve.server.ModelServer._cond": 10,
    "repro.api.session.Session._lock": 20,
    "repro.serve.registry.ModelRegistry._lock": 30,
    # Streaming pipeline.  The decode pool's condition ranks below the reader
    # pool's: a decode worker may post a finished chunk into the reorder
    # buffer (35 -> 40 is increasing), while a reader holding the reorder
    # cond may never submit decode work (40 -> 35 would invert the order).
    "repro.api.chunks._DecodePool.cond": 35,
    "repro.api.chunks._ReaderPoolState.cond": 40,
    "repro.api.chunks.ReadaheadHinter._lock": 45,
    # The per-lease refcount, taken while posting/releasing chunks.
    "repro.api.chunks.BufferLease._lock": 50,
    # Innermost library lock: the decoded-block LRU is a pure leaf — decoding
    # happens outside it and nothing is acquired while it is held.
    "repro.api.sharded._BlockCache._lock": 55,
    # Internal leaf locks of the instrumentation layer itself.  They guard
    # tracker bookkeeping, are never held across another acquisition, and
    # rank above everything so holding *any* library lock may enter them.
    "repro.analysis.runtime.LockOrderGraph._lock": 900,
    "repro.analysis.runtime.LeaseTracker._lock": 910,
}


def rank_of(name: str) -> Optional[int]:
    """The declared rank of ``name``, or ``None`` for unregistered locks."""
    return LOCK_ORDER.get(name)


def register_lock(name: str, rank: int) -> None:
    """Declare a rank for ``name`` (used by tests and downstream extensions).

    Re-registering an existing name with a different rank is an error: the
    registry is a single global order, not a per-caller preference.
    """
    existing = LOCK_ORDER.get(name)
    if existing is not None and existing != rank:
        raise ValueError(
            f"lock {name!r} already registered with rank {existing}, "
            f"refusing to re-register with rank {rank}"
        )
    LOCK_ORDER[name] = rank
