"""Concurrency & resource-safety analysis for the M3 reproduction.

Two halves share one rule set:

* The **static pass** (``m3 lint``, :mod:`repro.analysis.linter`) checks
  the source with stdlib :mod:`ast`: lock-rank discipline (R001), resource
  cleanup on all paths (R002), concurrency hygiene (R003) and the public
  API surface (R004).
* The **runtime pass** (:mod:`repro.analysis.runtime`, enabled with
  ``REPRO_ANALYSIS=1``) swaps the library's locks for
  :class:`~repro.analysis.runtime.OrderedLock` — which enforces the same
  rank order on live acquisition stacks and detects order-inverting
  acquisitions before they deadlock — and tracks buffer-lease/thread leaks
  for the test suite.

Both are anchored by the lock-rank registry in
:mod:`repro.analysis.locks`.
"""

from repro.analysis.findings import RULES, Finding
from repro.analysis.linter import LintError, LintReport, lint_paths
from repro.analysis.locks import LOCK_ORDER, rank_of, register_lock
from repro.analysis.runtime import (
    GRAPH,
    LEASES,
    LeaseTracker,
    LockOrderGraph,
    LockOrderViolation,
    OrderedLock,
    ThreadLeakDetector,
    analysis_enabled,
    make_condition,
    make_lock,
    make_rlock,
    set_analysis_enabled,
)

__all__ = [
    "RULES",
    "Finding",
    "LintError",
    "LintReport",
    "lint_paths",
    "LOCK_ORDER",
    "rank_of",
    "register_lock",
    "GRAPH",
    "LEASES",
    "LeaseTracker",
    "LockOrderGraph",
    "LockOrderViolation",
    "OrderedLock",
    "ThreadLeakDetector",
    "analysis_enabled",
    "make_condition",
    "make_lock",
    "make_rlock",
    "set_analysis_enabled",
]
