"""Profiling, resource accounting, and performance/energy prediction.

Covers two needs of the reproduction:

* the paper's *observation* that M3 is I/O bound ("disk I/O was 100 % utilized
  while CPU was only utilized at around 13 %") — :class:`ResourceMonitor` and
  :class:`UtilizationReport` measure/derive those numbers for real runs and
  simulated runs alike;
* the paper's *ongoing work* of building "mathematical models and systematic
  approaches to profile and predict algorithm performance and energy usage" —
  :class:`PerformancePredictor` fits a linear runtime model (per-byte I/O cost
  in and out of RAM) and :class:`EnergyModel` converts time and utilisation
  into energy estimates.
"""

from repro.profiling.timer import Stopwatch, time_block
from repro.profiling.resources import ResourceMonitor, ResourceSnapshot
from repro.profiling.report import UtilizationReport, build_report_from_simulation
from repro.profiling.energy import EnergyEstimate, EnergyModel, MachinePowerProfile
from repro.profiling.predictor import PerformancePredictor, PredictionModel

__all__ = [
    "Stopwatch",
    "time_block",
    "ResourceMonitor",
    "ResourceSnapshot",
    "UtilizationReport",
    "build_report_from_simulation",
    "EnergyModel",
    "EnergyEstimate",
    "MachinePowerProfile",
    "PerformancePredictor",
    "PredictionModel",
]
