"""Wall-clock timing helpers used by benchmarks and examples."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates named wall-clock timings.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch.measure("load"):
    ...     _ = sum(range(1000))
    >>> watch.total("load") >= 0.0
    True
    """

    timings: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager recording one timing under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings.setdefault(label, []).append(elapsed)

    def record(self, label: str, seconds: float) -> None:
        """Record an externally measured duration."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self.timings.setdefault(label, []).append(seconds)

    def total(self, label: str) -> float:
        """Total seconds recorded under ``label`` (0.0 if none)."""
        return sum(self.timings.get(label, []))

    def count(self, label: str) -> int:
        """Number of measurements recorded under ``label``."""
        return len(self.timings.get(label, []))

    def mean(self, label: str) -> float:
        """Mean duration for ``label``; raises ``KeyError`` if never measured."""
        values = self.timings[label]
        return sum(values) / len(values)

    def summary(self) -> Dict[str, float]:
        """Label → total seconds."""
        return {label: sum(values) for label, values in self.timings.items()}


@contextmanager
def time_block() -> Iterator[List[float]]:
    """Time a block; the elapsed seconds are appended to the yielded list.

    Examples
    --------
    >>> with time_block() as result:
    ...     _ = sum(range(1000))
    >>> len(result)
    1
    """
    result: List[float] = []
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.append(time.perf_counter() - start)
