"""Utilisation reports — the reproduction of the paper's §3.1 finding 1.

"Looking at M3's resource utilization, we saw that M3 is I/O bound: disk I/O
was 100 % utilized while CPU was only utilized at around 13 %."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vmem.vm_simulator import SimulationResult


@dataclass(frozen=True)
class UtilizationReport:
    """Summary of where a run's time went.

    Attributes
    ----------
    wall_time_s:
        Total wall time.
    disk_utilization:
        Fraction of the run during which the disk was busy (0–1).
    cpu_utilization:
        Fraction of the run during which the CPU was busy (0–1).
    bytes_read, bytes_written:
        Total bytes moved.
    io_bound:
        Convenience flag: disk utilisation at least twice CPU utilisation and
        above 50 % — the regime the paper describes.
    """

    wall_time_s: float
    disk_utilization: float
    cpu_utilization: float
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def io_bound(self) -> bool:
        """Whether the run is I/O bound in the paper's sense."""
        return self.disk_utilization >= 0.5 and self.disk_utilization >= 2.0 * self.cpu_utilization

    def format_row(self) -> str:
        """One line in the style the paper reports the observation."""
        return (
            f"wall={self.wall_time_s:10.1f}s  disk={self.disk_utilization * 100:5.1f}%  "
            f"cpu={self.cpu_utilization * 100:5.1f}%  "
            f"{'I/O bound' if self.io_bound else 'CPU bound'}"
        )


def build_report_from_simulation(result: SimulationResult) -> UtilizationReport:
    """Derive a :class:`UtilizationReport` from a virtual-memory simulation."""
    stats = result.io_stats
    return UtilizationReport(
        wall_time_s=result.wall_time_s,
        disk_utilization=stats.io_utilization,
        cpu_utilization=stats.cpu_utilization,
        bytes_read=stats.bytes_read,
        bytes_written=stats.bytes_written,
    )


def build_report_from_measurements(
    wall_time_s: float,
    cpu_time_s: float,
    io_time_s: Optional[float] = None,
    bytes_read: int = 0,
    bytes_written: int = 0,
    cores: int = 1,
) -> UtilizationReport:
    """Build a report from real measurements.

    When ``io_time_s`` is unknown it is approximated as the wall time not
    accounted for by CPU — a reasonable approximation for a single-threaded,
    I/O-bound scan, which is the workload of interest.
    """
    if wall_time_s <= 0:
        raise ValueError("wall_time_s must be positive")
    cpu_utilization = min(1.0, cpu_time_s / (wall_time_s * max(1, cores)))
    if io_time_s is None:
        io_time_s = max(0.0, wall_time_s - cpu_time_s)
    disk_utilization = min(1.0, io_time_s / wall_time_s)
    return UtilizationReport(
        wall_time_s=wall_time_s,
        disk_utilization=disk_utilization,
        cpu_utilization=cpu_utilization,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
    )
