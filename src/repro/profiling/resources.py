"""CPU and I/O resource monitoring.

For *real* runs on the local machine we sample ``/proc`` (process CPU time and
read/write byte counters) around a workload; for *simulated* runs the same
numbers come from :class:`repro.vmem.stats.IoStats`.  Both paths produce
:class:`ResourceSnapshot` pairs so downstream reporting code does not care
which world the numbers came from.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional


@dataclass(frozen=True)
class ResourceSnapshot:
    """A point-in-time reading of process resource counters.

    Attributes
    ----------
    wall_time_s:
        Monotonic wall clock.
    cpu_time_s:
        Process CPU time (user + system), summed over all threads.
    read_bytes, write_bytes:
        Cumulative bytes read from / written to storage by the process
        (0 when the platform does not expose them).
    """

    wall_time_s: float
    cpu_time_s: float
    read_bytes: int
    write_bytes: int


def _read_proc_io(pid: Optional[int] = None) -> "tuple[int, int]":
    """Read cumulative (read_bytes, write_bytes) from ``/proc/<pid>/io``.

    Returns zeros when the file is unavailable (non-Linux or restricted).
    """
    path = Path(f"/proc/{pid or os.getpid()}/io")
    try:
        text = path.read_text(encoding="ascii")
    except (OSError, PermissionError):
        return 0, 0
    read_bytes = write_bytes = 0
    for line in text.splitlines():
        if line.startswith("read_bytes:"):
            read_bytes = int(line.split(":", 1)[1])
        elif line.startswith("write_bytes:"):
            write_bytes = int(line.split(":", 1)[1])
    return read_bytes, write_bytes


class ResourceMonitor:
    """Samples process resource usage before and after a workload.

    Examples
    --------
    >>> monitor = ResourceMonitor()
    >>> monitor.start()
    >>> _ = sum(range(10000))
    >>> usage = monitor.stop()
    >>> usage.wall_time_s >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[ResourceSnapshot] = None

    @staticmethod
    def snapshot() -> ResourceSnapshot:
        """Take a snapshot of the current process counters."""
        read_bytes, write_bytes = _read_proc_io()
        return ResourceSnapshot(
            wall_time_s=time.perf_counter(),
            cpu_time_s=time.process_time(),
            read_bytes=read_bytes,
            write_bytes=write_bytes,
        )

    def start(self) -> None:
        """Begin a measurement interval."""
        self._start = self.snapshot()

    def stop(self) -> "ResourceUsage":
        """End the interval and return the usage over it."""
        if self._start is None:
            raise RuntimeError("ResourceMonitor.stop() called before start()")
        end = self.snapshot()
        usage = ResourceUsage(
            wall_time_s=end.wall_time_s - self._start.wall_time_s,
            cpu_time_s=end.cpu_time_s - self._start.cpu_time_s,
            read_bytes=max(0, end.read_bytes - self._start.read_bytes),
            write_bytes=max(0, end.write_bytes - self._start.write_bytes),
        )
        self._start = None
        return usage


@dataclass(frozen=True)
class ResourceUsage:
    """Resource usage over a measurement interval."""

    wall_time_s: float
    cpu_time_s: float
    read_bytes: int
    write_bytes: int

    def cpu_utilization(self, cores: int = 1) -> float:
        """CPU utilisation of the interval, normalised by ``cores`` (0–1)."""
        if self.wall_time_s <= 0 or cores <= 0:
            return 0.0
        return min(1.0, self.cpu_time_s / (self.wall_time_s * cores))

    def io_throughput_bytes_per_s(self) -> float:
        """Average storage throughput over the interval."""
        if self.wall_time_s <= 0:
            return 0.0
        return (self.read_bytes + self.write_bytes) / self.wall_time_s
