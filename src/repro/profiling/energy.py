"""Energy estimation — part of the paper's ongoing-work agenda.

The paper plans to "profile and predict algorithm performance and energy usage
based on extensive evaluations across platforms".  This module provides the
energy half: a simple component power model (idle + CPU-proportional +
disk-proportional draw) that converts a runtime and its utilisation profile
into joules, for both the M3 desktop and multi-instance clusters.  The
headline use is comparing the energy of one I/O-bound PC against 4 or 8
mostly-idle-CPU cluster nodes in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachinePowerProfile:
    """Static power characteristics of one machine.

    Attributes
    ----------
    name:
        Profile name.
    idle_watts:
        Power draw when idle (fans, RAM, chipset).
    cpu_max_watts:
        Additional draw at 100 % CPU utilisation.
    disk_active_watts:
        Additional draw while the storage device is busy.
    """

    name: str
    idle_watts: float
    cpu_max_watts: float
    disk_active_watts: float

    def validate(self) -> None:
        """Raise ``ValueError`` for negative components."""
        if min(self.idle_watts, self.cpu_max_watts, self.disk_active_watts) < 0:
            raise ValueError("power components must be non-negative")


#: The paper's desktop (i7-4770K, one PCIe SSD): ~45 W idle, 84 W TDP CPU.
DESKTOP_I7 = MachinePowerProfile(
    name="desktop-i7-4770k", idle_watts=45.0, cpu_max_watts=84.0, disk_active_watts=9.0
)

#: One EC2 m3.2xlarge worth of a shared Xeon server (apportioned).
EC2_M3_2XLARGE_POWER = MachinePowerProfile(
    name="ec2-m3.2xlarge", idle_watts=80.0, cpu_max_watts=95.0, disk_active_watts=12.0
)


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy consumed by a run."""

    joules: float
    watts_mean: float
    wall_time_s: float

    @property
    def watt_hours(self) -> float:
        """Energy in watt-hours."""
        return self.joules / 3600.0


class EnergyModel:
    """Converts runtime + utilisation into energy for one or more machines."""

    def __init__(self, profile: MachinePowerProfile = DESKTOP_I7, machines: int = 1) -> None:
        profile.validate()
        if machines <= 0:
            raise ValueError("machines must be positive")
        self.profile = profile
        self.machines = machines

    def mean_power_watts(self, cpu_utilization: float, disk_utilization: float) -> float:
        """Mean power draw for the given utilisation levels (all machines)."""
        if not 0.0 <= cpu_utilization <= 1.0:
            raise ValueError("cpu_utilization must be in [0, 1]")
        if not 0.0 <= disk_utilization <= 1.0:
            raise ValueError("disk_utilization must be in [0, 1]")
        per_machine = (
            self.profile.idle_watts
            + cpu_utilization * self.profile.cpu_max_watts
            + disk_utilization * self.profile.disk_active_watts
        )
        return per_machine * self.machines

    def estimate(
        self, wall_time_s: float, cpu_utilization: float, disk_utilization: float
    ) -> EnergyEstimate:
        """Energy for a run of ``wall_time_s`` at the given utilisations."""
        if wall_time_s < 0:
            raise ValueError("wall_time_s must be non-negative")
        watts = self.mean_power_watts(cpu_utilization, disk_utilization)
        return EnergyEstimate(joules=watts * wall_time_s, watts_mean=watts, wall_time_s=wall_time_s)
