"""Runtime prediction — the paper's proposed "mathematical models ... to
profile and predict algorithm performance".

Figure 1a shows that M3's runtime is piecewise linear in the dataset size:
one slope while the data fits in RAM, a steeper slope once it exceeds RAM.
:class:`PerformancePredictor` fits exactly that model from (size, runtime)
observations — two least-squares lines split at the RAM boundary — and then
predicts runtimes for unseen sizes.  The prediction benchmark checks that a
model fitted on the small half of the Figure 1a sweep extrapolates to the
large half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PredictionModel:
    """A fitted piecewise-linear runtime model.

    ``runtime(size)`` is ``in_ram_slope * size + in_ram_intercept`` below the
    RAM boundary and ``out_of_core_slope * size + out_of_core_intercept``
    above it.
    """

    ram_bytes: int
    in_ram_slope: float
    in_ram_intercept: float
    out_of_core_slope: float
    out_of_core_intercept: float

    def predict(self, dataset_bytes: int) -> float:
        """Predicted runtime in seconds for a dataset of ``dataset_bytes``."""
        if dataset_bytes < 0:
            raise ValueError("dataset_bytes must be non-negative")
        if dataset_bytes <= self.ram_bytes:
            return self.in_ram_slope * dataset_bytes + self.in_ram_intercept
        return self.out_of_core_slope * dataset_bytes + self.out_of_core_intercept

    def predict_many(self, sizes: Sequence[int]) -> List[float]:
        """Vectorised :meth:`predict`."""
        return [self.predict(size) for size in sizes]

    @property
    def slowdown_factor(self) -> float:
        """Ratio of the out-of-core slope to the in-RAM slope (≥ 1 normally)."""
        if self.in_ram_slope <= 0:
            return float("inf")
        return self.out_of_core_slope / self.in_ram_slope


def _fit_line(sizes: np.ndarray, runtimes: np.ndarray) -> Tuple[float, float]:
    """Least-squares fit of ``runtime = slope * size + intercept``."""
    if sizes.size == 0:
        return 0.0, 0.0
    if sizes.size == 1:
        # A single observation: assume the line passes through the origin.
        return float(runtimes[0] / sizes[0]) if sizes[0] > 0 else 0.0, 0.0
    design = np.column_stack([sizes, np.ones_like(sizes)])
    solution, *_ = np.linalg.lstsq(design, runtimes, rcond=None)
    return float(solution[0]), float(solution[1])


class PerformancePredictor:
    """Fits and applies the piecewise-linear runtime model."""

    def __init__(self, ram_bytes: int) -> None:
        if ram_bytes <= 0:
            raise ValueError("ram_bytes must be positive")
        self.ram_bytes = ram_bytes

    def fit(self, observations: Sequence[Tuple[int, float]]) -> PredictionModel:
        """Fit from ``(dataset_bytes, runtime_s)`` observations.

        Observations are split at the RAM boundary; each side gets its own
        least-squares line.  If one side has no observations it inherits the
        other side's slope (so extrapolation across the boundary still works,
        just without a slope change).
        """
        if not observations:
            raise ValueError("need at least one observation")
        sizes = np.asarray([float(size) for size, _ in observations])
        runtimes = np.asarray([float(runtime) for _, runtime in observations])
        if np.any(sizes < 0) or np.any(runtimes < 0):
            raise ValueError("sizes and runtimes must be non-negative")

        in_ram = sizes <= self.ram_bytes
        out_core = ~in_ram

        in_slope, in_intercept = _fit_line(sizes[in_ram], runtimes[in_ram])
        out_slope, out_intercept = _fit_line(sizes[out_core], runtimes[out_core])

        if not np.any(in_ram):
            in_slope, in_intercept = out_slope, out_intercept
        if not np.any(out_core):
            out_slope, out_intercept = in_slope, in_intercept

        return PredictionModel(
            ram_bytes=self.ram_bytes,
            in_ram_slope=in_slope,
            in_ram_intercept=in_intercept,
            out_of_core_slope=out_slope,
            out_of_core_intercept=out_intercept,
        )

    @staticmethod
    def relative_error(model: PredictionModel, observations: Sequence[Tuple[int, float]]) -> float:
        """Mean absolute relative error of the model on held-out observations."""
        if not observations:
            raise ValueError("need at least one observation")
        errors = []
        for size, runtime in observations:
            if runtime <= 0:
                continue
            errors.append(abs(model.predict(size) - runtime) / runtime)
        return float(np.mean(errors)) if errors else 0.0
