"""A minimal RDD-style partitioned collection.

Functionally faithful to the subset of the Spark API that MLlib's logistic
regression and k-means need: a dataset is split into partitions, transformations
are lazy per-partition functions, and actions (``collect``, ``reduce``,
``aggregate``, ``tree_aggregate``) execute every partition through the
:class:`~repro.distributed.scheduler.JobScheduler` and combine the results.

The data lives in this process (there is no real cluster), but the execution
structure — independent per-partition tasks followed by an aggregation — is
the real one, which is what the cost model needs to account time against and
what the correctness tests validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.core.chunking import split_evenly

T = TypeVar("T")
U = TypeVar("U")


@dataclass
class Partition(Generic[T]):
    """One partition of an RDD: an index plus a thunk producing its rows."""

    index: int
    compute: Callable[[], T]

    def materialize(self) -> T:
        """Run the partition's compute function."""
        return self.compute()


class RDD(Generic[T]):
    """A lazily evaluated, partitioned collection.

    Parameters
    ----------
    partitions:
        The partitions making up the collection.
    scheduler:
        Optional :class:`~repro.distributed.scheduler.JobScheduler`; when
        omitted, actions run partitions serially in the driver (still correct,
        just without per-task metrics).
    """

    def __init__(self, partitions: Sequence[Partition[T]], scheduler: Optional[Any] = None) -> None:
        self._partitions = list(partitions)
        self.scheduler = scheduler

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_matrix(
        cls,
        X: Any,
        y: Optional[np.ndarray] = None,
        num_partitions: int = 4,
        scheduler: Optional[Any] = None,
    ) -> "RDD[tuple]":
        """Partition a matrix (and optional labels) into row-range partitions.

        Each partition materialises to ``(X_part, y_part)`` where ``y_part``
        is ``None`` when no labels were supplied.
        """
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        n_rows = int(X.shape[0])
        bounds = split_evenly(n_rows, num_partitions)

        def make_compute(start: int, stop: int) -> Callable[[], tuple]:
            def compute() -> tuple:
                features = np.asarray(X[start:stop], dtype=np.float64)
                labels = None if y is None else np.asarray(y[start:stop])
                return features, labels

            return compute

        partitions = [
            Partition(index=i, compute=make_compute(start, stop))
            for i, (start, stop) in enumerate(bounds)
        ]
        return cls(partitions, scheduler=scheduler)

    @classmethod
    def from_iterable(
        cls, items: Iterable[T], num_partitions: int = 4, scheduler: Optional[Any] = None
    ) -> "RDD[List[T]]":
        """Partition a plain Python iterable into roughly equal chunks."""
        data = list(items)
        bounds = split_evenly(len(data), num_partitions)

        def make_compute(start: int, stop: int) -> Callable[[], List[T]]:
            return lambda: data[start:stop]

        partitions = [
            Partition(index=i, compute=make_compute(start, stop))
            for i, (start, stop) in enumerate(bounds)
        ]
        return cls(partitions, scheduler=scheduler)

    # -- transformations (lazy) -------------------------------------------------

    @property
    def num_partitions(self) -> int:
        """Number of partitions."""
        return len(self._partitions)

    def map_partitions(self, fn: Callable[[T], U]) -> "RDD[U]":
        """Apply ``fn`` to every partition's materialised value (lazily)."""

        def wrap(partition: Partition[T]) -> Partition[U]:
            return Partition(index=partition.index, compute=lambda p=partition: fn(p.materialize()))

        return RDD([wrap(p) for p in self._partitions], scheduler=self.scheduler)

    # -- actions (eager) ----------------------------------------------------------

    def _run(self) -> List[Any]:
        """Materialise every partition, through the scheduler when present."""
        if self.scheduler is not None:
            return self.scheduler.run_stage(self._partitions)
        return [partition.materialize() for partition in self._partitions]

    def collect(self) -> List[Any]:
        """Materialise and return every partition's value."""
        return self._run()

    def reduce(self, combine: Callable[[U, U], U]) -> U:
        """Materialise all partitions and fold their values pairwise."""
        results = self._run()
        if not results:
            raise ValueError("cannot reduce an empty RDD")
        accumulator = results[0]
        for value in results[1:]:
            accumulator = combine(accumulator, value)
        return accumulator

    def aggregate(
        self,
        zero: U,
        seq_op: Callable[[U, Any], U],
        comb_op: Callable[[U, U], U],
    ) -> U:
        """Spark-style aggregate: fold each partition, then combine the folds."""
        results = self._run()
        partials = [seq_op(_copy_zero(zero), value) for value in results]
        accumulator = _copy_zero(zero)
        for partial in partials:
            accumulator = comb_op(accumulator, partial)
        return accumulator

    def tree_aggregate(
        self,
        zero: U,
        seq_op: Callable[[U, Any], U],
        comb_op: Callable[[U, U], U],
        depth: int = 2,
    ) -> U:
        """treeAggregate: combine partials in rounds of pairs (numerically it is
        identical to :meth:`aggregate` for associative/commutative combiners,
        but it mirrors what MLlib actually executes and what the shuffle model
        charges for)."""
        if depth < 1:
            raise ValueError("depth must be >= 1")
        results = self._run()
        partials = [seq_op(_copy_zero(zero), value) for value in results]
        if not partials:
            return zero
        level = partials
        while len(level) > 1:
            next_level = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    next_level.append(comb_op(level[i], level[i + 1]))
                else:
                    next_level.append(level[i])
            level = next_level
        return level[0]

    def count(self) -> int:
        """Total number of rows across all partitions (for matrix RDDs)."""
        total = 0
        for value in self._run():
            if isinstance(value, tuple):
                total += int(np.asarray(value[0]).shape[0])
            else:
                total += len(value)
        return total


def _copy_zero(zero: Any) -> Any:
    """Copy a zero value so aggregations never alias the caller's buffer."""
    if isinstance(zero, np.ndarray):
        return zero.copy()
    if isinstance(zero, (list, dict, set)):
        return type(zero)(zero)
    if isinstance(zero, tuple):
        return tuple(_copy_zero(item) for item in zero)
    return zero
