"""Distributed logistic regression and k-means on the mini RDD engine.

These mirror what Spark MLlib runs in the paper's baseline: logistic
regression optimised with L-BFGS where each gradient evaluation is a
``treeAggregate`` over the partitions, and k-means where each Lloyd iteration
aggregates per-partition centroid sums.  They produce *correct* models on real
data (validated against the single-machine implementations in
:mod:`repro.ml`), while the time such a job would take on the paper's EC2
clusters is predicted by :mod:`repro.distributed.cost_model`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.distributed.rdd import RDD
from repro.ml.base import BaseEstimator, ClassifierMixin, ClustererMixin
from repro.ml.cluster.init import kmeans_plus_plus_init
from repro.ml.linear_model.objectives import sigmoid, log_sigmoid
from repro.ml.optim.lbfgs import LBFGS
from repro.ml.optim.objective import DifferentiableObjective


class _DistributedLogisticObjective(DifferentiableObjective):
    """Negative mean log-likelihood evaluated with a treeAggregate per call."""

    def __init__(self, rdd: RDD, n_features: int, n_samples: int, l2_penalty: float,
                 fit_intercept: bool) -> None:
        self.rdd = rdd
        self.n_features = n_features
        self.n_samples = n_samples
        self.l2_penalty = l2_penalty
        self.fit_intercept = fit_intercept
        self.aggregations = 0

    @property
    def num_parameters(self) -> int:
        return self.n_features + (1 if self.fit_intercept else 0)

    def _augment(self, X: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return X
        return np.hstack([X, np.ones((X.shape[0], 1))])

    def value_and_gradient(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        params = np.asarray(params, dtype=np.float64)
        dim = self.num_parameters

        def seq_op(acc, partition):
            loss_acc, grad_acc = acc
            X, y = partition
            X = self._augment(np.asarray(X, dtype=np.float64))
            y = np.asarray(y, dtype=np.float64)
            logits = X @ params
            probabilities = sigmoid(logits)
            loss = -float(np.sum(y * log_sigmoid(logits) + (1 - y) * log_sigmoid(-logits)))
            grad = X.T @ (probabilities - y)
            return loss_acc + loss, grad_acc + grad

        def comb_op(a, b):
            return a[0] + b[0], a[1] + b[1]

        zero = (0.0, np.zeros(dim))
        total_loss, total_grad = self.rdd.tree_aggregate(zero, seq_op, comb_op)
        self.aggregations += 1

        value = total_loss / self.n_samples
        gradient = total_grad / self.n_samples
        if self.l2_penalty > 0:
            weights = params.copy()
            if self.fit_intercept:
                weights[self.n_features] = 0.0
            value += 0.5 * self.l2_penalty * float(weights @ weights)
            gradient = gradient + self.l2_penalty * weights
        return value, gradient


class DistributedLogisticRegression(BaseEstimator, ClassifierMixin):
    """Spark-MLlib-style binary logistic regression with L-BFGS.

    Parameters mirror :class:`repro.ml.LogisticRegression`; ``num_partitions``
    controls how the data is split (Spark would use the number of HDFS blocks).

    Attributes
    ----------
    coef_, intercept_, classes_, result_:
        As in the single-machine estimator.
    aggregations_:
        Number of cluster-wide aggregations performed during training — the
        quantity the cost model charges network time for.
    """

    def __init__(
        self,
        max_iterations: int = 10,
        l2_penalty: float = 0.0,
        fit_intercept: bool = True,
        num_partitions: int = 8,
        tolerance: float = 1e-6,
        scheduler: Optional[Any] = None,
    ) -> None:
        self.max_iterations = max_iterations
        self.l2_penalty = l2_penalty
        self.fit_intercept = fit_intercept
        self.num_partitions = num_partitions
        self.tolerance = tolerance
        self.scheduler = scheduler

    def fit(self, X: Any, y: Any) -> "DistributedLogisticRegression":
        """Fit on a design matrix and two-valued labels."""
        y = np.asarray(y)
        classes = np.unique(y)
        if classes.shape[0] != 2:
            raise ValueError("binary logistic regression requires exactly 2 classes")
        binary = (y == classes[1]).astype(np.float64)

        rdd = RDD.from_matrix(X, binary, num_partitions=self.num_partitions,
                              scheduler=self.scheduler)
        objective = _DistributedLogisticObjective(
            rdd,
            n_features=int(X.shape[1]),
            n_samples=int(X.shape[0]),
            l2_penalty=self.l2_penalty,
            fit_intercept=self.fit_intercept,
        )
        optimizer = LBFGS(max_iterations=self.max_iterations, tolerance=self.tolerance)
        result = optimizer.minimize(objective)

        self.classes_ = classes
        self.coef_ = result.params[: X.shape[1]].copy()
        self.intercept_ = float(result.params[X.shape[1]]) if self.fit_intercept else 0.0
        self.result_ = result
        self.aggregations_ = objective.aggregations
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Raw logits for every row."""
        self._check_fitted("coef_")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict(self, X: Any) -> np.ndarray:
        """Predicted class labels."""
        return np.where(self.decision_function(X) >= 0, self.classes_[1], self.classes_[0])


class DistributedKMeans(BaseEstimator, ClustererMixin):
    """Spark-MLlib-style k-means: one aggregation of centroid sums per iteration.

    Attributes
    ----------
    cluster_centers_, inertia_, n_iter_:
        As in the single-machine estimator.
    aggregations_:
        Number of cluster-wide aggregations performed (one per iteration).
    """

    def __init__(
        self,
        n_clusters: int = 5,
        max_iterations: int = 10,
        num_partitions: int = 8,
        tolerance: float = 1e-4,
        seed: Optional[int] = None,
        scheduler: Optional[Any] = None,
    ) -> None:
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.num_partitions = num_partitions
        self.tolerance = tolerance
        self.seed = seed
        self.scheduler = scheduler

    def fit(self, X: Any, y: Any = None) -> "DistributedKMeans":
        """Cluster the rows of ``X``."""
        rng = np.random.default_rng(self.seed)
        centroids = kmeans_plus_plus_init(X, self.n_clusters, rng)
        rdd = RDD.from_matrix(X, None, num_partitions=self.num_partitions,
                              scheduler=self.scheduler)
        n_features = int(X.shape[1])
        aggregations = 0
        inertia = np.inf
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            current = centroids
            centroid_sq = np.einsum("ij,ij->i", current, current)

            def seq_op(acc, partition, current=current, centroid_sq=centroid_sq):
                sums, counts, inertia_acc = acc
                chunk, _ = partition
                chunk = np.asarray(chunk, dtype=np.float64)
                sq_dist = (
                    np.einsum("ij,ij->i", chunk, chunk)[:, None]
                    - 2.0 * (chunk @ current.T)
                    + centroid_sq[None, :]
                )
                assignments = np.argmin(sq_dist, axis=1)
                inertia_acc += float(np.sum(sq_dist[np.arange(chunk.shape[0]), assignments]))
                for cluster in range(self.n_clusters):
                    mask = assignments == cluster
                    if np.any(mask):
                        sums[cluster] += chunk[mask].sum(axis=0)
                        counts[cluster] += int(mask.sum())
                return sums, counts, inertia_acc

            def comb_op(a, b):
                return a[0] + b[0], a[1] + b[1], a[2] + b[2]

            zero = (np.zeros((self.n_clusters, n_features)), np.zeros(self.n_clusters), 0.0)
            sums, counts, inertia = rdd.tree_aggregate(zero, seq_op, comb_op)
            aggregations += 1

            new_centroids = centroids.copy()
            for cluster in range(self.n_clusters):
                if counts[cluster] > 0:
                    new_centroids[cluster] = sums[cluster] / counts[cluster]
            shift = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            if shift <= self.tolerance:
                break

        self.cluster_centers_ = centroids
        self.inertia_ = float(inertia)
        self.n_iter_ = iteration
        self.aggregations_ = aggregations
        return self

    def predict(self, X: Any) -> np.ndarray:
        """Index of the nearest centroid for every row."""
        self._check_fitted("cluster_centers_")
        X = np.asarray(X, dtype=np.float64)
        centroids = self.cluster_centers_
        sq_dist = (
            np.einsum("ij,ij->i", X, X)[:, None]
            - 2.0 * (X @ centroids.T)
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
        )
        return np.argmin(sq_dist, axis=1)

    def inertia(self, X: Any) -> float:
        """Sum of squared distances to the nearest centroid."""
        self._check_fitted("cluster_centers_")
        X = np.asarray(X, dtype=np.float64)
        centroids = self.cluster_centers_
        sq_dist = (
            np.einsum("ij,ij->i", X, X)[:, None]
            - 2.0 * (X @ centroids.T)
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
        )
        return float(np.sum(np.min(sq_dist, axis=1)))
