"""A simple HDFS model.

The paper stores the Spark datasets "on the cluster's HDFS".  For the cost
model we need to know how long it takes a cluster to scan a dataset from HDFS:
data is split into fixed-size blocks (128 MB by default), blocks are spread
across the instances' local disks, most reads are node-local (Spark's locality
scheduling), and the rest travel over the network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.cluster import ClusterSpec


@dataclass(frozen=True)
class HdfsConfig:
    """Static HDFS parameters.

    Attributes
    ----------
    block_size:
        HDFS block size in bytes (128 MB default, the Hadoop 2.x default).
    replication:
        Replication factor (3 is the HDFS default; EMR commonly uses 2 for
        small clusters, but replication only affects writes in our workloads).
    locality_fraction:
        Fraction of block reads that are node-local (served from the local
        disk rather than over the network).
    read_overhead_s:
        Fixed per-block open/seek overhead in seconds.
    """

    block_size: int = 128 * 1024 * 1024
    replication: int = 3
    locality_fraction: float = 0.95
    read_overhead_s: float = 0.01

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.replication <= 0:
            raise ValueError("replication must be positive")
        if not 0.0 <= self.locality_fraction <= 1.0:
            raise ValueError("locality_fraction must be in [0, 1]")
        if self.read_overhead_s < 0:
            raise ValueError("read_overhead_s must be non-negative")


class HdfsModel:
    """Estimates scan and write times for a dataset stored on HDFS."""

    def __init__(self, cluster: ClusterSpec, config: HdfsConfig = HdfsConfig()) -> None:
        config.validate()
        self.cluster = cluster
        self.config = config

    def num_blocks(self, dataset_bytes: int) -> int:
        """Number of HDFS blocks occupied by ``dataset_bytes``."""
        if dataset_bytes < 0:
            raise ValueError("dataset_bytes must be non-negative")
        return -(-dataset_bytes // self.config.block_size) if dataset_bytes else 0

    def scan_time_s(self, dataset_bytes: int) -> float:
        """Wall time for the whole cluster to read ``dataset_bytes`` once.

        Local reads are limited by aggregate local-disk bandwidth, remote
        reads by per-instance network bandwidth; the cluster reads blocks in
        parallel so the slower of the two paths dominates the remainder.
        """
        if dataset_bytes <= 0:
            return 0.0
        local_bytes = dataset_bytes * self.config.locality_fraction
        remote_bytes = dataset_bytes - local_bytes
        disk_time = local_bytes / self.cluster.aggregate_disk_bandwidth
        network_bandwidth = self.cluster.instances * self.cluster.instance.network_bandwidth
        network_time = remote_bytes / network_bandwidth if remote_bytes > 0 else 0.0
        overhead = self.num_blocks(dataset_bytes) * self.config.read_overhead_s / max(
            1, self.cluster.instances
        )
        return disk_time + network_time + overhead

    def write_time_s(self, dataset_bytes: int) -> float:
        """Wall time to write ``dataset_bytes`` with replication.

        Every byte is written locally once and replicated ``replication - 1``
        times over the network.
        """
        if dataset_bytes <= 0:
            return 0.0
        disk_time = (dataset_bytes * self.config.replication) / self.cluster.aggregate_disk_bandwidth
        network_bytes = dataset_bytes * max(0, self.config.replication - 1)
        network_bandwidth = self.cluster.instances * self.cluster.instance.network_bandwidth
        return disk_time + network_bytes / network_bandwidth
