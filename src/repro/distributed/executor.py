"""Simulated executors.

An executor runs tasks (one per partition) and records per-task metrics.  The
actual computation happens in-process — we are simulating the *structure* of
Spark execution, not distributing work — but the metrics (rows processed,
bytes processed, wall time per task) feed the scheduler's stage accounting and
let tests assert that work really was split across executors the way Spark
would split it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List

import numpy as np


@dataclass
class TaskMetrics:
    """Metrics for a single executed task."""

    task_id: int
    partition_index: int
    executor_id: int
    wall_time_s: float
    rows_processed: int = 0
    bytes_processed: int = 0


@dataclass
class Executor:
    """A simulated executor with a bounded number of task slots.

    Attributes
    ----------
    executor_id:
        Stable identifier (0-based).
    cores:
        Number of task slots (tasks that could run concurrently on a real
        cluster; used by the scheduler to compute how many waves of tasks a
        stage needs).
    """

    executor_id: int
    cores: int = 8
    completed_tasks: List[TaskMetrics] = field(default_factory=list)

    def run_task(self, task_id: int, partition: Any) -> Any:
        """Execute one partition's compute function and record metrics."""
        start = time.perf_counter()
        result = partition.materialize()
        elapsed = time.perf_counter() - start

        rows = 0
        nbytes = 0
        payload = result[0] if isinstance(result, tuple) and len(result) > 0 else result
        if isinstance(payload, np.ndarray):
            rows = int(payload.shape[0]) if payload.ndim >= 1 else 0
            nbytes = int(payload.nbytes)
        elif hasattr(payload, "__len__"):
            rows = len(payload)

        self.completed_tasks.append(
            TaskMetrics(
                task_id=task_id,
                partition_index=partition.index,
                executor_id=self.executor_id,
                wall_time_s=elapsed,
                rows_processed=rows,
                bytes_processed=nbytes,
            )
        )
        return result

    @property
    def total_rows(self) -> int:
        """Rows processed by this executor across all tasks."""
        return sum(task.rows_processed for task in self.completed_tasks)

    @property
    def total_task_time_s(self) -> float:
        """Total task wall time on this executor."""
        return sum(task.wall_time_s for task in self.completed_tasks)
