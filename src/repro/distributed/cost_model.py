"""Analytic runtime model of Spark MLlib jobs on the paper's EC2 clusters.

Figure 1b of the paper compares one memory-mapped PC against Spark clusters of
4 and 8 m3.2xlarge instances.  We cannot run EC2, so this model predicts how
long such a job takes from first principles, capturing the three mechanisms
the paper (and the "Scalability! But at what cost?" work it cites) identify:

1. **Per-record processing overhead.**  MLlib iterates over JVM row objects;
   its per-core throughput is far below raw memory bandwidth.  The
   ``per_core_bytes_per_s`` workload parameter captures this; defaults are
   calibrated against the absolute runtimes printed in Figure 1b
   (≈13 MB/s/core for L-BFGS logistic regression, ≈20 MB/s/core for k-means —
   see EXPERIMENTS.md for the calibration).
2. **The RAM cliff.**  A 4-instance cluster has 120 GB of aggregate RAM, so a
   190 GB dataset cannot stay cached: every pass re-reads the overflow from
   disk/HDFS.  An 8-instance cluster (240 GB) keeps essentially everything in
   memory.  This is what makes 4-instance Spark disproportionately slower, and
   is the exact cluster-side analogue of M3's in-RAM/out-of-core slope change.
3. **Coordination overhead.**  Per-wave task launch latency and a
   tree-aggregation of the model update every pass.

The model is deterministic and intentionally simple; it reproduces the
*shape* of Figure 1b (who wins and by roughly what factor), not exact seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.distributed.cluster import ClusterSpec
from repro.distributed.hdfs import HdfsConfig, HdfsModel
from repro.distributed.shuffle import NetworkModel, ShuffleCost


@dataclass(frozen=True)
class SparkWorkload:
    """Describes an iterative MLlib workload for the cost model.

    Attributes
    ----------
    name:
        Human-readable workload name.
    dataset_bytes:
        On-disk size of the training data (dense rows).
    iterations:
        Number of outer iterations (10 in the paper for both workloads).
    passes_per_iteration:
        Data passes per outer iteration (1.0 for k-means; >1 for L-BFGS when
        the line search evaluates extra points).
    model_bytes:
        Size of the model/update aggregated each pass (weights for LR,
        centroid sums for k-means).
    per_core_bytes_per_s:
        Effective per-core processing throughput of cached, deserialised data.
    deserialization_bytes_per_s:
        Per-core throughput of re-deserialising data that has to be re-read
        from disk/HDFS (only paid for the uncached fraction).
    """

    name: str
    dataset_bytes: int
    iterations: int = 10
    passes_per_iteration: float = 1.0
    model_bytes: int = 8 * 785
    per_core_bytes_per_s: float = 13e6
    deserialization_bytes_per_s: float = 60e6

    def __post_init__(self) -> None:
        if self.dataset_bytes <= 0:
            raise ValueError("dataset_bytes must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.passes_per_iteration <= 0:
            raise ValueError("passes_per_iteration must be positive")
        if self.per_core_bytes_per_s <= 0 or self.deserialization_bytes_per_s <= 0:
            raise ValueError("throughputs must be positive")

    @property
    def total_passes(self) -> float:
        """Total data passes over the whole job."""
        return self.iterations * self.passes_per_iteration

    @classmethod
    def logistic_regression(cls, dataset_bytes: int, iterations: int = 10,
                            n_features: int = 784) -> "SparkWorkload":
        """The paper's logistic-regression workload (10 iterations of L-BFGS)."""
        return cls(
            name="logistic-regression-lbfgs",
            dataset_bytes=dataset_bytes,
            iterations=iterations,
            passes_per_iteration=1.25,
            model_bytes=8 * (n_features + 1),
            per_core_bytes_per_s=13e6,
        )

    @classmethod
    def kmeans(cls, dataset_bytes: int, iterations: int = 10, n_clusters: int = 5,
               n_features: int = 784) -> "SparkWorkload":
        """The paper's k-means workload (10 iterations, 5 clusters)."""
        return cls(
            name="kmeans",
            dataset_bytes=dataset_bytes,
            iterations=iterations,
            passes_per_iteration=1.0,
            model_bytes=8 * n_clusters * (n_features + 1),
            per_core_bytes_per_s=20e6,
        )


@dataclass
class SparkJobEstimate:
    """Breakdown of a predicted Spark job runtime (all values in seconds)."""

    cluster_name: str
    workload_name: str
    total_time_s: float
    compute_time_s: float
    disk_time_s: float
    deserialization_time_s: float
    aggregation_time_s: float
    scheduling_time_s: float
    startup_time_s: float
    cached_fraction: float

    def breakdown(self) -> Dict[str, float]:
        """Component times as a dictionary (for reports and tests)."""
        return {
            "compute_time_s": self.compute_time_s,
            "disk_time_s": self.disk_time_s,
            "deserialization_time_s": self.deserialization_time_s,
            "aggregation_time_s": self.aggregation_time_s,
            "scheduling_time_s": self.scheduling_time_s,
            "startup_time_s": self.startup_time_s,
        }


@dataclass
class SparkCostModel:
    """Predicts iterative MLlib job runtimes on a given cluster.

    Attributes
    ----------
    cluster:
        The cluster to model.
    hdfs:
        HDFS configuration (block size governs the number of tasks).
    network:
        Network latency/overhead model for aggregations.
    os_cache_fraction:
        Fraction of each instance's physical RAM that can effectively hold
        dataset pages (executor storage memory plus the OS page cache holding
        HDFS blocks).  0.85 reflects the JVM + OS overheads on a 30 GB node.
    task_launch_overhead_s:
        Driver-side launch + result handling latency per task wave.
    job_startup_s:
        One-off job submission, executor launch and class-loading time.
    """

    cluster: ClusterSpec
    hdfs: HdfsConfig = field(default_factory=HdfsConfig)
    network: NetworkModel = field(default_factory=NetworkModel)
    os_cache_fraction: float = 0.85
    task_launch_overhead_s: float = 0.015
    job_startup_s: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 < self.os_cache_fraction <= 1.0:
            raise ValueError("os_cache_fraction must be in (0, 1]")
        if self.task_launch_overhead_s < 0 or self.job_startup_s < 0:
            raise ValueError("overheads must be non-negative")

    # -- helpers -----------------------------------------------------------

    def usable_cache_bytes(self) -> int:
        """Bytes of dataset the cluster can keep resident across passes."""
        return int(self.cluster.total_memory_bytes * self.os_cache_fraction)

    def cached_fraction(self, dataset_bytes: int) -> float:
        """Fraction of the dataset that stays in cluster memory between passes."""
        if dataset_bytes <= 0:
            return 1.0
        return min(1.0, self.usable_cache_bytes() / dataset_bytes)

    def num_tasks(self, dataset_bytes: int) -> int:
        """Tasks per pass (one per HDFS block, as Spark would create)."""
        return max(1, -(-dataset_bytes // self.hdfs.block_size))

    # -- estimation -----------------------------------------------------------

    def estimate(self, workload: SparkWorkload) -> SparkJobEstimate:
        """Predict the total runtime of ``workload`` on this cluster."""
        dataset = workload.dataset_bytes
        passes = workload.total_passes
        cores = self.cluster.total_cores

        cached = self.cached_fraction(dataset)
        uncached_bytes = dataset * (1.0 - cached)

        # 1. JVM record processing of every byte, every pass.
        compute_per_pass = dataset / (cores * workload.per_core_bytes_per_s)

        # 2. The uncached overflow is re-read from local disk / HDFS and
        #    re-deserialised on every pass.
        hdfs_model = HdfsModel(self.cluster, self.hdfs)
        disk_per_pass = hdfs_model.scan_time_s(int(uncached_bytes))
        deser_per_pass = uncached_bytes / (cores * workload.deserialization_bytes_per_s)

        # 3. Coordination: task waves + one tree-aggregation per pass.
        tasks = self.num_tasks(dataset)
        slots = self.cluster.total_cores
        waves = -(-tasks // slots)
        scheduling_per_pass = waves * self.task_launch_overhead_s * (tasks / max(1, slots))
        shuffle = ShuffleCost(self.cluster, self.network)
        aggregation_per_pass = shuffle.aggregate_time_s(workload.model_bytes, tasks) + \
            shuffle.broadcast_time_s(workload.model_bytes)

        compute_time = passes * compute_per_pass
        disk_time = passes * disk_per_pass
        deser_time = passes * deser_per_pass
        scheduling_time = passes * scheduling_per_pass
        aggregation_time = passes * aggregation_per_pass

        total = (
            self.job_startup_s
            + compute_time
            + disk_time
            + deser_time
            + scheduling_time
            + aggregation_time
        )
        return SparkJobEstimate(
            cluster_name=self.cluster.name,
            workload_name=workload.name,
            total_time_s=total,
            compute_time_s=compute_time,
            disk_time_s=disk_time,
            deserialization_time_s=deser_time,
            aggregation_time_s=aggregation_time,
            scheduling_time_s=scheduling_time,
            startup_time_s=self.job_startup_s,
            cached_fraction=cached,
        )
