"""Cluster and instance specifications.

The paper's Spark experiments ran on Amazon EC2 m3.2xlarge instances (8 vCPUs
— hyperthreads of Intel Xeon cores — 30 GB of memory, 2×80 GB SSD), created by
Amazon Elastic MapReduce.  These dataclasses describe such machines so the
cost model can reason about aggregate memory, cores and disk bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

GIB = 1024 ** 3


@dataclass(frozen=True)
class InstanceSpec:
    """Hardware description of a single cluster instance.

    Attributes
    ----------
    name:
        Instance type name.
    vcpus:
        Number of virtual CPUs (hyperthreads).
    memory_bytes:
        RAM per instance.
    executor_memory_bytes:
        Memory actually available to the Spark executor for caching RDDs
        (the JVM heap fraction Spark devotes to storage; well below the
        physical RAM).
    local_disk_bandwidth:
        Aggregate sequential bandwidth of the instance's local SSDs (bytes/s).
    network_bandwidth:
        Network bandwidth per instance (bytes/s).
    cpu_flops:
        Effective double-precision floating point throughput per instance.
    """

    name: str
    vcpus: int
    memory_bytes: int
    executor_memory_bytes: int
    local_disk_bandwidth: float
    network_bandwidth: float
    cpu_flops: float

    def validate(self) -> None:
        """Raise ``ValueError`` for non-physical configurations."""
        if self.vcpus <= 0:
            raise ValueError("vcpus must be positive")
        if self.memory_bytes <= 0 or self.executor_memory_bytes <= 0:
            raise ValueError("memory sizes must be positive")
        if self.executor_memory_bytes > self.memory_bytes:
            raise ValueError("executor memory cannot exceed physical memory")
        if min(self.local_disk_bandwidth, self.network_bandwidth, self.cpu_flops) <= 0:
            raise ValueError("bandwidths and flops must be positive")


#: The instance type used in the paper: m3.2xlarge (8 vCPU, 30 GB, 2×80 GB SSD).
#: Executor storage memory reflects Spark 1.x defaults (~0.6 × 0.9 of a ~22 GB
#: heap ≈ 12 GB usable for cached RDD partitions).
EC2_M3_2XLARGE = InstanceSpec(
    name="m3.2xlarge",
    vcpus=8,
    memory_bytes=30 * GIB,
    executor_memory_bytes=12 * GIB,
    local_disk_bandwidth=250e6,
    network_bandwidth=125e6,  # ~1 Gbit/s effective
    cpu_flops=40e9,
)


@dataclass
class ClusterSpec:
    """A homogeneous cluster of instances.

    Attributes
    ----------
    instances:
        Number of worker instances (the paper uses 4 and 8).
    instance:
        Per-instance hardware description.
    name:
        Optional label used in benchmark output (e.g. ``"4x Spark"``).
    """

    instances: int
    instance: InstanceSpec = EC2_M3_2XLARGE
    name: str = ""

    def __post_init__(self) -> None:
        if self.instances <= 0:
            raise ValueError(f"instances must be positive, got {self.instances}")
        self.instance.validate()
        if not self.name:
            self.name = f"{self.instances}x {self.instance.name}"

    @property
    def total_cores(self) -> int:
        """Total vCPUs across the cluster."""
        return self.instances * self.instance.vcpus

    @property
    def total_memory_bytes(self) -> int:
        """Total physical RAM across the cluster."""
        return self.instances * self.instance.memory_bytes

    @property
    def total_executor_memory_bytes(self) -> int:
        """Total RDD-cache memory across the cluster."""
        return self.instances * self.instance.executor_memory_bytes

    @property
    def total_cpu_flops(self) -> float:
        """Aggregate floating-point throughput across the cluster."""
        return self.instances * self.instance.cpu_flops

    @property
    def aggregate_disk_bandwidth(self) -> float:
        """Aggregate local-disk bandwidth across the cluster."""
        return self.instances * self.instance.local_disk_bandwidth

    def cache_fraction(self, dataset_bytes: int) -> float:
        """Fraction of the dataset that fits in the cluster's RDD cache (0–1)."""
        if dataset_bytes <= 0:
            return 1.0
        return min(1.0, self.total_executor_memory_bytes / dataset_bytes)


def make_emr_cluster(instances: int, instance: InstanceSpec = EC2_M3_2XLARGE) -> ClusterSpec:
    """Create a cluster spec labelled the way the paper labels them (``"4x Spark"``)."""
    return ClusterSpec(instances=instances, instance=instance, name=f"{instances}x Spark")


@dataclass
class ClusterInventory:
    """A collection of named clusters, used by the benchmark harness."""

    clusters: List[ClusterSpec] = field(default_factory=list)

    def add(self, cluster: ClusterSpec) -> None:
        """Register a cluster."""
        self.clusters.append(cluster)

    def by_name(self, name: str) -> ClusterSpec:
        """Look up a cluster by its label."""
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise KeyError(f"no cluster named {name!r}")
