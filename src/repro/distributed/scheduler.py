"""Stage/task scheduler for the mini Spark engine.

The scheduler assigns partitions to executors round-robin (a stand-in for
Spark's locality-aware assignment), executes them, and records per-stage
metrics.  It also computes how many *waves* of tasks a stage needs — the
quantity the cost model multiplies by per-task overhead when estimating real
cluster runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.distributed.cluster import ClusterSpec
from repro.distributed.executor import Executor, TaskMetrics


@dataclass
class StageMetrics:
    """Aggregate metrics for one executed stage."""

    stage_id: int
    num_tasks: int
    num_waves: int
    task_metrics: List[TaskMetrics] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        """Rows processed across all tasks in the stage."""
        return sum(task.rows_processed for task in self.task_metrics)

    @property
    def total_task_time_s(self) -> float:
        """Sum of task wall times (driver-side, in-process execution time)."""
        return sum(task.wall_time_s for task in self.task_metrics)

    @property
    def max_task_time_s(self) -> float:
        """Longest single task (the straggler that bounds a wave)."""
        return max((task.wall_time_s for task in self.task_metrics), default=0.0)


class JobScheduler:
    """Executes stages of partition tasks over a set of simulated executors."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self.executors = [
            Executor(executor_id=i, cores=cluster.instance.vcpus)
            for i in range(cluster.instances)
        ]
        self.stages: List[StageMetrics] = []
        self._next_task_id = 0

    @property
    def total_task_slots(self) -> int:
        """Number of tasks the cluster can run concurrently."""
        return sum(executor.cores for executor in self.executors)

    def waves_for(self, num_tasks: int) -> int:
        """Number of sequential task waves needed to run ``num_tasks``."""
        if num_tasks <= 0:
            return 0
        return -(-num_tasks // self.total_task_slots)

    def run_stage(self, partitions: Sequence[Any]) -> List[Any]:
        """Execute every partition and return their results in partition order.

        Partitions are assigned to executors round-robin, mimicking an even
        spread of HDFS blocks across the cluster.
        """
        stage_id = len(self.stages)
        results: List[Any] = [None] * len(partitions)
        metrics: List[TaskMetrics] = []

        for position, partition in enumerate(partitions):
            executor = self.executors[position % len(self.executors)]
            task_id = self._next_task_id
            self._next_task_id += 1
            results[position] = executor.run_task(task_id, partition)
            metrics.append(executor.completed_tasks[-1])

        stage = StageMetrics(
            stage_id=stage_id,
            num_tasks=len(partitions),
            num_waves=self.waves_for(len(partitions)),
            task_metrics=metrics,
        )
        self.stages.append(stage)
        return results

    # -- reporting -----------------------------------------------------------

    def rows_per_executor(self) -> List[int]:
        """Rows processed by each executor (to check balanced partitioning)."""
        return [executor.total_rows for executor in self.executors]

    def total_stages(self) -> int:
        """Number of stages executed so far."""
        return len(self.stages)
