"""Network and shuffle/aggregation cost models.

Iterative MLlib algorithms end every iteration with an aggregation: each task
produces a partial gradient (or partial centroid sums) and the driver combines
them, usually with ``treeAggregate``.  The paper points to exactly this as the
overhead distributed systems pay ("using more Spark instances ... may also
incur additional overhead (e.g., communication between nodes)").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.distributed.cluster import ClusterSpec


@dataclass(frozen=True)
class NetworkModel:
    """Per-message latency + bandwidth network model.

    Attributes
    ----------
    latency_s:
        One-way message latency between any two instances (EC2 same-AZ is a
        few hundred microseconds; add serialization and Spark RPC overhead).
    software_overhead_s:
        Fixed serialization/deserialization + RPC dispatch cost per message.
    """

    latency_s: float = 0.5e-3
    software_overhead_s: float = 5e-3

    def transfer_time_s(self, nbytes: int, bandwidth: float) -> float:
        """Time to move one message of ``nbytes`` at ``bandwidth`` bytes/s."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        return self.latency_s + self.software_overhead_s + nbytes / bandwidth


@dataclass
class ShuffleCost:
    """Estimates aggregation (reduce/treeAggregate) time for a cluster."""

    cluster: ClusterSpec
    network: NetworkModel = NetworkModel()
    tree_fanout: int = 2

    def __post_init__(self) -> None:
        if self.tree_fanout < 2:
            raise ValueError("tree_fanout must be at least 2")

    def tree_depth(self, num_partitions: int) -> int:
        """Depth of a treeAggregate over ``num_partitions`` partial results."""
        if num_partitions <= 1:
            return 0
        return max(1, math.ceil(math.log(num_partitions, self.tree_fanout)))

    def aggregate_time_s(self, payload_bytes: int, num_partitions: int) -> float:
        """Wall time for one treeAggregate of ``payload_bytes`` per partial result.

        Each tree level moves one payload per participating partition pair in
        parallel; the time per level is one network transfer of the payload,
        and levels are sequential.
        """
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        depth = self.tree_depth(num_partitions)
        if depth == 0:
            return 0.0
        bandwidth = self.cluster.instance.network_bandwidth
        per_level = self.network.transfer_time_s(payload_bytes, bandwidth)
        return depth * per_level

    def broadcast_time_s(self, payload_bytes: int) -> float:
        """Wall time to broadcast a payload from the driver to all instances.

        Spark uses a BitTorrent-style broadcast, which behaves like a tree of
        the same depth as the aggregation tree.
        """
        depth = self.tree_depth(self.cluster.instances)
        if depth == 0:
            return self.network.transfer_time_s(payload_bytes, self.cluster.instance.network_bandwidth)
        bandwidth = self.cluster.instance.network_bandwidth
        return depth * self.network.transfer_time_s(payload_bytes, bandwidth)
