"""repro — a reproduction of *M3: Scaling Up Machine Learning via Memory Mapping*.

M3 (Fang & Chau, SIGMOD 2016) shows that memory-mapping a dataset lets
unmodified machine learning code scale to datasets that exceed RAM, at speeds
competitive with small Spark clusters.  This package reproduces the system and
its evaluation:

* :mod:`repro.api` — the unified API: a :class:`~repro.api.Session` resolving
  URI-style dataset specs (``mmap://file.m3``, ``shard://dir/``,
  ``memory://name``) to pluggable storage backends, handing out
  :class:`~repro.api.Dataset` handles, and dispatching ``session.fit`` to
  pluggable execution engines (``local``, ``simulated``, ``distributed``).
* :mod:`repro.core` — the original M3 primitives (memory-mapped matrices,
  ``mmap_alloc``, access advice) plus the legacy facade, now a shim over the
  unified API.
* :mod:`repro.ml` — the machine learning library being scaled (L-BFGS logistic
  regression, k-means, and friends), written against the plain row-slicing
  protocol so in-memory, memory-mapped and sharded data are interchangeable.
* :mod:`repro.vmem` — a virtual-memory / page-cache simulator substituting for
  the paper's 32 GB desktop and PCIe SSD.
* :mod:`repro.distributed` — a Spark-style baseline (mini RDD engine + EC2
  cluster cost model) substituting for the paper's EMR clusters.
* :mod:`repro.data` — an Infimnist-style infinite digit-image generator and
  the on-disk formats.
* :mod:`repro.profiling` / :mod:`repro.bench` — utilisation reporting,
  performance prediction and the harness that regenerates every figure and
  table of the paper.

Migrating from the legacy facade to the unified API
---------------------------------------------------

==============================================  ==============================================
Old (still works, thin shim)                    New
==============================================  ==============================================
``X, y = m3.open_dataset("d.m3")``              ``ds = session.open("mmap://d.m3")`` then
                                                ``X, y = ds.arrays()``
``m3.create_dataset("d.m3", X, y)``             ``session.create("mmap://d.m3", X, y)``
``M3(M3Config(record_traces=True))`` +          ``session.open(spec, record_trace=True)`` +
``runtime.last_trace``                          ``ds.trace`` (per handle, thread safe)
``model.fit(X, y)`` by hand                     ``session.fit(model, ds)`` — pick the engine
                                                with ``engine="local" | "simulated" |
                                                "distributed"``
``M3().dataset_info(path)``                     ``session.info(spec)`` / CLI ``m3 info``
(no equivalent)                                 ``session.create("shard://dir/", X, y)`` —
                                                matrix sharded across multiple files
==============================================  ==============================================
"""

from repro import api, bench, core, data, distributed, ml, profiling, vmem
from repro.api import Dataset, FitResult, Session
from repro.core import (
    M3,
    M3Config,
    MmapMatrix,
    create_dataset,
    load_matrix,
    mmap_alloc,
    open_dataset,
)
from repro.ml import KMeans, LogisticRegression, SoftmaxRegression

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "api",
    "core",
    "ml",
    "vmem",
    "distributed",
    "data",
    "profiling",
    "bench",
    "Session",
    "Dataset",
    "FitResult",
    "M3",
    "M3Config",
    "MmapMatrix",
    "mmap_alloc",
    "create_dataset",
    "open_dataset",
    "load_matrix",
    "LogisticRegression",
    "SoftmaxRegression",
    "KMeans",
]
