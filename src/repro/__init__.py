"""repro — a reproduction of *M3: Scaling Up Machine Learning via Memory Mapping*.

M3 (Fang & Chau, SIGMOD 2016) shows that memory-mapping a dataset lets
unmodified machine learning code scale to datasets that exceed RAM, at speeds
competitive with small Spark clusters.  This package reproduces the system and
its evaluation:

* :mod:`repro.core` — the M3 API (memory-mapped matrices, ``mmap_alloc``,
  access advice, the transparent-dataset facade).
* :mod:`repro.ml` — the machine learning library being scaled (L-BFGS logistic
  regression, k-means, and friends), written against the plain row-slicing
  protocol so in-memory and memory-mapped data are interchangeable.
* :mod:`repro.vmem` — a virtual-memory / page-cache simulator substituting for
  the paper's 32 GB desktop and PCIe SSD.
* :mod:`repro.distributed` — a Spark-style baseline (mini RDD engine + EC2
  cluster cost model) substituting for the paper's EMR clusters.
* :mod:`repro.data` — an Infimnist-style infinite digit-image generator and
  the on-disk formats.
* :mod:`repro.profiling` / :mod:`repro.bench` — utilisation reporting,
  performance prediction and the harness that regenerates every figure and
  table of the paper.
"""

from repro import bench, core, data, distributed, ml, profiling, vmem
from repro.core import (
    M3,
    M3Config,
    MmapMatrix,
    create_dataset,
    load_matrix,
    mmap_alloc,
    open_dataset,
)
from repro.ml import KMeans, LogisticRegression, SoftmaxRegression

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "core",
    "ml",
    "vmem",
    "distributed",
    "data",
    "profiling",
    "bench",
    "M3",
    "M3Config",
    "MmapMatrix",
    "mmap_alloc",
    "create_dataset",
    "open_dataset",
    "load_matrix",
    "LogisticRegression",
    "SoftmaxRegression",
    "KMeans",
]
