"""Optimisation result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class OptimizationResult:
    """Outcome of running an optimiser.

    Attributes
    ----------
    params:
        The final parameter vector.
    value:
        Objective value at ``params``.
    iterations:
        Number of outer iterations performed.
    converged:
        Whether the convergence tolerance was reached before the iteration
        budget ran out.
    gradient_norm:
        Euclidean norm of the final gradient.
    history:
        Objective value after each iteration (useful for plotting convergence
        and asserting monotone decrease in tests).
    function_evaluations:
        Total number of objective evaluations, including those made by line
        searches — the quantity that determines how many passes over a
        memory-mapped dataset were made.
    """

    params: np.ndarray
    value: float
    iterations: int
    converged: bool
    gradient_norm: float
    history: List[float] = field(default_factory=list)
    function_evaluations: int = 0

    def __post_init__(self) -> None:
        self.params = np.asarray(self.params, dtype=np.float64)

    def summary(self) -> str:
        """One-line human readable summary."""
        status = "converged" if self.converged else "reached iteration limit"
        return (
            f"{status} after {self.iterations} iterations: "
            f"f = {self.value:.6g}, ||grad|| = {self.gradient_norm:.3g}, "
            f"{self.function_evaluations} function evaluations"
        )
