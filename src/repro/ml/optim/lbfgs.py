"""Limited-memory BFGS.

This is the optimiser the M3 paper uses for logistic regression ("10 iterations
of L-BFGS"), implemented from scratch: the standard two-loop recursion over a
bounded history of curvature pairs, an initial Hessian scaling of
``γ = sᵀy / yᵀy``, and a strong-Wolfe line search.  The implementation touches
the training data only through the objective, so it is identical whether the
data is in RAM or memory mapped — the M3 transparency property.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.optim.line_search import wolfe_line_search
from repro.ml.optim.objective import DifferentiableObjective
from repro.ml.optim.result import OptimizationResult


class LBFGS(BaseEstimator):
    """Limited-memory BFGS minimiser.

    Parameters
    ----------
    max_iterations:
        Maximum number of outer iterations.  The paper fixes this to 10 for
        its runtime experiments.
    history_size:
        Number of curvature pairs kept (mlpack's default is 10).
    tolerance:
        Convergence threshold on the gradient's infinity norm.
    min_step, max_step:
        Bounds on accepted line-search steps.
    wolfe_c1, wolfe_c2:
        Strong-Wolfe constants.
    callback:
        Optional callable invoked as ``callback(iteration, params, value)``
        after every iteration — used by the benchmark harness to attribute
        time per iteration.
    """

    def __init__(
        self,
        max_iterations: int = 10,
        history_size: int = 10,
        tolerance: float = 1e-6,
        min_step: float = 1e-20,
        max_step: float = 1e20,
        wolfe_c1: float = 1e-4,
        wolfe_c2: float = 0.9,
        callback: Optional[Callable[..., Any]] = None,
    ) -> None:
        if max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        if history_size <= 0:
            raise ValueError(f"history_size must be positive, got {history_size}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        self.max_iterations = max_iterations
        self.history_size = history_size
        self.tolerance = tolerance
        self.min_step = min_step
        self.max_step = max_step
        self.wolfe_c1 = wolfe_c1
        self.wolfe_c2 = wolfe_c2
        self.callback = callback

    # -- two-loop recursion ------------------------------------------------

    @staticmethod
    def _two_loop(
        gradient: np.ndarray,
        s_history: Deque[np.ndarray],
        y_history: Deque[np.ndarray],
        rho_history: Deque[float],
    ) -> np.ndarray:
        """Compute ``H_k · gradient`` implicitly from the curvature history."""
        q = gradient.copy()
        alphas = []
        for s, y, rho in zip(reversed(s_history), reversed(y_history), reversed(rho_history)):
            alpha = rho * float(s @ q)
            q -= alpha * y
            alphas.append(alpha)
        if s_history:
            s, y = s_history[-1], y_history[-1]
            gamma = float(s @ y) / float(y @ y)
        else:
            gamma = 1.0
        r = gamma * q
        for (s, y, rho), alpha in zip(
            zip(s_history, y_history, rho_history), reversed(alphas)
        ):
            beta = rho * float(y @ r)
            r += (alpha - beta) * s
        return r

    # -- main loop -----------------------------------------------------------

    def minimize(
        self,
        objective: DifferentiableObjective,
        initial_params: Optional[np.ndarray] = None,
    ) -> OptimizationResult:
        """Minimise ``objective`` starting from ``initial_params``."""
        params = (
            np.asarray(initial_params, dtype=np.float64).copy()
            if initial_params is not None
            else objective.initial_point().astype(np.float64)
        )
        value, gradient = objective.value_and_gradient(params)
        evaluations = 1
        history = [value]

        s_history: Deque[np.ndarray] = deque(maxlen=self.history_size)
        y_history: Deque[np.ndarray] = deque(maxlen=self.history_size)
        rho_history: Deque[float] = deque(maxlen=self.history_size)

        converged = bool(np.max(np.abs(gradient)) <= self.tolerance)
        iteration = 0

        while not converged and iteration < self.max_iterations:
            direction = -self._two_loop(gradient, s_history, y_history, rho_history)
            directional_derivative = float(gradient @ direction)
            if directional_derivative >= 0:
                # The history produced a non-descent direction (can happen with
                # ill-conditioned curvature pairs); fall back to steepest descent.
                direction = -gradient
                directional_derivative = float(gradient @ direction)
                s_history.clear()
                y_history.clear()
                rho_history.clear()

            step_state: dict = {}

            def oracle(alpha: float) -> Tuple[float, float]:
                candidate = params + alpha * direction
                candidate_value, candidate_grad = objective.value_and_gradient(candidate)
                step_state[alpha] = (candidate, candidate_value, candidate_grad)
                return candidate_value, float(candidate_grad @ direction)

            step, step_value, line_evals = wolfe_line_search(
                oracle,
                value,
                directional_derivative,
                initial_step=1.0,
                c1=self.wolfe_c1,
                c2=self.wolfe_c2,
            )
            evaluations += line_evals
            step = float(np.clip(step, self.min_step, self.max_step))

            if step in step_state:
                new_params, new_value, new_gradient = step_state[step]
            else:
                new_params = params + step * direction
                new_value, new_gradient = objective.value_and_gradient(new_params)
                evaluations += 1

            s = new_params - params
            y = new_gradient - gradient
            sy = float(s @ y)
            if sy > 1e-12:
                s_history.append(s)
                y_history.append(y)
                rho_history.append(1.0 / sy)

            params, value, gradient = new_params, new_value, new_gradient
            iteration += 1
            history.append(value)
            converged = bool(np.max(np.abs(gradient)) <= self.tolerance)

            if self.callback is not None:
                self.callback(iteration, params, value)

            if not np.isfinite(value):
                break

        return OptimizationResult(
            params=params,
            value=value,
            iterations=iteration,
            converged=converged,
            gradient_norm=float(np.linalg.norm(gradient)),
            history=history,
            function_evaluations=evaluations,
        )
