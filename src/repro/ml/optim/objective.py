"""Objective-function abstractions for the optimisers.

An objective exposes ``value_and_gradient(params)``; optimisers never need
anything else.  For data-dependent objectives (logistic regression's negative
log-likelihood, for example) the implementation streams over row chunks of the
design matrix, which keeps memory bounded and produces the sequential access
pattern that memory mapping rewards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Tuple

import numpy as np


class DifferentiableObjective(ABC):
    """A differentiable scalar function of a parameter vector."""

    @abstractmethod
    def value_and_gradient(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return ``(f(params), ∇f(params))``."""

    def value(self, params: np.ndarray) -> float:
        """Objective value only (default: discard the gradient)."""
        return self.value_and_gradient(params)[0]

    def gradient(self, params: np.ndarray) -> np.ndarray:
        """Gradient only (default: discard the value)."""
        return self.value_and_gradient(params)[1]

    @property
    @abstractmethod
    def num_parameters(self) -> int:
        """Dimensionality of the parameter vector."""

    def initial_point(self) -> np.ndarray:
        """Default starting point (zeros)."""
        return np.zeros(self.num_parameters)

    def num_examples(self) -> Optional[int]:
        """Number of training examples, if the objective is data-dependent."""
        return None


class FunctionObjective(DifferentiableObjective):
    """Wraps plain Python callables into an objective.

    Parameters
    ----------
    fn:
        Callable returning the objective value.
    grad:
        Callable returning the gradient.
    dim:
        Parameter dimensionality.
    """

    def __init__(
        self,
        fn: Callable[[np.ndarray], float],
        grad: Callable[[np.ndarray], np.ndarray],
        dim: int,
    ) -> None:
        self._fn = fn
        self._grad = grad
        self._dim = dim

    def value_and_gradient(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        return float(self._fn(params)), np.asarray(self._grad(params), dtype=np.float64)

    @property
    def num_parameters(self) -> int:
        return self._dim


class QuadraticObjective(DifferentiableObjective):
    """The convex quadratic ``f(x) = 0.5 xᵀ A x − bᵀ x``.

    Its unique minimiser is the solution of ``A x = b``, which makes it the
    canonical correctness check for any optimiser.
    """

    def __init__(self, A: np.ndarray, b: np.ndarray) -> None:
        A = np.asarray(A, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ValueError(f"A must be square, got shape {A.shape}")
        if b.shape != (A.shape[0],):
            raise ValueError(f"b must have shape ({A.shape[0]},), got {b.shape}")
        if not np.allclose(A, A.T):
            raise ValueError("A must be symmetric")
        self.A = A
        self.b = b

    def value_and_gradient(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        Ax = self.A @ params
        value = 0.5 * float(params @ Ax) - float(self.b @ params)
        return value, Ax - self.b

    @property
    def num_parameters(self) -> int:
        return self.A.shape[0]

    def minimizer(self) -> np.ndarray:
        """The exact solution ``A⁻¹ b``."""
        return np.linalg.solve(self.A, self.b)


class RosenbrockObjective(DifferentiableObjective):
    """The classic non-convex Rosenbrock banana function (n-dimensional).

    Minimum value 0 at the all-ones vector.  Used to exercise the optimisers'
    line searches on a genuinely curved landscape.
    """

    def __init__(self, dim: int = 2, a: float = 1.0, b: float = 100.0) -> None:
        if dim < 2:
            raise ValueError("Rosenbrock needs at least 2 dimensions")
        self.dim = dim
        self.a = a
        self.b = b

    def value_and_gradient(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        x = np.asarray(params, dtype=np.float64)
        lead, tail = x[:-1], x[1:]
        value = float(np.sum(self.b * (tail - lead ** 2) ** 2 + (self.a - lead) ** 2))
        grad = np.zeros_like(x)
        grad[:-1] += -4.0 * self.b * lead * (tail - lead ** 2) - 2.0 * (self.a - lead)
        grad[1:] += 2.0 * self.b * (tail - lead ** 2)
        return value, grad

    @property
    def num_parameters(self) -> int:
        return self.dim

    def initial_point(self) -> np.ndarray:
        return np.full(self.dim, -1.2)
