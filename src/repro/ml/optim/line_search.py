"""Line searches used by the first- and quasi-second-order optimisers.

Two variants are provided:

* :func:`backtracking_line_search` — Armijo backtracking, cheap and robust,
  used by plain gradient descent.
* :func:`wolfe_line_search` — a bracketing/zoom search satisfying the strong
  Wolfe conditions, which L-BFGS requires for its curvature pairs to keep the
  inverse-Hessian approximation positive definite.

Both operate purely through a ``value_and_gradient`` callable so they are
oblivious to where the underlying data lives.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

#: Signature of the oracle handed to the line searches: maps a step length
#: ``alpha`` to ``(f(x + alpha * d), ∇f(x + alpha * d) · d)``.
DirectionalOracle = Callable[[float], Tuple[float, float]]


def backtracking_line_search(
    oracle: DirectionalOracle,
    f0: float,
    g0: float,
    initial_step: float = 1.0,
    shrink: float = 0.5,
    c1: float = 1e-4,
    max_steps: int = 40,
) -> Tuple[float, float, int]:
    """Armijo backtracking.

    Parameters
    ----------
    oracle:
        Directional oracle (see :data:`DirectionalOracle`).
    f0, g0:
        Objective value and directional derivative at step 0.  ``g0`` must be
        negative (a descent direction).
    initial_step, shrink, c1, max_steps:
        Standard Armijo parameters.

    Returns
    -------
    (step, value, evaluations):
        The accepted step length, the objective value there, and how many
        oracle evaluations were used.  If no step satisfies the condition the
        smallest tried step is returned.
    """
    if g0 >= 0:
        raise ValueError(f"not a descent direction: directional derivative {g0} >= 0")
    step = initial_step
    evaluations = 0
    best_step, best_value = 0.0, f0
    for _ in range(max_steps):
        value, _ = oracle(step)
        evaluations += 1
        if value <= f0 + c1 * step * g0:
            return step, value, evaluations
        if value < best_value:
            best_step, best_value = step, value
        step *= shrink
    return best_step, best_value, evaluations


def wolfe_line_search(
    oracle: DirectionalOracle,
    f0: float,
    g0: float,
    initial_step: float = 1.0,
    c1: float = 1e-4,
    c2: float = 0.9,
    max_steps: int = 25,
    max_step: float = 1e10,
) -> Tuple[float, float, int]:
    """Strong-Wolfe line search (Nocedal & Wright, Algorithm 3.5/3.6).

    Returns ``(step, value, evaluations)``.  Falls back to the best Armijo
    point found if the zoom phase fails to satisfy the curvature condition.
    """
    if g0 >= 0:
        raise ValueError(f"not a descent direction: directional derivative {g0} >= 0")

    evaluations = 0

    def evaluate(alpha: float) -> Tuple[float, float]:
        nonlocal evaluations
        evaluations += 1
        return oracle(alpha)

    def zoom(lo: float, f_lo: float, g_lo: float, hi: float, f_hi: float) -> Tuple[float, float]:
        """Bisection-based zoom between a low (good) and high bracket end."""
        for _ in range(max_steps):
            alpha = 0.5 * (lo + hi)
            value, slope = evaluate(alpha)
            if value > f0 + c1 * alpha * g0 or value >= f_lo:
                hi, f_hi = alpha, value
            else:
                if abs(slope) <= -c2 * g0:
                    return alpha, value
                if slope * (hi - lo) >= 0:
                    hi, f_hi = lo, f_lo
                lo, f_lo, g_lo = alpha, value, slope
        return lo, f_lo

    prev_alpha, prev_value = 0.0, f0
    alpha = min(initial_step, max_step)
    for iteration in range(max_steps):
        value, slope = evaluate(alpha)
        if value > f0 + c1 * alpha * g0 or (iteration > 0 and value >= prev_value):
            step, final_value = zoom(prev_alpha, prev_value, g0 if iteration == 0 else slope, alpha, value)
            return step, final_value, evaluations
        if abs(slope) <= -c2 * g0:
            return alpha, value, evaluations
        if slope >= 0:
            step, final_value = zoom(alpha, value, slope, prev_alpha, prev_value)
            return step, final_value, evaluations
        prev_alpha, prev_value = alpha, value
        alpha = min(2.0 * alpha, max_step)

    return prev_alpha, prev_value, evaluations
