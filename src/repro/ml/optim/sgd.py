"""Mini-batch stochastic gradient descent.

The paper's ongoing-work section names *online learning* as a direction M3
should extend to.  SGD is the canonical online/streaming optimiser: it visits
the data one mini-batch at a time, which under memory mapping becomes a
sequence of bounded-size page ranges — exactly the access pattern the
locality-analysis tooling in :mod:`repro.vmem.trace` studies.

Unlike :class:`~repro.ml.optim.lbfgs.LBFGS`, SGD does not use the generic
objective protocol (it needs per-batch gradients), so it defines its own small
``BatchGradientObjective`` protocol implemented by the streaming objectives in
:mod:`repro.ml.linear_model.objectives`.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.optim.result import OptimizationResult


class BatchGradientObjective(Protocol):
    """Protocol for objectives that can evaluate gradients on row ranges."""

    @property
    def num_parameters(self) -> int:
        """Dimensionality of the parameter vector."""

    def num_examples(self) -> int:
        """Total number of training rows."""

    def batch_value_and_gradient(
        self, params: np.ndarray, start: int, stop: int
    ) -> "tuple[float, np.ndarray]":
        """Loss value (sum over the batch) and gradient for rows ``[start, stop)``."""

    def value_and_gradient(self, params: np.ndarray) -> "tuple[float, np.ndarray]":
        """Full-dataset value and gradient (used for final reporting)."""


class SGD(BaseEstimator):
    """Mini-batch SGD with an inverse-scaling learning-rate schedule.

    Parameters
    ----------
    max_epochs:
        Number of full passes over the data.
    batch_size:
        Rows per mini-batch.
    learning_rate:
        Initial learning rate ``η₀``.
    decay:
        Learning rate at step ``t`` is ``η₀ / (1 + decay · t)``.
    shuffle:
        Whether to visit batches in a random order each epoch.  Sequential
        order (the default) preserves the streaming access pattern that
        benefits memory mapping; the ablation benchmark flips this knob to
        quantify the cost of random access.
    seed:
        Seed for the shuffling RNG.
    tolerance:
        Stop early when the epoch-over-epoch decrease of the mean loss falls
        below this value.
    callback:
        Optional ``callback(epoch, params, value)``.
    """

    def __init__(
        self,
        max_epochs: int = 10,
        batch_size: int = 256,
        learning_rate: float = 0.1,
        decay: float = 1e-3,
        shuffle: bool = False,
        seed: Optional[int] = None,
        tolerance: float = 1e-8,
        callback: Optional[Callable[..., Any]] = None,
    ) -> None:
        if max_epochs <= 0:
            raise ValueError(f"max_epochs must be positive, got {max_epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.max_epochs = max_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.decay = decay
        self.shuffle = shuffle
        self.seed = seed
        self.tolerance = tolerance
        self.callback = callback

    def minimize(
        self,
        objective: BatchGradientObjective,
        initial_params: Optional[np.ndarray] = None,
    ) -> OptimizationResult:
        """Minimise a batch-gradient objective."""
        params = (
            np.asarray(initial_params, dtype=np.float64).copy()
            if initial_params is not None
            else np.zeros(objective.num_parameters)
        )
        n = objective.num_examples()
        if n <= 0:
            raise ValueError("objective reports no training examples")
        rng = np.random.default_rng(self.seed)
        starts = np.arange(0, n, self.batch_size)

        history = []
        evaluations = 0
        step = 0
        previous_epoch_loss = np.inf
        converged = False
        epoch = 0

        for epoch in range(1, self.max_epochs + 1):
            order = rng.permutation(len(starts)) if self.shuffle else np.arange(len(starts))
            epoch_loss = 0.0
            for batch_index in order:
                start = int(starts[batch_index])
                stop = min(start + self.batch_size, n)
                loss, grad = objective.batch_value_and_gradient(params, start, stop)
                evaluations += 1
                lr = self.learning_rate / (1.0 + self.decay * step)
                params = params - lr * grad
                epoch_loss += loss
                step += 1
            mean_loss = epoch_loss / n
            history.append(mean_loss)
            if self.callback is not None:
                self.callback(epoch, params, mean_loss)
            if previous_epoch_loss - mean_loss < self.tolerance:
                converged = True
                break
            previous_epoch_loss = mean_loss

        final_value, final_grad = objective.value_and_gradient(params)
        evaluations += 1
        return OptimizationResult(
            params=params,
            value=final_value,
            iterations=epoch,
            converged=converged,
            gradient_norm=float(np.linalg.norm(final_grad)),
            history=history,
            function_evaluations=evaluations,
        )
