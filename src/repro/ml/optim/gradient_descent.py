"""Full-batch gradient descent with Armijo backtracking.

Included as a simple baseline optimiser: it makes exactly one pass over the
training data per iteration (plus line-search passes), which makes its I/O
behaviour under memory mapping particularly easy to reason about in the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.optim.line_search import backtracking_line_search
from repro.ml.optim.objective import DifferentiableObjective
from repro.ml.optim.result import OptimizationResult


class GradientDescent(BaseEstimator):
    """Batch gradient descent minimiser.

    Parameters
    ----------
    max_iterations:
        Maximum number of iterations.
    tolerance:
        Convergence threshold on the gradient's infinity norm.
    step_size:
        Initial step size handed to the backtracking line search; when
        ``line_search`` is false this fixed step is used directly.
    line_search:
        Whether to use Armijo backtracking (default) or a fixed step.
    callback:
        Optional ``callback(iteration, params, value)``.
    """

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        step_size: float = 1.0,
        line_search: bool = True,
        callback: Optional[Callable[..., Any]] = None,
    ) -> None:
        if max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.step_size = step_size
        self.line_search = line_search
        self.callback = callback

    def minimize(
        self,
        objective: DifferentiableObjective,
        initial_params: Optional[np.ndarray] = None,
    ) -> OptimizationResult:
        """Minimise ``objective`` starting from ``initial_params``."""
        params = (
            np.asarray(initial_params, dtype=np.float64).copy()
            if initial_params is not None
            else objective.initial_point().astype(np.float64)
        )
        value, gradient = objective.value_and_gradient(params)
        evaluations = 1
        history = [value]
        converged = bool(np.max(np.abs(gradient)) <= self.tolerance)
        iteration = 0

        while not converged and iteration < self.max_iterations:
            direction = -gradient
            directional_derivative = float(gradient @ direction)

            if self.line_search:
                def oracle(alpha: float) -> Tuple[float, float]:
                    candidate_value, candidate_grad = objective.value_and_gradient(
                        params + alpha * direction
                    )
                    return candidate_value, float(candidate_grad @ direction)

                step, _, line_evals = backtracking_line_search(
                    oracle, value, directional_derivative, initial_step=self.step_size
                )
                evaluations += line_evals
            else:
                step = self.step_size

            params = params + step * direction
            value, gradient = objective.value_and_gradient(params)
            evaluations += 1
            iteration += 1
            history.append(value)
            converged = bool(np.max(np.abs(gradient)) <= self.tolerance)

            if self.callback is not None:
                self.callback(iteration, params, value)

            if not np.isfinite(value):
                break

        return OptimizationResult(
            params=params,
            value=value,
            iterations=iteration,
            converged=converged,
            gradient_norm=float(np.linalg.norm(gradient)),
            history=history,
            function_evaluations=evaluations,
        )
