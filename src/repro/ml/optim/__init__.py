"""Numerical optimisers.

The paper runs logistic regression with "10 iterations of L-BFGS" — the same
optimiser mlpack uses.  This subpackage implements L-BFGS from scratch
(two-loop recursion with a strong-Wolfe line search), plus full-batch gradient
descent and stochastic gradient descent used as baselines and by the online
learning extension.
"""

from repro.ml.optim.objective import (
    DifferentiableObjective,
    FunctionObjective,
    QuadraticObjective,
    RosenbrockObjective,
)
from repro.ml.optim.result import OptimizationResult
from repro.ml.optim.line_search import backtracking_line_search, wolfe_line_search
from repro.ml.optim.lbfgs import LBFGS
from repro.ml.optim.gradient_descent import GradientDescent
from repro.ml.optim.sgd import SGD

__all__ = [
    "DifferentiableObjective",
    "FunctionObjective",
    "QuadraticObjective",
    "RosenbrockObjective",
    "OptimizationResult",
    "backtracking_line_search",
    "wolfe_line_search",
    "LBFGS",
    "GradientDescent",
    "SGD",
]
