"""Ordinary least squares / ridge regression.

Not part of the paper's timed workloads, but a natural member of the
"wide range of machine learning algorithms" the paper's ongoing work targets,
and a useful sanity check: with an exact normal-equation solver available, the
chunk-streaming gradient path can be validated against a closed form.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator, StreamingPredictor, as_matrix, iter_row_chunks
from repro.ml.linear_model.objectives import DEFAULT_CHUNK_ROWS, LinearRegressionObjective
from repro.ml.optim.lbfgs import LBFGS


class LinearRegression(BaseEstimator, StreamingPredictor):
    """Linear regression with an optional L2 (ridge) penalty.

    Two solvers are offered:

    * ``"normal"`` — accumulate ``XᵀX`` and ``Xᵀy`` in one streaming pass and
      solve the normal equations exactly.  This is itself a nice demonstration
      of out-of-core computation: the accumulators are tiny regardless of the
      number of rows.
    * ``"lbfgs"`` — minimise the MSE objective iteratively, exercising the
      same code path as logistic regression.

    Attributes
    ----------
    coef_:
        Feature weights, shape ``(n_features,)``.
    intercept_:
        Bias term (0.0 when ``fit_intercept`` is false).
    """

    def __init__(
        self,
        l2_penalty: float = 0.0,
        fit_intercept: bool = True,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
        solver: str = "normal",
        max_iterations: int = 50,
        tolerance: float = 1e-8,
    ) -> None:
        if solver not in ("normal", "lbfgs"):
            raise ValueError(f"solver must be 'normal' or 'lbfgs', got {solver!r}")
        if l2_penalty < 0:
            raise ValueError(f"l2_penalty must be non-negative, got {l2_penalty}")
        self.l2_penalty = l2_penalty
        self.fit_intercept = fit_intercept
        self.chunk_size = chunk_size
        self.solver = solver
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def fit(self, X: Any, y: Any) -> "LinearRegression":
        """Fit to a design matrix ``X`` and real-valued targets ``y``."""
        X = as_matrix(X)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValueError("y must be 1-D and match X's number of rows")
        if self.solver == "normal":
            self._fit_normal_equations(X, y)
        else:
            self._fit_lbfgs(X, y)
        return self

    def _fit_normal_equations(self, X: Any, y: np.ndarray) -> None:
        n_features = X.shape[1]
        dim = n_features + (1 if self.fit_intercept else 0)
        gram = np.zeros((dim, dim), dtype=np.float64)
        moment = np.zeros(dim, dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            if self.fit_intercept:
                chunk = np.hstack([chunk, np.ones((chunk.shape[0], 1))])
            gram += chunk.T @ chunk
            moment += chunk.T @ y[start:stop]
        n_samples = X.shape[0]
        if self.l2_penalty > 0:
            ridge = self.l2_penalty * n_samples * np.eye(dim)
            if self.fit_intercept:
                ridge[n_features, n_features] = 0.0
            gram = gram + ridge
        params = np.linalg.solve(gram, moment)
        self.coef_ = params[:n_features].copy()
        self.intercept_ = float(params[n_features]) if self.fit_intercept else 0.0

    def _fit_lbfgs(self, X: Any, y: np.ndarray) -> None:
        objective = LinearRegressionObjective(
            X,
            y,
            l2_penalty=self.l2_penalty,
            fit_intercept=self.fit_intercept,
            chunk_size=self.chunk_size,
        )
        optimizer = LBFGS(max_iterations=self.max_iterations, tolerance=self.tolerance)
        result = optimizer.minimize(objective)
        self.coef_ = result.params[: X.shape[1]].copy()
        self.intercept_ = float(result.params[X.shape[1]]) if self.fit_intercept else 0.0
        self.result_ = result

    def predict(self, X: Any) -> np.ndarray:
        """Predicted targets for every row of ``X``."""
        self._check_fitted("coef_")
        X = as_matrix(X)
        predictions = np.empty(X.shape[0], dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            predictions[start:stop] = chunk @ self.coef_ + self.intercept_
        return predictions

    def score(self, X: Any, y: Any) -> float:
        """Coefficient of determination R² of the predictions."""
        y = np.asarray(y, dtype=np.float64)
        predictions = self.predict(X)
        residual = float(np.sum((y - predictions) ** 2))
        total = float(np.sum((y - y.mean()) ** 2))
        if total == 0.0:
            # A constant target: perfect score if the residuals are (numerically) zero.
            return 1.0 if residual <= 1e-10 * max(1, y.size) else 0.0
        return 1.0 - residual / total
