"""Streaming (chunk-wise) objectives for the linear models.

Each objective scans the design matrix in contiguous row chunks and
accumulates loss and gradient, so peak memory is ``O(chunk_size × n_features)``
regardless of how large the (possibly memory-mapped) dataset is.  This is the
piece of code whose access pattern the virtual-memory simulator replays to
obtain paper-scale runtimes: one ``value_and_gradient`` call is one sequential
pass over the file.

All objectives also implement the mini-batch protocol required by
:class:`repro.ml.optim.sgd.SGD`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.ml.base import as_labels, as_matrix, iter_row_chunks
from repro.ml.optim.objective import DifferentiableObjective

DEFAULT_CHUNK_ROWS = 4096
"""Default number of rows per streaming chunk."""


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


def log_sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(z))``."""
    return -np.logaddexp(0.0, -z)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class _ChunkedObjective(DifferentiableObjective):
    """Shared plumbing: chunk iteration, intercept handling, L2 penalty."""

    def __init__(
        self,
        X: Any,
        y: np.ndarray,
        l2_penalty: float = 0.0,
        fit_intercept: bool = True,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        self.X = as_matrix(X)
        self.y = as_labels(y, self.X.shape[0]) if y is not None else None
        if l2_penalty < 0:
            raise ValueError(f"l2_penalty must be non-negative, got {l2_penalty}")
        self.l2_penalty = l2_penalty
        self.fit_intercept = fit_intercept
        self.chunk_size = chunk_size
        self.n_samples = int(self.X.shape[0])
        self.n_features = int(self.X.shape[1])

    def num_examples(self) -> int:
        return self.n_samples

    def _chunks(self):
        return iter_row_chunks(self.X, self.chunk_size)

    def _augment(self, chunk: np.ndarray) -> np.ndarray:
        """Append a column of ones when fitting an intercept."""
        chunk = np.asarray(chunk, dtype=np.float64)
        if not self.fit_intercept:
            return chunk
        ones = np.ones((chunk.shape[0], 1), dtype=np.float64)
        return np.hstack([chunk, ones])

    @property
    def _weight_dim(self) -> int:
        return self.n_features + (1 if self.fit_intercept else 0)

    def _penalty_and_grad(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        """L2 penalty and its gradient; the intercept is never penalised."""
        if self.l2_penalty == 0.0:
            return 0.0, np.zeros_like(params)
        weights = params.copy()
        if self.fit_intercept:
            if weights.ndim == 1:
                weights[self.n_features] = 0.0
            else:
                weights[self.n_features, :] = 0.0
        penalty = 0.5 * self.l2_penalty * float(np.sum(weights ** 2))
        return penalty, self.l2_penalty * weights


class LogisticRegressionObjective(_ChunkedObjective):
    """Negative mean log-likelihood of binary logistic regression.

    Parameters are a single vector of length ``n_features (+1)``; labels must
    be 0/1.
    """

    def __init__(
        self,
        X: Any,
        y: np.ndarray,
        l2_penalty: float = 0.0,
        fit_intercept: bool = True,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        super().__init__(X, y, l2_penalty, fit_intercept, chunk_size)
        labels = np.unique(np.asarray(self.y))
        if not np.all(np.isin(labels, (0, 1))):
            raise ValueError(f"binary logistic regression needs 0/1 labels, got {labels}")

    @property
    def num_parameters(self) -> int:
        return self._weight_dim

    def batch_value_and_gradient(
        self, params: np.ndarray, start: int, stop: int
    ) -> Tuple[float, np.ndarray]:
        chunk = self._augment(self.X[start:stop])
        targets = np.asarray(self.y[start:stop], dtype=np.float64)
        logits = chunk @ params
        probabilities = sigmoid(logits)
        # loss = -[y log p + (1-y) log(1-p)], summed over the batch
        loss = -float(np.sum(targets * log_sigmoid(logits) + (1 - targets) * log_sigmoid(-logits)))
        grad = chunk.T @ (probabilities - targets)
        return loss, grad

    def value_and_gradient(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        params = np.asarray(params, dtype=np.float64)
        total_loss = 0.0
        total_grad = np.zeros_like(params)
        for start, stop in self._chunks():
            loss, grad = self.batch_value_and_gradient(params, start, stop)
            total_loss += loss
            total_grad += grad
        penalty, penalty_grad = self._penalty_and_grad(params)
        value = total_loss / self.n_samples + penalty
        gradient = total_grad / self.n_samples + penalty_grad
        return value, gradient

    def predict_proba(self, params: np.ndarray, X: Any) -> np.ndarray:
        """Probability of class 1 for every row of ``X``."""
        X = as_matrix(X)
        probabilities = np.empty(X.shape[0], dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = self._augment(X[start:stop])
            probabilities[start:stop] = sigmoid(chunk @ params)
        return probabilities


class SoftmaxRegressionObjective(_ChunkedObjective):
    """Negative mean log-likelihood of multinomial (softmax) regression.

    Parameters are a flattened ``(n_features (+1)) × n_classes`` matrix.
    """

    def __init__(
        self,
        X: Any,
        y: np.ndarray,
        n_classes: Optional[int] = None,
        l2_penalty: float = 0.0,
        fit_intercept: bool = True,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        super().__init__(X, y, l2_penalty, fit_intercept, chunk_size)
        y_arr = np.asarray(self.y)
        inferred = int(y_arr.max()) + 1 if y_arr.size else 0
        self.n_classes = int(n_classes) if n_classes is not None else inferred
        if self.n_classes < 2:
            raise ValueError(f"need at least 2 classes, got {self.n_classes}")
        if y_arr.size and (y_arr.min() < 0 or y_arr.max() >= self.n_classes):
            raise ValueError("labels must lie in [0, n_classes)")

    @property
    def num_parameters(self) -> int:
        return self._weight_dim * self.n_classes

    def _as_matrix_params(self, params: np.ndarray) -> np.ndarray:
        return np.asarray(params, dtype=np.float64).reshape(self._weight_dim, self.n_classes)

    def batch_value_and_gradient(
        self, params: np.ndarray, start: int, stop: int
    ) -> Tuple[float, np.ndarray]:
        W = self._as_matrix_params(params)
        chunk = self._augment(self.X[start:stop])
        targets = np.asarray(self.y[start:stop])
        logits = chunk @ W
        log_probs = logits - logits.max(axis=1, keepdims=True)
        log_probs = log_probs - np.log(np.exp(log_probs).sum(axis=1, keepdims=True))
        loss = -float(np.sum(log_probs[np.arange(len(targets)), targets]))
        probabilities = np.exp(log_probs)
        probabilities[np.arange(len(targets)), targets] -= 1.0
        grad = chunk.T @ probabilities
        return loss, grad.reshape(-1)

    def value_and_gradient(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        params = np.asarray(params, dtype=np.float64)
        total_loss = 0.0
        total_grad = np.zeros(self.num_parameters)
        for start, stop in self._chunks():
            loss, grad = self.batch_value_and_gradient(params, start, stop)
            total_loss += loss
            total_grad += grad
        W = self._as_matrix_params(params)
        penalty, penalty_grad = self._penalty_and_grad(W)
        value = total_loss / self.n_samples + penalty
        gradient = total_grad / self.n_samples + penalty_grad.reshape(-1)
        return value, gradient

    def predict_proba(self, params: np.ndarray, X: Any) -> np.ndarray:
        """Class probabilities (n_rows × n_classes) for every row of ``X``."""
        W = self._as_matrix_params(params)
        X = as_matrix(X)
        probabilities = np.empty((X.shape[0], self.n_classes), dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = self._augment(X[start:stop])
            probabilities[start:stop] = softmax(chunk @ W)
        return probabilities


class LinearRegressionObjective(_ChunkedObjective):
    """Mean squared error of ordinary least squares (optionally ridge)."""

    def __init__(
        self,
        X: Any,
        y: np.ndarray,
        l2_penalty: float = 0.0,
        fit_intercept: bool = True,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        self.X = as_matrix(X)
        targets = np.asarray(y, dtype=np.float64)
        if targets.ndim != 1 or targets.shape[0] != self.X.shape[0]:
            raise ValueError("y must be a 1-D vector matching X's row count")
        if l2_penalty < 0:
            raise ValueError(f"l2_penalty must be non-negative, got {l2_penalty}")
        self.y = targets
        self.l2_penalty = l2_penalty
        self.fit_intercept = fit_intercept
        self.chunk_size = chunk_size
        self.n_samples = int(self.X.shape[0])
        self.n_features = int(self.X.shape[1])

    @property
    def num_parameters(self) -> int:
        return self._weight_dim

    def batch_value_and_gradient(
        self, params: np.ndarray, start: int, stop: int
    ) -> Tuple[float, np.ndarray]:
        chunk = self._augment(self.X[start:stop])
        targets = self.y[start:stop]
        residuals = chunk @ params - targets
        loss = 0.5 * float(residuals @ residuals)
        grad = chunk.T @ residuals
        return loss, grad

    def value_and_gradient(self, params: np.ndarray) -> Tuple[float, np.ndarray]:
        params = np.asarray(params, dtype=np.float64)
        total_loss = 0.0
        total_grad = np.zeros_like(params)
        for start, stop in self._chunks():
            loss, grad = self.batch_value_and_gradient(params, start, stop)
            total_loss += loss
            total_grad += grad
        penalty, penalty_grad = self._penalty_and_grad(params)
        value = total_loss / self.n_samples + penalty
        gradient = total_grad / self.n_samples + penalty_grad
        return value, gradient

    def predict(self, params: np.ndarray, X: Any) -> np.ndarray:
        """Predicted targets for every row of ``X``."""
        X = as_matrix(X)
        predictions = np.empty(X.shape[0], dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = self._augment(X[start:stop])
            predictions[start:stop] = chunk @ params
        return predictions
