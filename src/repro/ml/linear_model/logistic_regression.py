"""Binary logistic regression trained with L-BFGS (the paper's workload)."""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    StreamingPredictor,
    as_labels,
    as_matrix,
    iter_row_chunks,
)
from repro.ml.linear_model.objectives import DEFAULT_CHUNK_ROWS, LogisticRegressionObjective
from repro.ml.linear_model.sgd_streaming import LinearSGDStreamingMixin
from repro.ml.optim.lbfgs import LBFGS


class LogisticRegression(
    BaseEstimator, ClassifierMixin, StreamingPredictor, LinearSGDStreamingMixin
):
    """Binary logistic regression.

    The defaults mirror the M3 experiments: L-BFGS with 10 iterations.  The
    estimator only reads its design matrix through contiguous row chunks, so
    an in-memory array and a memory-mapped matrix produce identical models.

    Parameters
    ----------
    max_iterations:
        Number of L-BFGS iterations (epochs for the SGD solver).
    l2_penalty:
        L2 regularisation strength (0 disables it).
    fit_intercept:
        Whether to learn a bias term.
    chunk_size:
        Rows per streaming chunk when scanning the design matrix.
    solver:
        ``"lbfgs"`` (default, matching the paper) or ``"sgd"`` (the online
        learning extension).
    tolerance:
        Gradient tolerance for L-BFGS / loss tolerance for SGD.
    seed:
        Random seed for the SGD solver's shuffling.

    Attributes
    ----------
    coef_:
        Learned feature weights, shape ``(n_features,)``.
    intercept_:
        Learned bias (0.0 when ``fit_intercept`` is false).
    classes_:
        The two class labels, in sorted order.
    result_:
        The full :class:`~repro.ml.optim.result.OptimizationResult`.
    """

    def __init__(
        self,
        max_iterations: int = 10,
        l2_penalty: float = 0.0,
        fit_intercept: bool = True,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
        solver: str = "lbfgs",
        tolerance: float = 1e-6,
        seed: Optional[int] = None,
    ) -> None:
        if solver not in ("lbfgs", "sgd"):
            raise ValueError(f"solver must be 'lbfgs' or 'sgd', got {solver!r}")
        self.max_iterations = max_iterations
        self.l2_penalty = l2_penalty
        self.fit_intercept = fit_intercept
        self.chunk_size = chunk_size
        self.solver = solver
        self.tolerance = tolerance
        self.seed = seed

    # -- fitting -----------------------------------------------------------

    def fit(self, X: Any, y: Any) -> "LogisticRegression":
        """Fit the model to a design matrix ``X`` and 0/1 (or two-valued) labels ``y``."""
        X = as_matrix(X)
        y = as_labels(y, X.shape[0])
        classes = np.unique(y)
        if classes.shape[0] != 2:
            raise ValueError(
                f"binary logistic regression requires exactly 2 classes, got {classes.shape[0]}"
            )

        if self.solver == "sgd":
            # In-core SGD training is the same streaming loop the out-of-core
            # engine drives: one partial_fit per contiguous row chunk.
            def make_stream():
                for start, stop in iter_row_chunks(X, self.chunk_size):
                    yield X[start:stop], y[start:stop]

            return self.fit_streaming(make_stream, classes=classes, finalize=X)

        binary = (y == classes[1]).astype(np.int64)
        objective = LogisticRegressionObjective(
            X,
            binary,
            l2_penalty=self.l2_penalty,
            fit_intercept=self.fit_intercept,
            chunk_size=self.chunk_size,
        )
        optimizer = LBFGS(max_iterations=self.max_iterations, tolerance=self.tolerance)
        result = optimizer.minimize(objective)

        params = result.params
        self.classes_ = classes
        self.coef_ = params[: X.shape[1]].copy()
        self.intercept_ = float(params[X.shape[1]]) if self.fit_intercept else 0.0
        self.result_ = result
        self._objective_template = objective
        return self

    # -- streaming (partial_fit) -------------------------------------------
    # The loop itself lives in LinearSGDStreamingMixin; these hooks supply
    # the binary-logistic specifics.

    def _check_stream_classes(self, classes: np.ndarray) -> None:
        if classes.shape[0] != 2:
            raise ValueError(
                f"binary logistic regression requires exactly 2 classes, got {classes.shape[0]}"
            )

    def _stream_param_count(self, classes: np.ndarray, n_features: int) -> int:
        return n_features + (1 if self.fit_intercept else 0)

    def _stream_objective(self, X: Any, encoded: np.ndarray, classes: np.ndarray) -> Any:
        # ``encoded`` indexes into the sorted class pair, so it is already
        # the 0/1 vector the binary objective expects.
        return LogisticRegressionObjective(
            X,
            encoded.astype(np.int64),
            l2_penalty=self.l2_penalty,
            fit_intercept=self.fit_intercept,
            chunk_size=self.chunk_size,
        )

    def _publish_streaming_params(self) -> None:
        state = self._streaming_state
        self.classes_ = state.classes
        self.coef_ = state.params[: state.n_features].copy()
        self.intercept_ = float(state.params[state.n_features]) if self.fit_intercept else 0.0

    # -- inference -----------------------------------------------------------

    def _params(self) -> np.ndarray:
        self._check_fitted("coef_")
        if self.fit_intercept:
            return np.concatenate([self.coef_, [self.intercept_]])
        return self.coef_

    def decision_function(self, X: Any) -> np.ndarray:
        """Raw logits ``X @ coef_ + intercept_`` for every row."""
        X = as_matrix(X)
        params = self._params()
        scores = np.empty(X.shape[0], dtype=np.float64)
        from repro.ml.base import iter_row_chunks

        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            scores[start:stop] = chunk @ params[: X.shape[1]] + (
                params[X.shape[1]] if self.fit_intercept else 0.0
            )
        return scores

    def predict_proba(self, X: Any) -> np.ndarray:
        """Probability of each class, shape ``(n_rows, 2)``."""
        from repro.ml.linear_model.objectives import sigmoid

        positive = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X: Any) -> np.ndarray:
        """Predicted class label for every row."""
        self._check_fitted("classes_")
        positive = self.decision_function(X) >= 0.0
        return np.where(positive, self.classes_[1], self.classes_[0])

    def loss(self, X: Any, y: Any) -> float:
        """Mean negative log-likelihood of ``(X, y)`` under the fitted model."""
        X = as_matrix(X)
        y = as_labels(y, X.shape[0])
        binary = (y == self.classes_[1]).astype(np.int64)
        objective = LogisticRegressionObjective(
            X,
            binary,
            l2_penalty=0.0,
            fit_intercept=self.fit_intercept,
            chunk_size=self.chunk_size,
        )
        value, _ = objective.value_and_gradient(self._params())
        return float(value)
