"""Multinomial (softmax) logistic regression.

Infimnist has ten digit classes; the paper's "logistic regression" on it is
therefore naturally multinomial.  We provide both: the binary estimator in
:mod:`~repro.ml.linear_model.logistic_regression` (matching the minimal
workload the paper times) and this full multiclass version used by the
examples and accuracy tests.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    StreamingPredictor,
    as_labels,
    as_matrix,
    iter_row_chunks,
)
from repro.ml.linear_model.objectives import DEFAULT_CHUNK_ROWS, SoftmaxRegressionObjective
from repro.ml.linear_model.sgd_streaming import LinearSGDStreamingMixin
from repro.ml.optim.lbfgs import LBFGS


class SoftmaxRegression(
    BaseEstimator, ClassifierMixin, StreamingPredictor, LinearSGDStreamingMixin
):
    """Multinomial logistic regression trained with L-BFGS (or SGD).

    Attributes
    ----------
    coef_:
        Weight matrix of shape ``(n_features, n_classes)``.
    intercept_:
        Bias vector of shape ``(n_classes,)`` (zeros if no intercept).
    classes_:
        Sorted array of class labels.
    result_:
        The :class:`~repro.ml.optim.result.OptimizationResult` from training.
    """

    def __init__(
        self,
        max_iterations: int = 10,
        l2_penalty: float = 0.0,
        fit_intercept: bool = True,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
        solver: str = "lbfgs",
        tolerance: float = 1e-6,
        seed: Optional[int] = None,
    ) -> None:
        if solver not in ("lbfgs", "sgd"):
            raise ValueError(f"solver must be 'lbfgs' or 'sgd', got {solver!r}")
        self.max_iterations = max_iterations
        self.l2_penalty = l2_penalty
        self.fit_intercept = fit_intercept
        self.chunk_size = chunk_size
        self.solver = solver
        self.tolerance = tolerance
        self.seed = seed

    def fit(self, X: Any, y: Any) -> "SoftmaxRegression":
        """Fit the model; labels may be any hashable values (they are re-indexed)."""
        X = as_matrix(X)
        y = as_labels(y, X.shape[0])
        classes = np.unique(y)
        if classes.shape[0] < 2:
            raise ValueError("softmax regression requires at least 2 classes")

        if self.solver == "sgd":
            # One streaming code path for in-core and out-of-core training.
            def make_stream():
                for start, stop in iter_row_chunks(X, self.chunk_size):
                    yield X[start:stop], y[start:stop]

            return self.fit_streaming(make_stream, classes=classes, finalize=X)

        indexed = np.searchsorted(classes, y)
        objective = SoftmaxRegressionObjective(
            X,
            indexed,
            n_classes=classes.shape[0],
            l2_penalty=self.l2_penalty,
            fit_intercept=self.fit_intercept,
            chunk_size=self.chunk_size,
        )
        optimizer = LBFGS(max_iterations=self.max_iterations, tolerance=self.tolerance)
        result = optimizer.minimize(objective)

        weight_dim = X.shape[1] + (1 if self.fit_intercept else 0)
        W = result.params.reshape(weight_dim, classes.shape[0])
        self.classes_ = classes
        self.coef_ = W[: X.shape[1], :].copy()
        self.intercept_ = (
            W[X.shape[1], :].copy() if self.fit_intercept else np.zeros(classes.shape[0])
        )
        self.result_ = result
        return self

    # -- streaming (partial_fit) -------------------------------------------
    # The loop itself lives in LinearSGDStreamingMixin; these hooks supply
    # the multinomial specifics.

    def _check_stream_classes(self, classes: np.ndarray) -> None:
        if classes.shape[0] < 2:
            raise ValueError("softmax regression requires at least 2 classes")

    def _stream_param_count(self, classes: np.ndarray, n_features: int) -> int:
        weight_dim = n_features + (1 if self.fit_intercept else 0)
        return weight_dim * classes.shape[0]

    def _stream_objective(self, X: Any, encoded: np.ndarray, classes: np.ndarray) -> Any:
        return SoftmaxRegressionObjective(
            X,
            encoded,
            n_classes=classes.shape[0],
            l2_penalty=self.l2_penalty,
            fit_intercept=self.fit_intercept,
            chunk_size=self.chunk_size,
        )

    def _publish_streaming_params(self) -> None:
        state = self._streaming_state
        weight_dim = state.n_features + (1 if self.fit_intercept else 0)
        W = state.params.reshape(weight_dim, state.classes.shape[0])
        self.classes_ = state.classes
        self.coef_ = W[: state.n_features, :].copy()
        self.intercept_ = (
            W[state.n_features, :].copy()
            if self.fit_intercept
            else np.zeros(state.classes.shape[0])
        )

    def decision_function(self, X: Any) -> np.ndarray:
        """Per-class logits, shape ``(n_rows, n_classes)``."""
        self._check_fitted("coef_")
        X = as_matrix(X)
        from repro.ml.base import iter_row_chunks

        scores = np.empty((X.shape[0], self.classes_.shape[0]), dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            scores[start:stop] = chunk @ self.coef_ + self.intercept_
        return scores

    def predict_proba(self, X: Any) -> np.ndarray:
        """Class probabilities, shape ``(n_rows, n_classes)``."""
        from repro.ml.linear_model.objectives import softmax

        return softmax(self.decision_function(X))

    def predict(self, X: Any) -> np.ndarray:
        """Predicted class label for every row."""
        indices = np.argmax(self.decision_function(X), axis=1)
        return self.classes_[indices]

    def loss(self, X: Any, y: Any) -> float:
        """Mean cross-entropy of ``(X, y)`` under the fitted model."""
        self._check_fitted("coef_")
        X = as_matrix(X)
        y = as_labels(y, X.shape[0])
        index_of = {label: i for i, label in enumerate(self.classes_)}
        indexed = np.asarray([index_of[label] for label in y])
        probabilities = self.predict_proba(X)
        picked = probabilities[np.arange(len(indexed)), indexed]
        return float(-np.mean(np.log(np.clip(picked, 1e-300, None))))
