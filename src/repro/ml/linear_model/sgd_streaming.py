"""Shared chunk-streaming SGD machinery for the linear models.

:class:`LogisticRegression` and :class:`SoftmaxRegression` train their
``solver="sgd"`` path through the exact same loop: per-chunk mini-batch
updates with the :class:`~repro.ml.optim.sgd.SGD` learning-rate schedule,
epoch-loss convergence checks at pass boundaries, and an
:class:`~repro.ml.optim.result.OptimizationResult` assembled from the
accumulated state.  This module holds that machinery once; the concrete
models only supply their class validation, label encoding, objective and
fitted-attribute publishing.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.ml.base import StreamingEstimator, as_labels, as_matrix, iter_row_chunks
from repro.ml.optim.result import OptimizationResult
from repro.ml.optim.sgd import SGD


class SGDStreamState:
    """Mutable per-training state of a streaming SGD run."""

    def __init__(self, classes: np.ndarray, n_features: int, n_params: int) -> None:
        self.classes = classes
        self.n_features = n_features
        self.params = np.zeros(n_params, dtype=np.float64)
        self.step = 0
        self.evaluations = 0
        self.epoch_loss = 0.0
        self.epoch_rows = 0
        self.previous_mean_loss = np.inf
        self.history: List[float] = []
        self.converged = False


def encode_labels(classes: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Indices of ``y`` within sorted ``classes``; reject unseen labels."""
    indexed = np.searchsorted(classes, y)
    clipped = np.minimum(indexed, classes.shape[0] - 1)
    valid = classes[clipped] == y
    if not np.all(valid):
        unseen = np.unique(np.asarray(y)[~valid])
        raise ValueError(f"chunk contains labels outside classes: {unseen}")
    return indexed


class LinearSGDStreamingMixin(StreamingEstimator):
    """``partial_fit`` for linear models whose SGD path streams chunks.

    Subclasses provide four hooks:

    * ``_check_stream_classes(classes)`` — validate the declared class set;
    * ``_stream_param_count(classes, n_features)`` — parameter vector size;
    * ``_stream_objective(X, encoded, classes)`` — a chunk-local objective
      implementing ``batch_value_and_gradient``;
    * ``_publish_streaming_params()`` — refresh ``coef_``/``intercept_``/
      ``classes_`` from ``self._streaming_state``.
    """

    @property
    def streaming_passes(self) -> int:
        """SGD epochs one full training run makes."""
        return self.max_iterations

    def partial_fit(self, X: Any, y: Any = None, classes: Any = None) -> "LinearSGDStreamingMixin":
        """Consume one chunk of rows with mini-batch SGD updates.

        Requires ``solver="sgd"``.  ``classes`` must list every label the
        stream will ever produce; it is mandatory on the first call unless
        the first chunk already contains all of them.  Labels outside the
        declared classes are rejected, never silently remapped.
        """
        if self.solver != "sgd":
            raise ValueError(
                "partial_fit requires solver='sgd'; L-BFGS needs full-dataset "
                "gradients and cannot train incrementally"
            )
        X = as_matrix(X)
        y = as_labels(y, X.shape[0])
        state: Optional[SGDStreamState] = self._streaming_state
        if state is None:
            known = np.unique(np.asarray(classes)) if classes is not None else np.unique(y)
            self._check_stream_classes(known)
            state = self._streaming_state = SGDStreamState(
                known, X.shape[1], self._stream_param_count(known, X.shape[1])
            )
        elif X.shape[1] != state.n_features:
            raise ValueError(
                f"chunk has {X.shape[1]} features, expected {state.n_features}"
            )

        encoded = encode_labels(state.classes, y)
        objective = self._stream_objective(X, encoded, state.classes)
        schedule = SGD()  # default η₀ / decay — the schedule SGD.minimize uses
        params = state.params
        for start, stop in iter_row_chunks(X, self.chunk_size):
            loss, grad = objective.batch_value_and_gradient(params, start, stop)
            lr = schedule.learning_rate / (1.0 + schedule.decay * state.step)
            params = params - lr * grad
            state.step += 1
            state.evaluations += 1
            state.epoch_loss += loss
        state.epoch_rows += X.shape[0]
        state.params = params
        self._publish_streaming_params()
        return self

    def _end_streaming_pass(self, epoch: int) -> bool:
        state = self._streaming_state
        if state is None or state.epoch_rows == 0:
            return False
        mean_loss = state.epoch_loss / state.epoch_rows
        state.history.append(mean_loss)
        converged = state.previous_mean_loss - mean_loss < self.tolerance
        state.previous_mean_loss = mean_loss
        state.epoch_loss = 0.0
        state.epoch_rows = 0
        state.converged = converged
        return converged

    def finalize_streaming(self, X: Any) -> None:
        """Build ``result_`` from the accumulated streaming state.

        The reported value is the final epoch's mean loss (the streaming
        engine has no label handle for a full re-evaluation, and an extra
        full pass would defeat single-pass training).
        """
        state = self._streaming_state
        if state is None:
            return
        history = list(state.history)
        self.result_ = OptimizationResult(
            params=state.params.copy(),
            value=history[-1] if history else float("nan"),
            iterations=getattr(self, "_streaming_epochs_", len(history)),
            converged=state.converged,
            gradient_norm=float("nan"),
            history=history,
            function_evaluations=state.evaluations,
        )

    # -- subclass hooks ------------------------------------------------------

    def _check_stream_classes(self, classes: np.ndarray) -> None:
        raise NotImplementedError

    def _stream_param_count(self, classes: np.ndarray, n_features: int) -> int:
        raise NotImplementedError

    def _stream_objective(self, X: Any, encoded: np.ndarray, classes: np.ndarray) -> Any:
        raise NotImplementedError

    def _publish_streaming_params(self) -> None:
        raise NotImplementedError
