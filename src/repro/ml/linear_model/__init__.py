"""Linear models: logistic regression (the paper's classification workload),
multinomial softmax regression (needed because Infimnist has ten classes), and
ordinary linear regression.

All models share the same structure: a *streaming objective* (in
:mod:`repro.ml.linear_model.objectives`) that computes loss and gradient by
scanning the design matrix in row chunks, and an estimator class that wires
the objective to an optimiser (L-BFGS by default, matching the paper).
"""

from repro.ml.linear_model.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
    SoftmaxRegressionObjective,
)
from repro.ml.linear_model.logistic_regression import LogisticRegression
from repro.ml.linear_model.softmax_regression import SoftmaxRegression
from repro.ml.linear_model.linear_regression import LinearRegression

__all__ = [
    "LogisticRegressionObjective",
    "SoftmaxRegressionObjective",
    "LinearRegressionObjective",
    "LogisticRegression",
    "SoftmaxRegression",
    "LinearRegression",
]
