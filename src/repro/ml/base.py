"""Base classes and the matrix protocol used by every estimator.

Estimators follow a small, scikit-learn-like convention — ``fit`` returns
``self``, learned attributes end in an underscore — but are deliberately
written to touch their inputs only through contiguous row slicing so that
in-memory arrays and memory-mapped matrices are interchangeable (the M3
transparency property).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

import numpy as np


def as_matrix(X: Any) -> Any:
    """Validate that ``X`` looks like a 2-D matrix supporting row slicing.

    Accepts ``numpy.ndarray``, ``numpy.memmap``, M3 ``MmapMatrix`` or anything
    else exposing ``shape``, ``dtype`` and ``__getitem__``.  Returns the input
    unchanged (never copies) so memory-mapped data stays memory mapped.
    """
    if not hasattr(X, "shape") or not hasattr(X, "__getitem__"):
        X = np.asarray(X)
    if len(X.shape) != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {tuple(X.shape)}")
    return X


def as_labels(y: Any, n_rows: int) -> np.ndarray:
    """Validate a label vector and return it as a 1-D int64 array."""
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {y.shape}")
    if y.shape[0] != n_rows:
        raise ValueError(f"labels have {y.shape[0]} entries but X has {n_rows} rows")
    return y


def iter_row_chunks(X: Any, chunk_size: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` bounds covering the rows of ``X`` in order.

    This is the only access pattern estimators use, and it is deliberately a
    sequential scan — the pattern the OS read-ahead (and our simulator's
    read-ahead) optimises for.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    n_rows = X.shape[0]
    for start in range(0, n_rows, chunk_size):
        yield start, min(start + chunk_size, n_rows)


class BaseEstimator:
    """Base class providing parameter introspection and representation."""

    def get_params(self) -> Dict[str, Any]:
        """Return constructor parameters (attributes not ending in ``_``)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set constructor parameters by keyword; unknown names raise."""
        valid = self.get_params()
        for key, value in params.items():
            if key not in valid:
                raise ValueError(f"{type(self).__name__} has no parameter {key!r}")
            setattr(self, key, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )


class StreamingEstimator:
    """Mixin for estimators that train as chunk-streaming consumers.

    The contract has one required method and three optional hooks:

    ``partial_fit(X, y=None, classes=None)``
        Consume one row chunk, updating internal state (and the public fitted
        attributes, so a partially trained model is already usable).
        Classifiers need ``classes`` on (or before) the first call when the
        first chunk may not contain every class.
    ``streaming_passes``
        How many passes over the data one full training run makes
        (epochs for SGD-style models, 1 for single-pass accumulators).
    ``_end_streaming_pass(epoch)``
        Called after each pass; return ``True`` to stop early (convergence).
    ``finalize_streaming(X)``
        Called once after the last pass with a matrix-like handle to the full
        dataset, for summary attributes that need a final read pass
        (``inertia_``, ``result_``); must be cheap or a sequential scan.

    :meth:`fit_streaming` ties these together, and is the *single* training
    loop shared by in-core ``fit`` (which feeds it in-memory chunks) and the
    out-of-core streaming engine (which feeds it prefetched chunks from any
    storage backend) — the M3 transparency property, now for training loops.
    """

    _streaming_state: Any = None

    @property
    def streaming_passes(self) -> int:
        """Number of passes over the data a full training run makes."""
        return 1

    def partial_fit(self, X: Any, y: Any = None, classes: Any = None) -> "StreamingEstimator":
        """Consume one chunk of rows.  Subclasses must implement this."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support chunk-streaming training"
        )

    def fit_streaming(
        self,
        make_stream: Any,
        classes: Any = None,
        finalize: Any = None,
    ) -> "StreamingEstimator":
        """Train by looping ``partial_fit`` over a restartable chunk stream.

        Parameters
        ----------
        make_stream:
            Zero-argument callable returning a fresh iterable of
            ``(X_chunk, y_chunk)`` pairs — one call per pass.
        classes:
            Class labels forwarded to every ``partial_fit`` call.
        finalize:
            Optional matrix-like handle passed to :meth:`finalize_streaming`.
        """
        self._reset_streaming()
        epoch = 0
        for epoch in range(1, max(1, int(self.streaming_passes)) + 1):
            for chunk_X, chunk_y in make_stream():
                self.partial_fit(chunk_X, chunk_y, classes=classes)
            if self._end_streaming_pass(epoch):
                break
        self._streaming_epochs_ = epoch
        if finalize is not None:
            self.finalize_streaming(finalize)
        return self

    def _reset_streaming(self) -> None:
        """Forget accumulated streaming state so training starts fresh."""
        self._streaming_state = None

    def _end_streaming_pass(self, epoch: int) -> bool:
        """Pass-boundary hook; return ``True`` to stop early."""
        return False

    def finalize_streaming(self, X: Any) -> None:
        """Post-training hook for attributes needing a final look at ``X``."""
        return None


class StreamingPredictor:
    """Mixin for serving fitted estimators chunk by chunk.

    The training half of the streaming story is :class:`StreamingEstimator`
    (``partial_fit`` over a restartable chunk stream); this is the inference
    half.  Every estimator whose prediction methods are *row-wise* — the
    prediction for a row depends only on that row and the fitted parameters,
    which is true of all the estimators in :mod:`repro.ml` — gets streaming
    inference for free from the two defaults here:

    ``predict_chunk(X, method=...)``
        Predictions for one row block, by delegating to the estimator's own
        in-core method (``predict``, ``predict_proba``, …).  Because the
        methods are row-wise, per-chunk results are bit-identical to the
        corresponding rows of an in-core full-matrix call.
    ``predict_streaming(blocks, n_rows, method=..., out=...)``
        The default chunked implementation: loop ``predict_chunk`` over
        ``(start, stop, X)`` row blocks, scattering each result into a single
        output buffer preallocated from the first block's geometry — so
        serving a billion-row stream holds one chunk of input and one output
        vector, never the stitched matrix.

    Estimators with cheaper chunk-local paths (or non-row-wise methods) can
    override either hook; the streaming engine only relies on this protocol.
    """

    def predict_chunk(self, X: Any, method: str = "predict") -> np.ndarray:
        """Predictions for one row block via the in-core ``method``."""
        if method.startswith("_"):
            raise ValueError(f"invalid prediction method {method!r}")
        fn = getattr(self, method, None)
        if not callable(fn):
            raise TypeError(
                f"{type(self).__name__} has no {method}() method to stream"
            )
        return fn(X)

    def predict_streaming(
        self,
        blocks: Iterator[Tuple[int, int, Any]],
        n_rows: int,
        method: str = "predict",
        out: Any = None,
    ) -> np.ndarray:
        """Predict over ``(start, stop, X)`` blocks into one preallocated buffer.

        Parameters
        ----------
        blocks:
            Iterable of ``(start, stop, X)`` row blocks tiling ``[0, n_rows)``
            in any order (e.g. ``stream.blocks()`` of a chunk iterator).
        n_rows:
            Total rows the blocks cover; fixes the output buffer's length.
        method:
            Prediction method to drive per chunk (``predict``,
            ``predict_proba``, ``decision_function``, …).
        out:
            Optional preallocated output buffer of leading dimension
            ``n_rows``; allocated from the first block's result geometry when
            omitted.
        """
        n_rows = int(n_rows)
        filled = 0
        for start, stop, X in blocks:
            block = np.asarray(self.predict_chunk(X, method=method))
            if block.shape[0] != stop - start:
                raise ValueError(
                    f"{method} returned {block.shape[0]} rows for a "
                    f"{stop - start}-row chunk [{start}, {stop})"
                )
            if out is None:
                out = np.empty((n_rows, *block.shape[1:]), dtype=block.dtype)
            out[start:stop] = block
            filled += stop - start
        if filled != n_rows:
            raise ValueError(
                f"prediction stream covered {filled} of {n_rows} rows"
            )
        if out is None:  # n_rows == 0 and an empty stream
            return np.empty((0,), dtype=np.float64)
        return out

    def predict_streaming_parallel(
        self,
        chunks: Any,
        n_rows: int,
        method: str = "predict",
        workers: int = 2,
        out: Any = None,
    ) -> np.ndarray:
        """Data-parallel :meth:`predict_streaming`: fan chunks over a thread pool.

        Each chunk's ``predict_chunk`` runs on a pool worker that writes the
        result into its **disjoint** ``out[start:stop]`` slice of one
        preallocated buffer, so the output is bit-identical to the sequential
        path (the prediction methods are row-wise) no matter how chunks
        interleave.  The first chunk is served inline to fix the output
        geometry; in-flight work is bounded to ``2 × workers`` chunks so an
        upstream buffer pool is never drained faster than it refills.

        Parameters
        ----------
        chunks:
            Iterable of chunk-like objects with ``start``, ``stop`` and ``X``
            attributes — :class:`~repro.api.chunks.Chunk` instances from any
            chunk stream.  Chunks exposing ``release()`` (pooled buffers) are
            released as soon as their worker is done with them.
        n_rows:
            Total rows the chunks cover; fixes the output buffer's length.
        method:
            Prediction method to drive per chunk.
        workers:
            Worker threads; ``1`` degrades to the sequential loop's behaviour.
        out:
            Optional preallocated output of leading dimension ``n_rows``.
        """
        from collections import deque
        from concurrent.futures import ThreadPoolExecutor

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        n_rows = int(n_rows)
        filled = 0

        def serve(chunk: Any) -> int:
            try:
                block = np.asarray(self.predict_chunk(chunk.X, method=method))
                rows = chunk.stop - chunk.start
                if block.shape[0] != rows:
                    raise ValueError(
                        f"{method} returned {block.shape[0]} rows for a "
                        f"{rows}-row chunk [{chunk.start}, {chunk.stop})"
                    )
                out[chunk.start : chunk.stop] = block
                return rows
            finally:
                release = getattr(chunk, "release", None)
                if callable(release):
                    release()

        iterator = iter(chunks)
        first = next(iterator, None)
        if first is not None:
            # Inline: the first block's geometry sizes the shared buffer
            # before any worker writes into it.
            try:
                block = np.asarray(self.predict_chunk(first.X, method=method))
                if block.shape[0] != first.stop - first.start:
                    raise ValueError(
                        f"{method} returned {block.shape[0]} rows for a "
                        f"{first.stop - first.start}-row chunk "
                        f"[{first.start}, {first.stop})"
                    )
                if out is None:
                    out = np.empty((n_rows, *block.shape[1:]), dtype=block.dtype)
                out[first.start : first.stop] = block
                filled += first.stop - first.start
            finally:
                release = getattr(first, "release", None)
                if callable(release):
                    release()
            pending: "deque" = deque()
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="m3-predict"
            ) as pool:
                for chunk in iterator:
                    pending.append(pool.submit(serve, chunk))
                    while len(pending) >= 2 * workers:
                        filled += pending.popleft().result()
                while pending:
                    filled += pending.popleft().result()
        if filled != n_rows:
            raise ValueError(
                f"prediction stream covered {filled} of {n_rows} rows"
            )
        if out is None:  # n_rows == 0 and an empty stream
            return np.empty((0,), dtype=np.float64)
        return out


class ClassifierMixin:
    """Adds accuracy scoring to classifiers."""

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy of ``predict(X)`` against ``y``."""
        predictions = self.predict(X)  # type: ignore[attr-defined]
        y = np.asarray(y)
        return float(np.mean(predictions == y))


class ClustererMixin:
    """Adds inertia-based scoring to clusterers."""

    def score(self, X: Any) -> float:
        """Negative inertia (so that greater is better, as in scikit-learn)."""
        return -float(self.inertia(X))  # type: ignore[attr-defined]


class TransformerMixin:
    """Adds ``fit_transform`` convenience to transformers."""

    def fit_transform(self, X: Any, y: Any = None) -> np.ndarray:
        """Fit to ``X`` then transform it."""
        if y is None:
            return self.fit(X).transform(X)  # type: ignore[attr-defined]
        return self.fit(X, y).transform(X)  # type: ignore[attr-defined]
