"""Evaluation metrics for the classifiers and clusterers."""

from __future__ import annotations

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of predictions equal to the true labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


def log_loss(y_true: np.ndarray, probabilities: np.ndarray, eps: float = 1e-15) -> float:
    """Mean negative log-likelihood of binary predictions.

    ``probabilities`` is the predicted probability of class 1.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    probabilities = np.clip(np.asarray(probabilities, dtype=np.float64), eps, 1.0 - eps)
    if y_true.shape != probabilities.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {probabilities.shape}")
    return float(
        -np.mean(y_true * np.log(probabilities) + (1.0 - y_true) * np.log(1.0 - probabilities))
    )


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of squared residuals."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    residual = float(np.sum((y_true - y_pred) ** 2))
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0.0:
        # A constant target: perfect score if the residuals are (numerically) zero.
        return 1.0 if residual <= 1e-10 * max(1, y_true.size) else 0.0
    return 1.0 - residual / total


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Confusion matrix with rows = true classes, columns = predicted classes.

    Classes are the sorted union of labels appearing in either vector.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index_of = {label: i for i, label in enumerate(classes)}
    matrix = np.zeros((classes.shape[0], classes.shape[0]), dtype=np.int64)
    for true_label, pred_label in zip(y_true, y_pred):
        matrix[index_of[true_label], index_of[pred_label]] += 1
    return matrix


def inertia(X: np.ndarray, centroids: np.ndarray, assignments: np.ndarray) -> float:
    """Sum of squared distances of each row to its assigned centroid."""
    X = np.asarray(X, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    assignments = np.asarray(assignments)
    if assignments.shape[0] != X.shape[0]:
        raise ValueError("assignments must have one entry per row of X")
    diff = X - centroids[assignments]
    return float(np.einsum("ij,ij->", diff, diff))


def clustering_purity(y_true: np.ndarray, assignments: np.ndarray) -> float:
    """Purity of a clustering against ground-truth labels.

    For every cluster, count its most frequent true label; purity is the sum
    of those counts divided by the number of points.  1.0 means every cluster
    is label-pure.
    """
    y_true = np.asarray(y_true)
    assignments = np.asarray(assignments)
    if y_true.shape != assignments.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {assignments.shape}")
    if y_true.size == 0:
        raise ValueError("cannot compute purity of empty arrays")
    total = 0
    for cluster in np.unique(assignments):
        members = y_true[assignments == cluster]
        _, counts = np.unique(members, return_counts=True)
        total += int(counts.max())
    return total / y_true.size


def silhouette_score(X: np.ndarray, assignments: np.ndarray, sample_size: int = 500, seed: int = 0) -> float:
    """Mean silhouette coefficient, optionally on a random subsample.

    The silhouette of a point compares its mean intra-cluster distance ``a``
    to the smallest mean distance to another cluster ``b``:
    ``(b - a) / max(a, b)``.  Values near 1 mean well-separated clusters.
    """
    X = np.asarray(X, dtype=np.float64)
    assignments = np.asarray(assignments)
    if X.shape[0] != assignments.shape[0]:
        raise ValueError("assignments must have one entry per row of X")
    clusters = np.unique(assignments)
    if clusters.shape[0] < 2:
        raise ValueError("silhouette requires at least 2 clusters")

    n = X.shape[0]
    if n > sample_size:
        rng = np.random.default_rng(seed)
        indices = rng.choice(n, size=sample_size, replace=False)
    else:
        indices = np.arange(n)

    scores = []
    for i in indices:
        point = X[i]
        own = assignments[i]
        distances = np.linalg.norm(X - point, axis=1)
        own_mask = assignments == own
        if own_mask.sum() <= 1:
            scores.append(0.0)
            continue
        a = distances[own_mask].sum() / (own_mask.sum() - 1)
        b = np.inf
        for cluster in clusters:
            if cluster == own:
                continue
            mask = assignments == cluster
            b = min(b, float(distances[mask].mean()))
        scores.append((b - a) / max(a, b) if max(a, b) > 0 else 0.0)
    return float(np.mean(scores))
