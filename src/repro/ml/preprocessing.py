"""Chunk-aware preprocessing transformers.

Feature scaling on an out-of-core dataset must itself be out-of-core: the
scalers below learn their statistics in a single streaming pass, and can
either transform into a new array (small data) or *in place* through a
writable memory map (large data), which is how a real M3 pipeline would
standardise a 190 GB file without materialising a second copy.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin, as_matrix, iter_row_chunks


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardise features to zero mean and unit variance.

    Statistics are accumulated with a numerically stable single pass
    (sum and sum of squares in float64).

    Attributes
    ----------
    mean_:
        Per-feature means.
    scale_:
        Per-feature standard deviations (features with zero variance get a
        scale of 1.0 so they pass through unchanged).
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True, chunk_size: int = 4096) -> None:
        self.with_mean = with_mean
        self.with_std = with_std
        self.chunk_size = chunk_size

    def fit(self, X: Any, y: Any = None) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        X = as_matrix(X)
        n_rows, n_features = X.shape
        if n_rows == 0:
            raise ValueError("cannot fit a scaler on an empty matrix")
        total = np.zeros(n_features, dtype=np.float64)
        sq_total = np.zeros(n_features, dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            total += chunk.sum(axis=0)
            sq_total += (chunk ** 2).sum(axis=0)
        mean = total / n_rows
        variance = np.clip(sq_total / n_rows - mean ** 2, 0.0, None)
        scale = np.sqrt(variance)
        scale[scale == 0.0] = 1.0
        self.mean_ = mean
        self.scale_ = scale
        return self

    def transform(self, X: Any) -> np.ndarray:
        """Return a standardised copy of ``X``."""
        self._check_fitted("mean_")
        X = as_matrix(X)
        out = np.empty(X.shape, dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            if self.with_mean:
                chunk = chunk - self.mean_
            if self.with_std:
                chunk = chunk / self.scale_
            out[start:stop] = chunk
        return out

    def transform_inplace(self, X: Any) -> Any:
        """Standardise a *writable* matrix (e.g. a read-write memory map) in place."""
        self._check_fitted("mean_")
        X = as_matrix(X)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            if self.with_mean:
                chunk = chunk - self.mean_
            if self.with_std:
                chunk = chunk / self.scale_
            X[start:stop] = chunk
        return X

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo the standardisation."""
        self._check_fitted("mean_")
        X = np.asarray(X, dtype=np.float64)
        out = X
        if self.with_std:
            out = out * self.scale_
        if self.with_mean:
            out = out + self.mean_
        return out


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale features to a fixed range (default [0, 1]) in a streaming pass.

    Attributes
    ----------
    data_min_, data_max_:
        Per-feature minima and maxima seen during fitting.
    scale_, min_:
        The affine transform is ``X * scale_ + min_``.
    """

    def __init__(
        self,
        feature_range: "tuple[float, float]" = (0.0, 1.0),
        chunk_size: int = 4096,
    ) -> None:
        low, high = feature_range
        if high <= low:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = feature_range
        self.chunk_size = chunk_size

    def fit(self, X: Any, y: Any = None) -> "MinMaxScaler":
        """Learn per-feature minima and maxima."""
        X = as_matrix(X)
        if X.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty matrix")
        data_min: Optional[np.ndarray] = None
        data_max: Optional[np.ndarray] = None
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            chunk_min = chunk.min(axis=0)
            chunk_max = chunk.max(axis=0)
            data_min = chunk_min if data_min is None else np.minimum(data_min, chunk_min)
            data_max = chunk_max if data_max is None else np.maximum(data_max, chunk_max)
        assert data_min is not None and data_max is not None
        low, high = self.feature_range
        span = data_max - data_min
        with np.errstate(divide="ignore", over="ignore"):
            scale = (high - low) / span
        # A zero span (constant feature) or one so small the division
        # overflows cannot be rescaled meaningfully; pin such features to the
        # bottom of the feature range instead of producing inf/nan.
        degenerate = (span == 0.0) | ~np.isfinite(scale)
        scale[degenerate] = high - low
        self.data_min_ = data_min
        self.data_max_ = data_max
        self.scale_ = scale
        self.min_ = low - data_min * self.scale_
        return self

    def transform(self, X: Any) -> np.ndarray:
        """Return a scaled copy of ``X``."""
        self._check_fitted("scale_")
        X = as_matrix(X)
        out = np.empty(X.shape, dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            out[start:stop] = chunk * self.scale_ + self.min_
        return out

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo the scaling."""
        self._check_fitted("scale_")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.min_) / self.scale_
