"""Mini-batch k-means (Sculley 2010).

The online-learning counterpart of Lloyd's algorithm: centroids are updated
after every mini-batch with a per-centroid learning rate of ``1 / count``.
Included for the paper's ongoing-work direction ("online learning") and as an
ablation point — its access pattern is still sequential, but it converges in
far fewer passes, changing the compute/I-O balance that determines whether M3
is I/O bound.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClustererMixin,
    StreamingEstimator,
    StreamingPredictor,
    as_matrix,
    iter_row_chunks,
)
from repro.ml.cluster.init import kmeans_plus_plus_init, random_init


class _MiniBatchState:
    """Mutable centroid state shared by ``fit`` and ``partial_fit``."""

    def __init__(self, rng: np.random.Generator, centroids: np.ndarray) -> None:
        self.rng = rng
        self.centroids = centroids
        self.counts = np.zeros(centroids.shape[0], dtype=np.int64)


class MiniBatchKMeans(BaseEstimator, ClustererMixin, StreamingEstimator, StreamingPredictor):
    """Mini-batch k-means clustering.

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    max_epochs:
        Number of passes over the data.
    batch_size:
        Rows per mini-batch.
    init:
        ``"k-means++"`` or ``"random"``.
    seed:
        Seed for initialisation and (optional) batch shuffling.
    shuffle:
        Visit batches in random order each epoch.  Defaults to sequential,
        which is the memory-mapping-friendly pattern.

    Attributes
    ----------
    cluster_centers_:
        Final centroids.
    inertia_:
        Inertia over the full dataset measured after the final epoch.
    n_iter_:
        Number of epochs performed.
    """

    def __init__(
        self,
        n_clusters: int = 5,
        max_epochs: int = 10,
        batch_size: int = 1024,
        init: str = "k-means++",
        seed: Optional[int] = None,
        shuffle: bool = False,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        if max_epochs <= 0:
            raise ValueError(f"max_epochs must be positive, got {max_epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if init not in ("k-means++", "random"):
            raise ValueError(f"init must be 'k-means++' or 'random', got {init!r}")
        self.n_clusters = n_clusters
        self.max_epochs = max_epochs
        self.batch_size = batch_size
        self.init = init
        self.seed = seed
        self.shuffle = shuffle

    def fit(self, X: Any, y: Any = None) -> "MiniBatchKMeans":
        """Cluster the rows of ``X``; ``y`` is ignored."""
        X = as_matrix(X)
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds number of rows {X.shape[0]}"
            )
        # Full-dataset initialisation (chunk-streamed internally), then the
        # same per-batch update partial_fit uses.
        rng = np.random.default_rng(self.seed)
        self._streaming_state = _MiniBatchState(rng, self._init_centroids(X, rng))

        bounds = list(iter_row_chunks(X, self.batch_size))
        epoch = 0
        for epoch in range(1, self.max_epochs + 1):
            order = rng.permutation(len(bounds)) if self.shuffle else np.arange(len(bounds))
            for index in order:
                start, stop = bounds[int(index)]
                self._update_batch(np.asarray(X[start:stop], dtype=np.float64))

        self.cluster_centers_ = self._streaming_state.centroids
        self.n_iter_ = epoch
        self.inertia_ = self.inertia(X)
        return self

    # -- streaming (partial_fit) -------------------------------------------

    @property
    def streaming_passes(self) -> int:
        """Epochs one full training run makes."""
        return self.max_epochs

    def partial_fit(self, X: Any, y: Any = None, classes: Any = None) -> "MiniBatchKMeans":
        """Consume one mini-batch of rows (``y``/``classes`` are ignored).

        The first chunk seeds the centroids (k-means++ or random, per
        ``init``), so it must contain at least ``n_clusters`` rows; every
        subsequent chunk is one Sculley-style centroid update.
        """
        X = as_matrix(X)
        state = self._streaming_state
        if state is None:
            if X.shape[0] < self.n_clusters:
                raise ValueError(
                    f"the first chunk must hold at least n_clusters="
                    f"{self.n_clusters} rows to seed centroids, got {X.shape[0]}"
                )
            rng = np.random.default_rng(self.seed)
            state = self._streaming_state = _MiniBatchState(
                rng, self._init_centroids(X, rng)
            )
        self._update_batch(np.asarray(X[0 : X.shape[0]], dtype=np.float64))
        self.cluster_centers_ = state.centroids
        return self

    def _init_centroids(self, X: Any, rng: np.random.Generator) -> np.ndarray:
        if self.init == "k-means++":
            return kmeans_plus_plus_init(X, self.n_clusters, rng, self.batch_size)
        return random_init(X, self.n_clusters, rng, self.batch_size)

    def _update_batch(self, chunk: np.ndarray) -> None:
        """One mini-batch centroid update (Sculley 2010) on ``chunk``."""
        state = self._streaming_state
        centroids, counts = state.centroids, state.counts
        sq_dist = (
            np.einsum("ij,ij->i", chunk, chunk)[:, None]
            - 2.0 * (chunk @ centroids.T)
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
        )
        assignments = np.argmin(sq_dist, axis=1)
        for cluster in np.unique(assignments):
            members = chunk[assignments == cluster]
            for row in members:
                counts[cluster] += 1
                eta = 1.0 / counts[cluster]
                centroids[cluster] = (1.0 - eta) * centroids[cluster] + eta * row

    def finalize_streaming(self, X: Any) -> None:
        """Set the summary attributes that need one look at the full matrix."""
        state = self._streaming_state
        if state is None:
            return
        self.cluster_centers_ = state.centroids
        self.n_iter_ = getattr(self, "_streaming_epochs_", self.max_epochs)
        self.inertia_ = self.inertia(X)

    def predict(self, X: Any) -> np.ndarray:
        """Index of the nearest centroid for every row of ``X``."""
        self._check_fitted("cluster_centers_")
        X = as_matrix(X)
        centroids = self.cluster_centers_
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        assignments = np.empty(X.shape[0], dtype=np.int64)
        for start, stop in iter_row_chunks(X, self.batch_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            sq_dist = centroid_sq_norms[None, :] - 2.0 * (chunk @ centroids.T)
            assignments[start:stop] = np.argmin(sq_dist, axis=1)
        return assignments

    def inertia(self, X: Any) -> float:
        """Sum of squared distances of rows of ``X`` to their nearest centroid."""
        self._check_fitted("cluster_centers_")
        X = as_matrix(X)
        centroids = self.cluster_centers_
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        total = 0.0
        for start, stop in iter_row_chunks(X, self.batch_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            sq_dist = (
                np.einsum("ij,ij->i", chunk, chunk)[:, None]
                - 2.0 * (chunk @ centroids.T)
                + centroid_sq_norms[None, :]
            )
            total += float(np.sum(np.min(sq_dist, axis=1)))
        return total
