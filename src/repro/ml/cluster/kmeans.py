"""Lloyd's k-means, streaming over row chunks.

This is the paper's second workload: "k-means (10 iterations, 5 clusters)".
Each Lloyd iteration makes exactly one sequential pass over the (possibly
memory-mapped) design matrix: for every chunk, squared distances to all
centroids are computed, rows are assigned to the nearest centroid, and the
per-cluster sums/counts are accumulated; centroids are recomputed at the end
of the pass.  Peak memory is ``O(chunk_size × n_features + k × n_features)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClustererMixin,
    StreamingPredictor,
    as_matrix,
    iter_row_chunks,
)
from repro.ml.cluster.init import kmeans_plus_plus_init, random_init


class KMeans(BaseEstimator, ClustererMixin, StreamingPredictor):
    """K-means clustering with Lloyd's algorithm.

    Parameters
    ----------
    n_clusters:
        Number of clusters (the paper uses 5).
    max_iterations:
        Maximum Lloyd iterations (the paper uses 10).
    init:
        ``"k-means++"`` (default) or ``"random"``.
    tolerance:
        Convergence threshold on the Frobenius norm of the centroid update.
    chunk_size:
        Rows per streaming chunk.
    seed:
        Seed for centroid initialisation.
    callback:
        Optional ``callback(iteration, centroids, inertia)``.

    Attributes
    ----------
    cluster_centers_:
        Final centroids, shape ``(n_clusters, n_features)``.
    inertia_:
        Sum of squared distances of every training row to its centroid.
    n_iter_:
        Number of Lloyd iterations actually performed.
    converged_:
        Whether the tolerance was met before the iteration budget ran out.
    """

    def __init__(
        self,
        n_clusters: int = 5,
        max_iterations: int = 10,
        init: str = "k-means++",
        tolerance: float = 1e-4,
        chunk_size: int = 4096,
        seed: Optional[int] = None,
        callback: Optional[Callable[..., Any]] = None,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        if max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        if init not in ("k-means++", "random"):
            raise ValueError(f"init must be 'k-means++' or 'random', got {init!r}")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.init = init
        self.tolerance = tolerance
        self.chunk_size = chunk_size
        self.seed = seed
        self.callback = callback

    # -- fitting -----------------------------------------------------------

    def _initial_centroids(self, X: Any) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.init == "k-means++":
            return kmeans_plus_plus_init(X, self.n_clusters, rng, self.chunk_size)
        return random_init(X, self.n_clusters, rng, self.chunk_size)

    def fit(self, X: Any, y: Any = None) -> "KMeans":
        """Cluster the rows of ``X``; ``y`` is ignored (present for API symmetry)."""
        X = as_matrix(X)
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds number of rows {X.shape[0]}"
            )
        centroids = self._initial_centroids(X)
        inertia = np.inf
        converged = False
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            sums, counts, inertia = self._assignment_pass(X, centroids)
            new_centroids = self._recompute(centroids, sums, counts, X)
            shift = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            if self.callback is not None:
                self.callback(iteration, centroids, inertia)
            if shift <= self.tolerance:
                converged = True
                break

        self.cluster_centers_ = centroids
        self.inertia_ = float(inertia)
        self.n_iter_ = iteration
        self.converged_ = converged
        return self

    def _assignment_pass(self, X: Any, centroids: np.ndarray):
        """One streaming pass: accumulate per-cluster sums, counts and inertia."""
        k, n_features = centroids.shape
        sums = np.zeros((k, n_features), dtype=np.float64)
        counts = np.zeros(k, dtype=np.int64)
        inertia = 0.0
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            # ||x - c||^2 = ||x||^2 - 2 x·c + ||c||^2 ; ||x||^2 is constant per row
            cross = chunk @ centroids.T
            sq_dist = centroid_sq_norms[None, :] - 2.0 * cross
            assignments = np.argmin(sq_dist, axis=1)
            row_sq_norms = np.einsum("ij,ij->i", chunk, chunk)
            inertia += float(
                np.sum(row_sq_norms + sq_dist[np.arange(chunk.shape[0]), assignments])
            )
            for cluster in range(k):
                mask = assignments == cluster
                if np.any(mask):
                    sums[cluster] += chunk[mask].sum(axis=0)
                    counts[cluster] += int(mask.sum())
        return sums, counts, inertia

    def _recompute(
        self, centroids: np.ndarray, sums: np.ndarray, counts: np.ndarray, X: Any
    ) -> np.ndarray:
        """New centroids; empty clusters are re-seeded from random rows."""
        new_centroids = centroids.copy()
        rng = np.random.default_rng(self.seed)
        n_rows = X.shape[0]
        for cluster in range(self.n_clusters):
            if counts[cluster] > 0:
                new_centroids[cluster] = sums[cluster] / counts[cluster]
            else:
                row = int(rng.integers(0, n_rows))
                new_centroids[cluster] = np.asarray(X[row : row + 1], dtype=np.float64)[0]
        return new_centroids

    # -- inference -----------------------------------------------------------

    def predict(self, X: Any) -> np.ndarray:
        """Index of the nearest centroid for every row of ``X``."""
        self._check_fitted("cluster_centers_")
        X = as_matrix(X)
        centroids = self.cluster_centers_
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        assignments = np.empty(X.shape[0], dtype=np.int64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            sq_dist = centroid_sq_norms[None, :] - 2.0 * (chunk @ centroids.T)
            assignments[start:stop] = np.argmin(sq_dist, axis=1)
        return assignments

    def transform(self, X: Any) -> np.ndarray:
        """Distances from every row to every centroid, shape ``(n_rows, k)``."""
        self._check_fitted("cluster_centers_")
        X = as_matrix(X)
        centroids = self.cluster_centers_
        distances = np.empty((X.shape[0], self.n_clusters), dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            diff = chunk[:, None, :] - centroids[None, :, :]
            distances[start:stop] = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        return distances

    def inertia(self, X: Any) -> float:
        """Sum of squared distances of rows of ``X`` to their nearest centroid."""
        self._check_fitted("cluster_centers_")
        X = as_matrix(X)
        centroids = self.cluster_centers_
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        total = 0.0
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            sq_dist = (
                np.einsum("ij,ij->i", chunk, chunk)[:, None]
                - 2.0 * (chunk @ centroids.T)
                + centroid_sq_norms[None, :]
            )
            total += float(np.sum(np.min(sq_dist, axis=1)))
        return total
