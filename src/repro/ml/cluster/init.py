"""Centroid initialisation strategies for k-means.

Both strategies stream over the data in chunks, so they work unchanged on
memory-mapped matrices of any size.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import as_matrix, iter_row_chunks


def random_init(
    X: Any,
    n_clusters: int,
    rng: np.random.Generator,
    chunk_size: int = 4096,
) -> np.ndarray:
    """Pick ``n_clusters`` distinct rows uniformly at random as initial centroids."""
    X = as_matrix(X)
    n_rows = X.shape[0]
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    if n_clusters > n_rows:
        raise ValueError(f"cannot pick {n_clusters} centroids from {n_rows} rows")
    indices = np.sort(rng.choice(n_rows, size=n_clusters, replace=False))
    centroids = np.empty((n_clusters, X.shape[1]), dtype=np.float64)
    for i, row_index in enumerate(indices):
        centroids[i] = np.asarray(X[int(row_index) : int(row_index) + 1], dtype=np.float64)[0]
    return centroids


def kmeans_plus_plus_init(
    X: Any,
    n_clusters: int,
    rng: np.random.Generator,
    chunk_size: int = 4096,
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007), streaming over chunks.

    The first centroid is uniform; each subsequent centroid is sampled with
    probability proportional to the squared distance to the nearest centroid
    chosen so far.  Distances are maintained incrementally so each new
    centroid costs one additional pass over the data.
    """
    X = as_matrix(X)
    n_rows, n_features = X.shape
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    if n_clusters > n_rows:
        raise ValueError(f"cannot pick {n_clusters} centroids from {n_rows} rows")

    centroids = np.empty((n_clusters, n_features), dtype=np.float64)
    first = int(rng.integers(0, n_rows))
    centroids[0] = np.asarray(X[first : first + 1], dtype=np.float64)[0]

    # Squared distance of every row to its nearest chosen centroid.
    min_sq_dist = np.empty(n_rows, dtype=np.float64)
    for start, stop in iter_row_chunks(X, chunk_size):
        chunk = np.asarray(X[start:stop], dtype=np.float64)
        diff = chunk - centroids[0]
        min_sq_dist[start:stop] = np.einsum("ij,ij->i", diff, diff)

    for k in range(1, n_clusters):
        total = float(min_sq_dist.sum())
        if total <= 0.0:
            # All remaining points coincide with existing centroids; fall back
            # to uniform sampling for the rest.
            remaining = rng.choice(n_rows, size=n_clusters - k, replace=False)
            for j, row_index in enumerate(remaining):
                centroids[k + j] = np.asarray(
                    X[int(row_index) : int(row_index) + 1], dtype=np.float64
                )[0]
            return centroids
        probabilities = min_sq_dist / total
        chosen = int(rng.choice(n_rows, p=probabilities))
        centroids[k] = np.asarray(X[chosen : chosen + 1], dtype=np.float64)[0]

        for start, stop in iter_row_chunks(X, chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            diff = chunk - centroids[k]
            sq_dist = np.einsum("ij,ij->i", diff, diff)
            np.minimum(min_sq_dist[start:stop], sq_dist, out=min_sq_dist[start:stop])

    return centroids
