"""Clustering: Lloyd's k-means (the paper's second workload), mini-batch
k-means (the online-learning extension), and k-means++ initialisation.
"""

from repro.ml.cluster.init import kmeans_plus_plus_init, random_init
from repro.ml.cluster.kmeans import KMeans
from repro.ml.cluster.minibatch_kmeans import MiniBatchKMeans

__all__ = ["KMeans", "MiniBatchKMeans", "kmeans_plus_plus_init", "random_init"]
