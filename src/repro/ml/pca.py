"""Principal component analysis via a streaming covariance accumulation.

Another algorithm for the paper's "wide range of machine learning" extension.
The covariance matrix ``XᵀX / n`` is accumulated chunk by chunk (one sequential
pass) and eigendecomposed in memory — valid whenever ``n_features²`` fits in
RAM, which holds for Infimnist's 784 features even at 190 GB of rows.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin, as_matrix, iter_row_chunks


class PCA(BaseEstimator, TransformerMixin):
    """Principal component analysis.

    Parameters
    ----------
    n_components:
        Number of components to keep; ``None`` keeps all.
    chunk_size:
        Rows per streaming chunk.

    Attributes
    ----------
    mean_:
        Per-feature mean of the training data.
    components_:
        Principal axes, shape ``(n_components, n_features)``, ordered by
        decreasing explained variance.
    explained_variance_:
        Variance explained by each component.
    explained_variance_ratio_:
        Fraction of total variance explained by each component.
    """

    def __init__(self, n_components: Optional[int] = None, chunk_size: int = 4096) -> None:
        if n_components is not None and n_components <= 0:
            raise ValueError(f"n_components must be positive, got {n_components}")
        self.n_components = n_components
        self.chunk_size = chunk_size

    def fit(self, X: Any, y: Any = None) -> "PCA":
        """Fit the principal axes with two streaming passes (mean, then covariance)."""
        X = as_matrix(X)
        n_rows, n_features = X.shape
        if n_rows < 2:
            raise ValueError("PCA needs at least 2 rows")

        # Pass 1: feature means.
        total = np.zeros(n_features, dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            total += np.asarray(X[start:stop], dtype=np.float64).sum(axis=0)
        mean = total / n_rows

        # Pass 2: covariance of the centred data.
        cov = np.zeros((n_features, n_features), dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            centred = np.asarray(X[start:stop], dtype=np.float64) - mean
            cov += centred.T @ centred
        cov /= n_rows - 1

        eigenvalues, eigenvectors = np.linalg.eigh(cov)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]

        k = self.n_components or n_features
        k = min(k, n_features)
        total_variance = float(eigenvalues.sum())

        self.mean_ = mean
        self.components_ = eigenvectors[:, :k].T.copy()
        self.explained_variance_ = eigenvalues[:k].copy()
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total_variance
            if total_variance > 0
            else np.zeros(k)
        )
        return self

    def transform(self, X: Any) -> np.ndarray:
        """Project rows of ``X`` onto the principal axes."""
        self._check_fitted("components_")
        X = as_matrix(X)
        projected = np.empty((X.shape[0], self.components_.shape[0]), dtype=np.float64)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            centred = np.asarray(X[start:stop], dtype=np.float64) - self.mean_
            projected[start:stop] = centred @ self.components_.T
        return projected

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Map projected points back to the original feature space."""
        self._check_fitted("components_")
        Z = np.asarray(Z, dtype=np.float64)
        return Z @ self.components_ + self.mean_
