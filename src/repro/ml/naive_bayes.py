"""Gaussian naive Bayes.

One of the extra algorithms for the paper's ongoing-work direction of applying
M3 to "a wide range of machine learning ... algorithms".  Training is a single
streaming pass that accumulates per-class counts, sums and sums of squares —
a textbook example of an algorithm whose out-of-core behaviour is ideal for
memory mapping (purely sequential, single pass).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    StreamingEstimator,
    StreamingPredictor,
    as_labels,
    as_matrix,
    iter_row_chunks,
)


class _GaussianStats:
    """Per-class count/sum/sum-of-squares accumulators (order-independent)."""

    def __init__(self, classes: np.ndarray, n_features: int) -> None:
        self.classes = classes
        self.n_features = n_features
        self.counts = np.zeros(classes.shape[0], dtype=np.int64)
        self.sums = np.zeros((classes.shape[0], n_features), dtype=np.float64)
        self.sq_sums = np.zeros((classes.shape[0], n_features), dtype=np.float64)


class GaussianNaiveBayes(BaseEstimator, ClassifierMixin, StreamingEstimator, StreamingPredictor):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to all variances for
        numerical stability (same semantics as scikit-learn).
    chunk_size:
        Rows per streaming chunk.

    Attributes
    ----------
    classes_:
        Sorted class labels.
    class_prior_:
        Empirical class priors.
    theta_:
        Per-class feature means, shape ``(n_classes, n_features)``.
    var_:
        Per-class feature variances, shape ``(n_classes, n_features)``.
    """

    def __init__(self, var_smoothing: float = 1e-9, chunk_size: int = 4096) -> None:
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be non-negative, got {var_smoothing}")
        self.var_smoothing = var_smoothing
        self.chunk_size = chunk_size

    def fit(self, X: Any, y: Any) -> "GaussianNaiveBayes":
        """Fit class-conditional Gaussians in one streaming pass.

        This is the same loop the streaming engine drives — one
        ``partial_fit`` per contiguous row chunk; the accumulators are
        associative, so chunked and one-shot training are *exactly* equal.
        """
        X = as_matrix(X)
        y = as_labels(y, X.shape[0])
        classes = np.unique(y)

        def make_stream():
            for start, stop in iter_row_chunks(X, self.chunk_size):
                yield X[start:stop], y[start:stop]

        return self.fit_streaming(make_stream, classes=classes, finalize=X)

    # -- streaming (partial_fit) -------------------------------------------

    def partial_fit(self, X: Any, y: Any = None, classes: Any = None) -> "GaussianNaiveBayes":
        """Fold one chunk of rows into the per-class accumulators.

        ``classes`` must list every label the stream will ever produce; it is
        mandatory on the first call unless the first chunk contains all of
        them.  Fitted attributes are refreshed after every chunk (once each
        declared class has been seen), so the model is usable mid-stream.
        """
        X = as_matrix(X)
        y = as_labels(y, X.shape[0])
        state = self._streaming_state
        if state is None:
            known = np.unique(np.asarray(classes)) if classes is not None else np.unique(y)
            state = self._streaming_state = _GaussianStats(known, X.shape[1])
        elif X.shape[1] != state.n_features:
            raise ValueError(f"chunk has {X.shape[1]} features, expected {state.n_features}")

        chunk = np.asarray(X[0 : X.shape[0]], dtype=np.float64)
        for label in np.unique(y):
            index = int(np.searchsorted(state.classes, label))
            if index >= state.classes.shape[0] or state.classes[index] != label:
                raise ValueError(f"chunk contains label {label!r} outside classes")
            members = chunk[y == label]
            state.counts[index] += members.shape[0]
            state.sums[index] += members.sum(axis=0)
            state.sq_sums[index] += (members ** 2).sum(axis=0)

        if np.all(state.counts > 0):
            self._publish_streaming_params()
        return self

    def _publish_streaming_params(self) -> None:
        state = self._streaming_state
        counts = state.counts
        theta = state.sums / counts[:, None]
        var = state.sq_sums / counts[:, None] - theta ** 2
        var = np.clip(var, 0.0, None)
        epsilon = self.var_smoothing * float(var.max()) if var.max() > 0 else self.var_smoothing
        var = var + max(epsilon, 1e-12)

        self.classes_ = state.classes
        self.class_prior_ = counts / counts.sum()
        self.theta_ = theta
        self.var_ = var

    def finalize_streaming(self, X: Any) -> None:
        """Validate that every declared class was actually observed."""
        state = self._streaming_state
        if state is None or np.any(state.counts == 0):
            raise ValueError("every class must have at least one training example")

    def _joint_log_likelihood(self, X: Any) -> np.ndarray:
        self._check_fitted("theta_")
        X = as_matrix(X)
        n_classes = self.classes_.shape[0]
        scores = np.empty((X.shape[0], n_classes), dtype=np.float64)
        log_prior = np.log(self.class_prior_)
        log_norm = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_), axis=1)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            for index in range(n_classes):
                diff = chunk - self.theta_[index]
                quad = -0.5 * np.sum(diff ** 2 / self.var_[index], axis=1)
                scores[start:stop, index] = log_prior[index] + log_norm[index] + quad
        return scores

    def predict_log_proba(self, X: Any) -> np.ndarray:
        """Log posterior class probabilities."""
        joint = self._joint_log_likelihood(X)
        normaliser = np.logaddexp.reduce(joint, axis=1, keepdims=True)
        return joint - normaliser

    def predict_proba(self, X: Any) -> np.ndarray:
        """Posterior class probabilities."""
        return np.exp(self.predict_log_proba(X))

    def predict(self, X: Any) -> np.ndarray:
        """Most probable class for every row of ``X``."""
        joint = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(joint, axis=1)]
