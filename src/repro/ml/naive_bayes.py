"""Gaussian naive Bayes.

One of the extra algorithms for the paper's ongoing-work direction of applying
M3 to "a wide range of machine learning ... algorithms".  Training is a single
streaming pass that accumulates per-class counts, sums and sums of squares —
a textbook example of an algorithm whose out-of-core behaviour is ideal for
memory mapping (purely sequential, single pass).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, as_labels, as_matrix, iter_row_chunks


class GaussianNaiveBayes(BaseEstimator, ClassifierMixin):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to all variances for
        numerical stability (same semantics as scikit-learn).
    chunk_size:
        Rows per streaming chunk.

    Attributes
    ----------
    classes_:
        Sorted class labels.
    class_prior_:
        Empirical class priors.
    theta_:
        Per-class feature means, shape ``(n_classes, n_features)``.
    var_:
        Per-class feature variances, shape ``(n_classes, n_features)``.
    """

    def __init__(self, var_smoothing: float = 1e-9, chunk_size: int = 4096) -> None:
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be non-negative, got {var_smoothing}")
        self.var_smoothing = var_smoothing
        self.chunk_size = chunk_size

    def fit(self, X: Any, y: Any) -> "GaussianNaiveBayes":
        """Fit class-conditional Gaussians in one streaming pass."""
        X = as_matrix(X)
        y = as_labels(y, X.shape[0])
        classes = np.unique(y)
        n_classes = classes.shape[0]
        n_features = X.shape[1]
        index_of = {label: i for i, label in enumerate(classes)}

        counts = np.zeros(n_classes, dtype=np.int64)
        sums = np.zeros((n_classes, n_features), dtype=np.float64)
        sq_sums = np.zeros((n_classes, n_features), dtype=np.float64)

        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            chunk_labels = y[start:stop]
            for label in np.unique(chunk_labels):
                mask = chunk_labels == label
                index = index_of[label]
                members = chunk[mask]
                counts[index] += members.shape[0]
                sums[index] += members.sum(axis=0)
                sq_sums[index] += (members ** 2).sum(axis=0)

        if np.any(counts == 0):
            raise ValueError("every class must have at least one training example")

        theta = sums / counts[:, None]
        var = sq_sums / counts[:, None] - theta ** 2
        var = np.clip(var, 0.0, None)
        epsilon = self.var_smoothing * float(var.max()) if var.max() > 0 else self.var_smoothing
        var = var + max(epsilon, 1e-12)

        self.classes_ = classes
        self.class_prior_ = counts / counts.sum()
        self.theta_ = theta
        self.var_ = var
        return self

    def _joint_log_likelihood(self, X: Any) -> np.ndarray:
        self._check_fitted("theta_")
        X = as_matrix(X)
        n_classes = self.classes_.shape[0]
        scores = np.empty((X.shape[0], n_classes), dtype=np.float64)
        log_prior = np.log(self.class_prior_)
        log_norm = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_), axis=1)
        for start, stop in iter_row_chunks(X, self.chunk_size):
            chunk = np.asarray(X[start:stop], dtype=np.float64)
            for index in range(n_classes):
                diff = chunk - self.theta_[index]
                quad = -0.5 * np.sum(diff ** 2 / self.var_[index], axis=1)
                scores[start:stop, index] = log_prior[index] + log_norm[index] + quad
        return scores

    def predict_log_proba(self, X: Any) -> np.ndarray:
        """Log posterior class probabilities."""
        joint = self._joint_log_likelihood(X)
        normaliser = np.logaddexp.reduce(joint, axis=1, keepdims=True)
        return joint - normaliser

    def predict_proba(self, X: Any) -> np.ndarray:
        """Posterior class probabilities."""
        return np.exp(self.predict_log_proba(X))

    def predict(self, X: Any) -> np.ndarray:
        """Most probable class for every row of ``X``."""
        joint = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(joint, axis=1)]
