"""Saving and loading fitted estimators as plain JSON.

The serving path (``m3 train --save-model`` → ``m3 predict --model`` /
``m3 serve``) needs fitted models to survive a process boundary.  Every
estimator in :mod:`repro.ml` — the predictors and the ``PCA`` /
preprocessing transformers alike — is fully described by its constructor
parameters
(:meth:`~repro.ml.base.BaseEstimator.get_params`) plus its fitted attributes
(public names ending in ``_`` holding arrays or scalars), so models round-trip
through a small JSON document — no pickle, no code execution on load, and the
files are diffable and portable across machines.

Derived attributes that are not plain data (``result_``, cached objective
templates, streaming state) are recomputable from training and are *not*
persisted; a loaded model predicts identically but does not carry its
optimiser telemetry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Type, Union

import numpy as np

FORMAT_NAME = "m3-model"
FORMAT_VERSION = 1


def _model_registry() -> Dict[str, Type]:
    """Estimator classes a saved model may name, keyed by class name.

    Imported lazily so ``persistence`` stays importable from ``repro.ml``'s
    own ``__init__`` without cycles.
    """
    from repro.ml.cluster.kmeans import KMeans
    from repro.ml.cluster.minibatch_kmeans import MiniBatchKMeans
    from repro.ml.linear_model.linear_regression import LinearRegression
    from repro.ml.linear_model.logistic_regression import LogisticRegression
    from repro.ml.linear_model.softmax_regression import SoftmaxRegression
    from repro.ml.naive_bayes import GaussianNaiveBayes
    from repro.ml.pca import PCA
    from repro.ml.preprocessing import MinMaxScaler, StandardScaler

    return {
        cls.__name__: cls
        for cls in (
            LogisticRegression,
            SoftmaxRegression,
            LinearRegression,
            KMeans,
            MiniBatchKMeans,
            GaussianNaiveBayes,
            PCA,
            StandardScaler,
            MinMaxScaler,
        )
    }


def _encode_value(value: Any) -> Any:
    """JSON-encode one parameter or fitted attribute; None for unsupported."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": value.tolist(),
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (tuple, list)):
        # Sequence parameters (e.g. MinMaxScaler's feature_range) round-trip
        # element-wise; tuples are tagged so load restores the exact type a
        # constructor expects.  One unencodable element skips the whole value.
        items = [_encode_value(item) for item in value]
        if any(isinstance(item, dict) and "__skipped__" in item for item in items):
            return {"__skipped__": type(value).__name__}
        return {"__tuple__": items} if isinstance(value, tuple) else items
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return {"__skipped__": type(value).__name__}


def _is_fitted_attribute(key: str) -> bool:
    """Whether ``key`` names a public fitted attribute (``coef_`` style)."""
    return key.endswith("_") and not key.startswith("_")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__ndarray__" in value:
        array = np.array(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
        return array.reshape([int(n) for n in value["shape"]])
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_value(item) for item in value["__tuple__"])
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def save_model(path: Union[str, Path], model: Any) -> Path:
    """Write ``model`` (params + fitted attributes) to ``path`` as JSON.

    Non-data attributes (optimisation results, cached objectives) are
    recorded by name under ``"skipped"`` but their values are dropped.
    """
    params: Dict[str, Any] = {}
    skipped = []
    for key, value in model.get_params().items():
        encoded = _encode_value(value)
        if isinstance(encoded, dict) and "__skipped__" in encoded:
            # An unencodable constructor param (e.g. a callback): omit it so
            # the loaded model falls back to the constructor default, and
            # record the omission instead of smuggling a marker dict through.
            skipped.append(key)
        else:
            params[key] = encoded
    attributes: Dict[str, Any] = {}
    for key, value in vars(model).items():
        if not _is_fitted_attribute(key):
            continue
        encoded = _encode_value(value)
        if isinstance(encoded, dict) and "__skipped__" in encoded:
            skipped.append(key)
        else:
            attributes[key] = encoded
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "class": type(model).__name__,
        "params": params,
        "attributes": attributes,
        "skipped": sorted(skipped),
    }
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def load_model(path: Union[str, Path]) -> Any:
    """Rebuild the estimator saved at ``path`` by :func:`save_model`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_NAME:
        raise ValueError(f"{path} is not a saved {FORMAT_NAME} file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported {FORMAT_NAME} version {payload.get('version')!r}"
        )
    registry = _model_registry()
    class_name = payload.get("class")
    if class_name not in registry:
        known = ", ".join(sorted(registry))
        raise ValueError(
            f"saved model class {class_name!r} is not a known estimator "
            f"(known: {known})"
        )
    params_payload = payload.get("params")
    attributes_payload = payload.get("attributes")
    if not isinstance(params_payload, dict) or not isinstance(attributes_payload, dict):
        raise ValueError(f"{path} is missing its params/attributes sections")
    params = {key: _decode_value(value) for key, value in params_payload.items()}
    model = registry[class_name](**params)
    for key, value in attributes_payload.items():
        # Only fitted-attribute names may be set: a hand-edited file must not
        # be able to shadow methods or private state on the loaded estimator.
        if not _is_fitted_attribute(key):
            raise ValueError(f"invalid fitted attribute name {key!r} in {path}")
        setattr(model, key, _decode_value(value))
    return model
