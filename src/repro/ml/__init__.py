"""An mlpack-style machine learning library, written to be mapping-agnostic.

The paper's claim is that *existing* machine learning implementations work
unchanged on memory-mapped data.  To demonstrate that, every estimator in this
package is written against the plain NumPy slicing protocol: it only ever asks
its input matrix for contiguous row chunks (``X[start:stop]``) and never cares
whether the object is an in-memory ``ndarray``, a ``numpy.memmap`` or an M3
:class:`~repro.core.mmap_matrix.MmapMatrix`.  The test suite asserts that the
fitted models are bit-for-bit identical across all three.

Contents:

* :mod:`repro.ml.optim` — L-BFGS (the optimiser used in the paper), plain
  gradient descent, SGD, and backtracking/Wolfe line searches.
* :mod:`repro.ml.linear_model` — binary logistic regression, multinomial
  (softmax) regression, and linear regression.
* :mod:`repro.ml.cluster` — Lloyd's k-means, mini-batch k-means, k-means++.
* :mod:`repro.ml.naive_bayes`, :mod:`repro.ml.pca` — additional algorithms for
  the paper's "wide range of machine learning" ongoing-work direction.
* :mod:`repro.ml.metrics`, :mod:`repro.ml.preprocessing` — evaluation metrics
  and chunk-aware feature scaling.
"""

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    ClustererMixin,
    StreamingEstimator,
    StreamingPredictor,
    TransformerMixin,
)
from repro.ml.persistence import load_model, save_model
from repro.ml.optim import (
    GradientDescent,
    LBFGS,
    OptimizationResult,
    SGD,
    DifferentiableObjective,
)
from repro.ml.linear_model import LinearRegression, LogisticRegression, SoftmaxRegression
from repro.ml.cluster import KMeans, MiniBatchKMeans, kmeans_plus_plus_init
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.pca import PCA
from repro.ml import metrics, preprocessing

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "ClustererMixin",
    "StreamingEstimator",
    "StreamingPredictor",
    "TransformerMixin",
    "save_model",
    "load_model",
    "LBFGS",
    "GradientDescent",
    "SGD",
    "OptimizationResult",
    "DifferentiableObjective",
    "LogisticRegression",
    "SoftmaxRegression",
    "LinearRegression",
    "KMeans",
    "MiniBatchKMeans",
    "kmeans_plus_plus_init",
    "GaussianNaiveBayes",
    "PCA",
    "metrics",
    "preprocessing",
]
