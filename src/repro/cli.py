"""Command-line interface.

``python -m repro`` (or the installed ``m3`` script) exposes the main
reproduction entry points:

* ``m3 generate`` — materialise an Infimnist-style dataset file.
* ``m3 info`` — describe a dataset (rows, columns, dtype, backend, shards;
  v2 datasets additionally report codec, block geometry and per-shard
  compression ratios).
* ``m3 convert`` — re-encode a dataset between the raw v1 format and the
  compressed blocked v2 shard format (``--codec``, ``--block-rows``,
  ``--dtype``, ``--layout``); ``--auto-block`` asks the virtual-memory
  locality advisor to pick the block size and layout for a declared scan
  workload (``--scan-columns``, ``--cache-mb``).
* ``m3 train`` — train logistic regression or k-means on a dataset through
  the unified :class:`~repro.api.Session` API; ``--engine simulated``
  additionally replays the recorded access trace through the paper-scale
  virtual-memory simulator; ``--engine streaming [--chunk-rows N]`` trains
  through the chunk pipeline (``partial_fit`` over prefetched shard-aligned
  row blocks) and reports per-chunk I/O-wait vs compute time;
  ``--io-workers N`` switches to the multi-reader parallel pipeline
  (``0`` = one reader per storage device) with OS readahead hints;
  ``--save-model PATH`` persists the fitted model as JSON for serving.
* ``m3 predict`` — serve a saved model's predictions over a dataset;
  ``--engine streaming`` predicts chunk by chunk through the prefetching
  pipeline (bounded memory on sharded datasets), ``--io-workers`` /
  ``--compute-workers`` parallelise the read and inference sides of the
  pipeline, ``--proba`` emits class probabilities, ``--output`` writes the
  predictions as ``.npy``; ``--server`` routes every row as an individual
  request through the micro-batching model server instead of the scan path
  (same predictions, request-level accounting).
* ``m3 serve`` — the long-lived serving daemon: load a saved model into the
  hot-model registry and answer JSONL predict requests from stdin (or
  ``--input``), coalescing concurrent requests into micro-batches
  (``--max-batch``, ``--max-delay-ms``, ``--workers``); responses carry the
  serving model version and per-request queue-wait/compute latency.  Frames
  travel through the same ``repro.net.protocol`` codec as the TCP front
  end, so the stdin and socket paths cannot drift.
* ``m3 served`` — the network serving daemon: the same registry and
  micro-batcher behind a TCP listener speaking JSONL and HTTP/1.1
  ``POST /predict`` (``--mode auto`` sniffs both on one port); ``--port 0``
  binds an ephemeral port (printed to stderr), ``--adaptive-delay`` learns
  the coalesce window from the observed arrival rate instead of a fixed
  ``--max-delay-ms``, and SIGTERM/SIGINT trigger a graceful drain: stop
  accepting, answer every in-flight request, then shut down.
  ``m3 predict --connect HOST:PORT`` is the matching client path.
* ``m3 figure1a`` / ``m3 figure1b`` / ``m3 table1`` / ``m3 utilization`` —
  regenerate the paper's figures and table as plain-text tables.
* ``m3 lint`` — the static half of ``repro.analysis``: project-specific
  concurrency and resource-safety rules (lock ranks, leak-free cleanup,
  thread hygiene, API surface) over any path, defaulting to the installed
  ``repro`` package; exit code 0 = clean, 1 = findings, 2 = usage error.

Dataset arguments accept plain paths as well as URI-style specs
(``mmap://file.m3``, ``shard://directory/``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Any, List, Optional, Tuple

import numpy as np


def _positive_int(text: str) -> int:
    """argparse type for flags that must be strictly positive integers.

    Rejecting 0/negative here gives a one-line usage error instead of a
    traceback from deep inside the chunk planner.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type for flags where 0 is meaningful (``--io-workers 0`` = auto)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be a non-negative integer, got {value}")
    return value


def _hostport(text: str) -> "Tuple[str, int]":
    """Parse ``HOST:PORT`` for ``--connect`` (argparse type)."""
    host, separator, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not separator or not host or not 0 < port < 65536:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT with a port in 1-65535, got {text!r}"
        )
    return host, port


def _overlap_text(io_overlap) -> str:
    """Human-readable io_overlap (which is None when nothing was read)."""
    if io_overlap is None:
        return "no reads recorded"
    return f"{io_overlap * 100:.0f}% of reads overlapped with compute"


def _streaming_flags_misused(args: argparse.Namespace) -> bool:
    """True (after printing the usage error) when a streaming-only flag lacks
    ``--engine streaming``."""
    if args.engine == "streaming":
        return False
    for flag, value in (
        ("--chunk-rows", args.chunk_rows),
        ("--io-workers", getattr(args, "io_workers", None)),
        ("--compute-workers", getattr(args, "compute_workers", None)),
    ):
        if value is not None:
            print(f"error: {flag} requires --engine streaming", file=sys.stderr)
            return True
    return False


def _print_pipeline_details(details: dict) -> None:
    """The chunk pipeline's accounting line(s), shared by train and predict."""
    print(
        f"chunk pipeline: {details['chunks']} chunks of <= "
        f"{details['chunk_rows']} rows"
        + (f" over {details['passes']} pass(es)" if "passes" in details else "")
        + f", {details['bytes_read'] / 1e6:.1f} MB read in {details['read_s']:.2f}s, "
        f"io-wait {details['io_wait_s']:.2f}s, compute {details['compute_s']:.2f}s, "
        f"{_overlap_text(details['io_overlap'])}"
    )
    if details.get("compressed_bytes"):
        ratio = details.get("ratio")
        ratio_text = f"{ratio:.2f}x ratio, " if ratio else ""
        print(
            f"compressed stream: {details['compressed_bytes'] / 1e6:.1f} MB coded "
            f"({ratio_text}decode {details.get('decode_s', 0.0):.2f}s on the "
            f"compute pool)"
        )
    readers = details.get("readers")
    if readers:
        per_reader = ", ".join(
            f"r{entry['reader']}: {entry['chunks']} chunks / {entry['read_s']:.2f}s"
            for entry in readers
        )
        print(
            f"parallel readers: {details['io_workers']} "
            f"({per_reader}), {details['hints_applied']} readahead hints applied"
        )


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data.writers import write_infimnist_dataset

    header = write_infimnist_dataset(
        args.output,
        num_examples=args.examples,
        seed=args.seed,
        chunk_rows=args.chunk_rows,
    )
    print(
        f"wrote {header.rows} x {header.cols} ({header.file_bytes / 1e6:.1f} MB) "
        f"to {args.output}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.api import Session

    with Session() as session:
        info = session.info(args.dataset)
    preferred = ("backend", "path", "rows", "cols", "dtype", "has_labels",
                 "nbytes", "file_bytes", "num_shards", "generation",
                 "committed_rows", "tail_shard", "tail_rows", "tail_sealed",
                 "format_version", "codec", "block_rows", "layout",
                 "storage_dtype", "compressed_bytes", "compression_ratio")
    ordered = [k for k in preferred if k in info]
    ordered += [k for k in info if k not in preferred]
    width = max(len(key) for key in ordered)
    for key in ordered:
        value = info[key]
        if key == "shard_ratios":
            value = ", ".join(
                f"{entry['filename']}={entry['ratio']:.2f}x"
                if entry["ratio"] is not None
                else f"{entry['filename']}=?"
                for entry in value
            )
        elif key == "compression_ratio" and value is not None:
            value = f"{value:.2f}"
        print(f"{key:<{width}}  {value}")
    if args.verify:
        problems = _verify_dataset_files(info.get("path", args.dataset))
        if problems:
            for problem in problems:
                print(f"verify: {problem}", file=sys.stderr)
            print(
                f"verify: FAILED — {len(problems)} problem(s) found",
                file=sys.stderr,
            )
            return 1
        print("verify: OK — every block read, CRC-checked and decoded")
    return 0


def _verify_dataset_files(path_str: str) -> List[str]:
    """Full scrub behind ``m3 info --verify``; returns problem strings.

    Dispatches on what sits at ``path_str``: sharded dataset directories go
    through :func:`repro.api.sharded.verify_dataset` (every shard, every
    block), a single ``.m3b`` blocked file through
    :func:`repro.data.formats_v2.verify_blocked_file`, and a v1 matrix file
    through the header's own size validation.
    """
    path = Path(path_str)
    if path.is_dir():
        from repro.api.sharded import verify_dataset

        return verify_dataset(path)
    if path.suffix == ".m3b":
        from repro.data.formats_v2 import verify_blocked_file

        return verify_blocked_file(path)
    from repro.data.formats import read_binary_matrix_header

    try:
        read_binary_matrix_header(path)
    except (OSError, ValueError) as error:
        return [f"{path}: {error}"]
    return []


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.api.convert import convert_dataset, dataset_geometry

    codec = None if args.codec == "raw" else args.codec
    block_rows = args.block_rows
    layout = args.layout
    if args.auto_block:
        if codec is None:
            print("error: --auto-block needs a compressed target (--codec raw "
                  "has no blocks to size)", file=sys.stderr)
            return 2
        if block_rows is not None or layout is not None:
            print("error: --auto-block picks --block-rows/--layout; do not "
                  "pass them explicitly", file=sys.stderr)
            return 2
        from repro.vmem.advisor import advise_block_layout

        rows, cols, dtype = dataset_geometry(args.source)
        storage_itemsize = (
            np.dtype(args.dtype).itemsize if args.dtype else dtype.itemsize
        )
        advice = advise_block_layout(
            rows=rows,
            cols=cols,
            itemsize=storage_itemsize,
            chunk_rows=args.scan_chunk_rows,
            column_fraction=args.scan_columns,
            cache_bytes=args.cache_mb * 1024 * 1024,
        )
        block_rows, layout = advice.block_rows, advice.layout
        best = advice.candidates[0]
        print(
            f"advisor: block_rows={block_rows} layout={layout} "
            f"(score {best.score:.3f}, {best.amplification:.2f}x read "
            f"amplification, miss ratio "
            f"{best.friendliness.miss_ratio * 100:.1f}% at "
            f"{args.cache_mb} MB cache)"
        )
    manifest = convert_dataset(
        args.source,
        args.destination,
        codec=codec,
        block_rows=block_rows,
        storage_dtype=args.dtype,
        layout=layout or "row",
        shard_rows=args.shard_rows,
        chunk_rows=args.chunk_rows,
    )
    if manifest.codec is None:
        print(
            f"wrote {manifest.rows} x {manifest.cols} as "
            f"{len(manifest.shards)} raw v1 shard(s) to {args.destination}"
        )
    else:
        ratio = manifest.ratio
        ratio_text = f"{ratio:.2f}x" if ratio else "n/a"
        print(
            f"wrote {manifest.rows} x {manifest.cols} as "
            f"{len(manifest.shards)} {manifest.codec}-compressed v2 shard(s) "
            f"to {args.destination} (block_rows={manifest.block_rows}, "
            f"layout={manifest.layout}, "
            f"storage dtype {np.dtype(manifest.storage_dtype).name}, "
            f"compression {ratio_text})"
        )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.api import Session, StreamingEngine
    from repro.ml import KMeans, LogisticRegression, MiniBatchKMeans, SoftmaxRegression

    streaming = args.engine == "streaming"
    if _streaming_flags_misused(args):
        return 2
    engine = (
        StreamingEngine(
            chunk_rows=args.chunk_rows,
            io_workers=args.io_workers,
            compute_workers=args.compute_workers or 1,
        )
        if streaming
        else args.engine
    )
    with Session() as session:
        dataset = session.open(args.dataset)
        if args.algorithm == "logistic":
            labels = np.asarray(dataset.labels)
            multiclass = np.unique(labels).shape[0] > 2
            # The streaming engine trains through partial_fit, which the
            # linear models implement for their SGD solver.
            solver = "sgd" if streaming else "lbfgs"
            if multiclass:
                model = SoftmaxRegression(max_iterations=args.iterations, solver=solver)
            else:
                model = LogisticRegression(max_iterations=args.iterations, solver=solver)
            result = session.fit(model, dataset, y=labels, engine=engine)
            accuracy = result.model.score(dataset.matrix, labels)
            print(
                f"trained in {result.wall_time_s:.2f}s ({result.engine} engine, "
                f"{dataset.backend_name} backend), training accuracy {accuracy:.3f}"
            )
        else:
            if streaming:
                model = MiniBatchKMeans(
                    n_clusters=args.clusters, max_epochs=args.iterations, seed=0
                )
            else:
                model = KMeans(
                    n_clusters=args.clusters, max_iterations=args.iterations, seed=0
                )
            result = session.fit(model, dataset, engine=engine)
            print(
                f"trained in {result.wall_time_s:.2f}s ({result.engine} engine, "
                f"{dataset.backend_name} backend), inertia {result.model.inertia_:.4g}, "
                f"{result.model.n_iter_} iterations"
            )
        if streaming:
            _print_pipeline_details(result.details)
        if result.simulation is not None:
            sim = result.simulation
            print(
                f"simulated paper-scale machine: wall time {sim.wall_time_s:.2f}s, "
                f"disk utilisation {sim.io_utilization * 100:.1f}%, "
                f"cpu utilisation {sim.cpu_utilization * 100:.1f}%"
            )
        if args.save_model is not None:
            from repro.ml import save_model

            save_model(args.save_model, result.model)
            print(f"saved {type(result.model).__name__} to {args.save_model}")
    return 0


def _print_serve_stats(stats: "Any") -> None:
    """One accounting line for the micro-batching server, shared by
    ``m3 serve`` and ``m3 predict --server``."""
    summary = stats.as_dict()
    print(
        f"server: {summary['requests']} requests ({summary['rows']} rows) in "
        f"{summary['batches']} micro-batches "
        f"(mean {summary['mean_batch_rows']:.1f} rows/batch), queue-wait "
        f"p50 {summary['queue_wait_p50_s'] * 1e3:.2f}ms / "
        f"p99 {summary['queue_wait_p99_s'] * 1e3:.2f}ms, compute "
        f"{summary['compute_s']:.2f}s, {summary['errors']} errors "
        f"({summary['failed_requests']} requests failed), "
        f"{summary['rejected']} rejected, {summary['retries']} retries, "
        f"{summary['faults_injected']} faults injected",
        file=sys.stderr,
    )


def _predict_via_server(session, dataset, model, method: str, args) -> "Any":
    """Route every dataset row through the micro-batching model server.

    The request-level counterpart of the scan path below: each row becomes
    one asynchronous request, the server coalesces whatever is in flight
    into micro-batches, and the gathered predictions are identical to the
    scan's.  Demonstrates (and exercises) the serving daemon without a
    client process.
    """
    import time

    X = dataset.matrix
    n_rows = int(X.shape[0])
    began = time.perf_counter()
    with session.serve(
        model,
        engine=args.engine,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        workers=args.workers,
    ) as serving:
        futures = [
            serving.submit(np.asarray(X[i : i + 1]), method=method)
            for i in range(n_rows)
        ]
        pieces = [future.result().predictions for future in futures]
        stats = serving.stats()
    elapsed = time.perf_counter() - began
    predictions = (
        np.concatenate(pieces, axis=0) if pieces else np.empty((0,), dtype=np.float64)
    )
    rate = n_rows / elapsed if elapsed > 0 else float("inf")
    print(
        f"served {n_rows} predictions ({method}) with {type(model).__name__} "
        f"in {elapsed:.2f}s (model server, {dataset.backend_name} backend, "
        f"{rate:.0f} rows/s)"
    )
    _print_serve_stats(stats)
    return predictions


def _predict_via_connect(dataset, method: str, args) -> "Any":
    """Route every dataset row through a remote ``m3 served`` daemon.

    The network counterpart of ``--server``: each row becomes one
    pipelined request over a keep-alive JSONL connection, so the remote
    micro-batcher coalesces them exactly as it would any other client's
    traffic — and the gathered predictions are identical to the scan's.
    """
    import time

    from repro.net import NetClient

    host, port = args.connect
    X = dataset.matrix
    n_rows = int(X.shape[0])
    began = time.perf_counter()
    with NetClient(host, port) as client:
        futures = [
            client.submit(np.asarray(X[i : i + 1]), method=method)
            for i in range(n_rows)
        ]
        pieces = [future.result(timeout=client.timeout_s) for future in futures]
    elapsed = time.perf_counter() - began
    predictions = (
        np.concatenate([piece.predictions for piece in pieces], axis=0)
        if pieces
        else np.empty((0,), dtype=np.float64)
    )
    rate = n_rows / elapsed if elapsed > 0 else float("inf")
    model_key = pieces[-1].model_key if pieces else "-"
    print(
        f"served {n_rows} predictions ({method}) by {host}:{port} "
        f"({model_key}) in {elapsed:.2f}s (network client, "
        f"{dataset.backend_name} backend, {rate:.0f} rows/s)"
    )
    return predictions


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.api import Session
    from repro.ml import load_model

    if _streaming_flags_misused(args):
        return 2
    if args.connect is not None:
        if args.server:
            print(
                "error: --connect and --server are mutually exclusive (one "
                "routes requests to a remote daemon, the other runs an "
                "in-process server)",
                file=sys.stderr,
            )
            return 2
        if args.model is not None:
            print(
                "error: --model does not apply to --connect (the serving "
                "daemon already holds the model)",
                file=sys.stderr,
            )
            return 2
        for flag, value in (
            ("--chunk-rows", args.chunk_rows),
            ("--io-workers", args.io_workers),
            ("--compute-workers", args.compute_workers),
        ):
            if value is not None:
                print(
                    f"error: {flag} does not apply to --connect (the remote "
                    f"daemon owns the serving knobs)",
                    file=sys.stderr,
                )
                return 2
        method = "predict_proba" if args.proba else "predict"
        with Session() as session:
            dataset = session.open(args.dataset)
            predictions = _predict_via_connect(dataset, method, args)
        if args.output is not None:
            np.save(args.output, predictions)
            print(f"wrote predictions to {args.output}")
        return 0
    if args.model is None:
        print(
            "error: --model is required (or --connect HOST:PORT to use a "
            "remote serving daemon)",
            file=sys.stderr,
        )
        return 2
    if args.server:
        # The server path dispatches micro-batches, not a chunked scan: the
        # scan-pipeline knobs would silently do nothing, so reject them.
        for flag, value in (
            ("--chunk-rows", args.chunk_rows),
            ("--io-workers", args.io_workers),
            ("--compute-workers", args.compute_workers),
        ):
            if value is not None:
                print(
                    f"error: {flag} does not apply to --server (use "
                    f"--max-batch/--max-delay-ms/--workers)",
                    file=sys.stderr,
                )
                return 2
    model = load_model(args.model)
    method = "predict_proba" if args.proba else "predict"
    if args.server:
        with Session() as session:
            dataset = session.open(args.dataset)
            predictions = _predict_via_server(session, dataset, model, method, args)
            if method == "predict" and dataset.has_labels and hasattr(model, "classes_"):
                labels = np.asarray(dataset.labels)
                if predictions.shape == labels.shape:
                    accuracy = float(np.mean(predictions == labels))
                    print(f"accuracy against the dataset's labels: {accuracy:.3f}")
        if args.output is not None:
            np.save(args.output, predictions)
            print(f"wrote predictions to {args.output}")
        return 0
    with Session() as session:
        dataset = session.open(args.dataset)
        result = session.predict(
            dataset,
            model,
            method=method,
            engine=args.engine,
            chunk_rows=args.chunk_rows,
            io_workers=args.io_workers,
            compute_workers=args.compute_workers,
        )
        rows = result.n_rows
        rate = rows / result.wall_time_s if result.wall_time_s > 0 else float("inf")
        print(
            f"served {rows} predictions ({method}) with {type(model).__name__} "
            f"in {result.wall_time_s:.2f}s ({result.engine} engine, "
            f"{dataset.backend_name} backend, {rate:.0f} rows/s)"
        )
        if args.engine == "streaming":
            _print_pipeline_details(result.details)
        if result.simulation is not None:
            sim = result.simulation
            print(
                f"simulated paper-scale machine: wall time {sim.wall_time_s:.2f}s, "
                f"disk utilisation {sim.io_utilization * 100:.1f}%, "
                f"cpu utilisation {sim.cpu_utilization * 100:.1f}%"
            )
        # Only classifiers predict in label space; a clusterer's arbitrary
        # cluster indices must not be scored against class labels.
        if method == "predict" and dataset.has_labels and hasattr(model, "classes_"):
            labels = np.asarray(dataset.labels)
            if result.predictions.shape == labels.shape:
                accuracy = float(np.mean(result.predictions == labels))
                print(f"accuracy against the dataset's labels: {accuracy:.3f}")
    if args.output is not None:
        np.save(args.output, result.predictions)
        print(f"wrote predictions to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The serving daemon: a JSONL request/response loop over a ModelServer.

    Reads one request per line from stdin (or ``--input``), answers one JSON
    response per line on stdout (or ``--output``), in request order.
    Requests are submitted asynchronously, so concurrent lines coalesce into
    micro-batches exactly as concurrent network clients would; completed
    responses are flushed as soon as every earlier request has completed.
    The frames travel through :mod:`repro.net.protocol` — the same codec
    the TCP front end (``m3 served``) speaks — so the stdin and socket
    paths cannot drift.
    """
    from collections import deque

    from repro.net import protocol
    from repro.serve import ModelRegistry, ModelServer

    default_method = "predict_proba" if args.proba else "predict"
    registry = ModelRegistry()
    version = registry.publish("default", args.model)
    source = sys.stdin if args.input is None else open(args.input, "r", encoding="utf-8")
    sink = sys.stdout if args.output is None else open(args.output, "w", encoding="utf-8")

    def respond(request_id, future) -> None:
        error = future.exception()
        if error is not None:
            payload = protocol.error_record(error, request_id)
        else:
            payload = protocol.response_record(future.result(), request_id)
        print(protocol.encode_record(payload), file=sink, flush=True)

    served = 0
    try:
        with ModelServer(
            registry=registry,
            engine=args.engine,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            workers=args.workers,
            max_pending=args.max_pending,
        ) as server:
            print(
                f"serving {type(version.model).__name__} as {version.key} "
                f"(max_batch={args.max_batch}, max_delay={args.max_delay_ms}ms, "
                f"workers={args.workers}); one JSONL request per line",
                file=sys.stderr,
            )
            pending: "deque" = deque()
            for line in source:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = protocol.parse_request_line(
                        line, default_method=default_method
                    )
                    pending.append(
                        (
                            request.id,
                            server.submit(
                                request.rows,
                                method=request.method,
                                model=request.model,
                            ),
                        )
                    )
                except Exception as error:  # noqa: BLE001 — reported per line
                    # Flush responses in order before reporting the bad line.
                    while pending:
                        respond(*pending.popleft())
                        served += 1
                    print(
                        protocol.encode_record(protocol.error_record(error, None)),
                        file=sink,
                        flush=True,
                    )
                    continue
                # Emit every response that is ready behind the head, keeping
                # request order without stalling the submit loop.
                while pending and pending[0][1].done():
                    respond(*pending.popleft())
                    served += 1
            while pending:
                respond(*pending.popleft())
                served += 1
            _print_serve_stats(server.stats())
    finally:
        if source is not sys.stdin:
            source.close()
        if sink is not sys.stdout:
            sink.close()
    print(f"served {served} request(s)", file=sys.stderr)
    return 0


def _cmd_served(args: argparse.Namespace) -> int:
    """The network serving daemon: the TCP front end over a ModelServer.

    Binds a listener (``--port 0`` picks an ephemeral port; the bound
    address is printed to stderr), speaks newline-delimited JSON and
    HTTP/1.1 ``POST /predict`` through the shared :mod:`repro.net.protocol`
    codec, and drains gracefully on SIGTERM/SIGINT: stop accepting, answer
    every in-flight request, then shut the dispatchers down.
    """
    import signal
    import threading

    from repro.net import AdaptiveDelayController, NetServer
    from repro.serve import ModelRegistry, ModelServer

    default_method = "predict_proba" if args.proba else "predict"
    registry = ModelRegistry()
    version = registry.publish("default", args.model)
    controller = None
    if args.adaptive_delay:
        controller = AdaptiveDelayController(
            max_batch=args.max_batch, ceiling_ms=args.adaptive_ceiling_ms
        )
    server = ModelServer(
        registry=registry,
        engine=args.engine,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        workers=args.workers,
        max_pending=args.max_pending,
        delay_controller=controller,
    )
    net = NetServer(
        server,
        host=args.host,
        port=args.port,
        mode=args.mode,
        default_method=default_method,
        max_inflight=args.max_inflight,
    )
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda _signum, _frame: net.request_shutdown())
    delay_text = (
        f"adaptive (ceiling {args.adaptive_ceiling_ms}ms)"
        if controller is not None
        else f"{args.max_delay_ms}ms"
    )
    print(
        f"serving {type(version.model).__name__} as {version.key} on "
        f"{net.host}:{net.port} (mode={args.mode}, max_batch={args.max_batch}, "
        f"max_delay={delay_text}, workers={args.workers}); "
        f"JSONL or HTTP POST /predict; SIGTERM drains",
        file=sys.stderr,
        flush=True,
    )
    try:
        net.serve_forever()
    finally:
        net.close()
        summary = net.stats().as_dict()
        print(
            f"net: {summary['connections']} connection(s), "
            f"{summary['requests']} requests, {summary['responses']} responses, "
            f"{summary['errors']} errors ({summary['saturated']} saturated), "
            f"{summary['dropped_connections']} dropped connection(s)",
            file=sys.stderr,
        )
        if controller is not None:
            snap = controller.snapshot()
            gap = snap["gap_ewma_ms"]
            gap_text = "n/a (idle)" if gap != gap else f"{gap:.3f}ms"
            print(
                f"adaptive delay: learned window {snap['delay_ms']:.3f}ms "
                f"(inter-arrival EWMA {gap_text}, "
                f"ceiling {snap['ceiling_ms']:.1f}ms)",
                file=sys.stderr,
            )
        _print_serve_stats(server.stats())
    print("drained and closed", file=sys.stderr)
    return 0


def _cmd_traind(args: argparse.Namespace) -> int:
    """The trainer daemon: tail committed generations, train deltas, publish.

    Polls the appendable dataset's manifest; each newly committed generation
    is caught up by streaming only its delta rows through ``partial_fit``,
    after which the refreshed model is published as the next version (and
    optionally saved as a servable JSON artifact).  ``--once`` runs a single
    poll — the batch form, useful in pipelines and tests; without it the
    daemon polls until interrupted.
    """
    from repro.ml import GaussianNaiveBayes, LogisticRegression, MiniBatchKMeans, SoftmaxRegression
    from repro.ml.persistence import load_model, save_model
    from repro.serve import Trainer

    if args.model is not None:
        model = load_model(args.model)
        if not hasattr(model, "partial_fit"):
            print(
                f"{type(model).__name__} does not support partial_fit; "
                f"the trainer daemon needs a streaming estimator",
                file=sys.stderr,
            )
            return 2
    elif args.algorithm == "logistic":
        model = LogisticRegression(solver="sgd")
    elif args.algorithm == "softmax":
        model = SoftmaxRegression(solver="sgd")
    elif args.algorithm == "nb":
        model = GaussianNaiveBayes()
    else:
        model = MiniBatchKMeans(n_clusters=args.clusters, seed=0)

    def report(update) -> None:
        rate = update.rows / update.train_s if update.train_s > 0 else float("inf")
        print(
            f"generation {update.generation}: trained {update.rows} delta "
            f"row(s) in {update.chunks} chunk(s) ({update.train_s:.3f}s, "
            f"{rate:.0f} rows/s), published {update.version.key}",
            flush=True,
        )
        if args.save_model is not None:
            save_model(args.save_model, update.version.model)
            print(f"saved {update.version.key} to {args.save_model}", flush=True)

    with Trainer(
        args.dataset,
        model,
        name=args.name,
        poll_s=args.poll,
        chunk_rows=args.chunk_rows,
        io_workers=args.io_workers,
    ) as trainer:
        if args.trained_rows:
            # The model was fitted offline on the dataset's first N rows;
            # start the cursor there instead of retraining from row 0.
            trainer.mark_trained(args.trained_rows)
        print(
            f"tailing {trainer.spec.scheme}://{trainer.spec.location} with "
            f"{type(model).__name__} as {args.name!r} "
            f"(poll every {args.poll}s); Ctrl-C to stop",
            file=sys.stderr,
        )
        try:
            published = trainer.run(max_polls=1 if args.once else None, on_update=report)
        except KeyboardInterrupt:
            published = trainer.stats.updates
            print("interrupted", file=sys.stderr)
        summary = trainer.stats.as_dict()
        print(
            f"trainer: {summary['polls']} poll(s), {published} version(s) "
            f"published, {summary['rows_trained']} row(s) trained in "
            f"{summary['train_s']:.3f}s (caught up to generation "
            f"{summary['last_generation']})",
            file=sys.stderr,
        )
    return 0


def _cmd_figure1a(args: argparse.Namespace) -> int:
    from repro.bench.figure1a import run_figure1a
    from repro.bench.reporting import format_table

    result = run_figure1a(sizes_gb=args.sizes)
    print(
        format_table(
            result.rows,
            columns=["size_gb", "runtime_s", "fits_in_ram", "disk_utilization", "cpu_utilization"],
            title="Figure 1a — M3 runtime vs dataset size (LR, 10 L-BFGS iterations)",
        )
    )
    print(
        f"\nin-RAM slope: {result.model.in_ram_slope * 1e9:.2f} s/GB, "
        f"out-of-core slope: {result.model.out_of_core_slope * 1e9:.2f} s/GB, "
        f"slowdown factor {result.model.slowdown_factor:.2f}, "
        f"piecewise-linear R^2 {result.linearity_r2():.4f}"
    )
    return 0


def _cmd_figure1b(args: argparse.Namespace) -> int:
    from repro.bench.figure1b import run_figure1b
    from repro.bench.reporting import format_table

    result = run_figure1b(dataset_gb=args.size)
    print(
        format_table(
            result.rows,
            columns=["workload", "system", "runtime_s", "paper_runtime_s"],
            title=f"Figure 1b — M3 vs Spark ({args.size:.0f} GB dataset)",
        )
    )
    for workload in ("logistic_regression", "kmeans"):
        print(
            f"\n{workload}: 4x Spark / M3 = {result.speedup_over(workload, '4x Spark'):.2f}, "
            f"8x Spark / M3 = {result.speedup_over(workload, '8x Spark'):.2f}"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench.table1 import run_table1

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(args.workdir) if args.workdir else Path(tmp)
        result = run_table1(workdir)
    print("Table 1 — transparency of M3")
    print(f"  lines changed:            {result.lines_changed} of {result.total_lines}")
    print(f"  max coefficient delta:    {result.max_coef_difference:.2e}")
    print(f"  predictions identical:    {result.predictions_identical}")
    print(f"  in-memory accuracy:       {result.in_memory_accuracy:.4f}")
    print(f"  memory-mapped accuracy:   {result.mmap_accuracy:.4f}")
    return 0


def _cmd_utilization(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.bench.utilization import run_utilization_experiment

    rows = run_utilization_experiment(sizes_gb=args.sizes)
    print(
        format_table(
            rows,
            columns=["size_gb", "disk_utilization", "cpu_utilization", "io_bound", "wall_time_s"],
            title="Resource utilisation (simulated M3 machine)",
        )
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.findings import format_text, report_as_dict
    from repro.analysis.linter import LintError, lint_paths

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        # Default target: the installed repro package itself.
        paths = [Path(__file__).resolve().parent]
    try:
        report = lint_paths(paths, select=args.select)
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report_as_dict(report.findings, report.files, report.selected), indent=2))
    else:
        for line in format_text(report.findings):
            print(line)
        noun = "finding" if len(report.findings) == 1 else "findings"
        print(
            f"m3 lint: {len(report.findings)} {noun} in {report.files} file(s) "
            f"(rules: {', '.join(report.selected)})"
        )
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="m3",
        description="Reproduction of 'M3: Scaling Up Machine Learning via Memory Mapping'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate an Infimnist-style dataset file")
    generate.add_argument("output", type=Path, help="output .m3 file")
    generate.add_argument("--examples", type=int, default=10000, help="number of images")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--chunk-rows", type=int, default=1024)
    generate.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="describe a dataset (header / shard manifest)")
    info.add_argument("dataset", type=str, help="a dataset path or URI spec")
    info.add_argument("--verify", action="store_true",
                      help="scrub the dataset: read every block, check CRCs, "
                           "decode every segment; exit 1 listing problems")
    info.set_defaults(func=_cmd_info)

    convert = sub.add_parser(
        "convert",
        help="re-encode a dataset (v1 <-> compressed blocked v2 shards)",
    )
    convert.add_argument("source", type=str,
                         help="a .m3 matrix file or a sharded dataset directory")
    convert.add_argument("destination", type=Path,
                         help="output shard directory (created; must not "
                              "already hold a dataset)")
    convert.add_argument("--codec", choices=["zlib", "none", "raw"],
                         default="zlib",
                         help="target encoding: 'zlib' / 'none' write blocked "
                              "v2 shards (compressed / merely blocked), 'raw' "
                              "writes plain memory-mappable v1 shards")
    convert.add_argument("--block-rows", type=_positive_int, default=None,
                         help="rows per coded block (v2 only; default targets "
                              "~1 MiB of raw storage per block)")
    convert.add_argument("--dtype", choices=["float64", "float32", "float16"],
                         default=None,
                         help="on-disk storage dtype (v2 only; narrower than "
                              "the logical dtype trades precision for size)")
    convert.add_argument("--layout", choices=["row", "column"], default=None,
                         help="v2 block layout: 'row' = one segment per "
                              "block, 'column' = one segment per column so "
                              "column-subset scans fetch less (default row)")
    convert.add_argument("--shard-rows", type=_positive_int, default=None,
                         help="rows per output shard (default: keep the "
                              "source's shard height)")
    convert.add_argument("--chunk-rows", type=_positive_int, default=8192,
                         help="copy granularity; bounds converter memory")
    convert.add_argument("--auto-block", action="store_true",
                         help="let the vmem locality advisor pick "
                              "--block-rows/--layout for the scan workload "
                              "described by --scan-columns/--cache-mb")
    convert.add_argument("--scan-columns", type=float, default=1.0,
                         help="fraction of columns the expected workload "
                              "scans (with --auto-block; 1.0 = full rows)")
    convert.add_argument("--scan-chunk-rows", type=_positive_int, default=None,
                         help="streaming chunk height the workload will scan "
                              "with (with --auto-block)")
    convert.add_argument("--cache-mb", type=_positive_int, default=64,
                         help="page-cache budget the advisor scores misses "
                              "at, in MiB (with --auto-block)")
    convert.set_defaults(func=_cmd_convert)

    train = sub.add_parser("train", help="train a model on a dataset")
    train.add_argument("dataset", type=str,
                       help="a labelled dataset: path or URI spec (mmap://, shard://)")
    train.add_argument("--algorithm", choices=["logistic", "kmeans"], default="logistic")
    train.add_argument("--engine", choices=["local", "simulated", "streaming"],
                       default="local",
                       help="execution engine; 'simulated' also replays the access "
                            "trace through the paper-scale virtual-memory simulator; "
                            "'streaming' trains via partial_fit over prefetched "
                            "shard-aligned chunks and reports I/O-wait vs compute")
    train.add_argument("--iterations", type=int, default=10)
    train.add_argument("--clusters", type=int, default=5)
    train.add_argument("--chunk-rows", type=_positive_int, default=None,
                       help="rows per streaming chunk (streaming engine only; "
                            "defaults to the model's batch size, or an "
                            "auto-sized adaptive window)")
    train.add_argument("--io-workers", type=_non_negative_int, default=None,
                       help="reader threads for the parallel chunk pipeline "
                            "(streaming engine only; 0 = one reader per device, "
                            "omit = single-reader prefetch)")
    train.add_argument("--compute-workers", type=_positive_int, default=None,
                       help="inference worker threads (streaming engine only; "
                            "training itself stays an ordered reduction)")
    train.add_argument("--save-model", type=Path, default=None,
                       help="write the fitted model to this path as JSON "
                            "(servable with 'm3 predict --model')")
    train.set_defaults(func=_cmd_train)

    predict = sub.add_parser("predict", help="serve a saved model's predictions")
    predict.add_argument("dataset", type=str,
                         help="a dataset: path or URI spec (mmap://, shard://)")
    predict.add_argument("--model", type=Path, default=None,
                         help="saved model JSON (from 'm3 train --save-model'); "
                              "required unless --connect routes to a remote "
                              "daemon that already holds the model")
    predict.add_argument("--connect", type=_hostport, default=None,
                         metavar="HOST:PORT",
                         help="route every row as a pipelined JSONL request "
                              "through a running 'm3 served' daemon instead "
                              "of predicting in-process")
    predict.add_argument("--engine", choices=["local", "simulated", "streaming"],
                         default="local",
                         help="execution engine; 'streaming' predicts chunk by "
                              "chunk through the prefetching pipeline (bounded "
                              "memory on sharded datasets), 'simulated' replays "
                              "the inference trace through the paper-scale "
                              "virtual-memory simulator")
    predict.add_argument("--chunk-rows", type=_positive_int, default=None,
                         help="rows per streaming chunk (streaming engine only)")
    predict.add_argument("--io-workers", type=_non_negative_int, default=None,
                         help="reader threads for the parallel chunk pipeline "
                              "(streaming engine only; 0 = one reader per device)")
    predict.add_argument("--compute-workers", type=_positive_int, default=None,
                         help="worker threads for data-parallel chunk inference "
                              "(streaming engine only; each writes a disjoint "
                              "slice of the output buffer)")
    predict.add_argument("--proba", action="store_true",
                         help="emit class probabilities (predict_proba) instead "
                              "of labels")
    predict.add_argument("--output", type=Path, default=None,
                         help="write the predictions to this path as .npy")
    predict.add_argument("--server", action="store_true",
                         help="route every row as an individual request through "
                              "the micro-batching model server instead of the "
                              "scan path (same predictions, request-level "
                              "accounting)")
    predict.add_argument("--max-batch", type=_positive_int, default=256,
                         help="rows per coalesced micro-batch (with --server)")
    predict.add_argument("--max-delay-ms", type=float, default=0.0,
                         help="how long an underfull micro-batch waits for "
                              "company; 0 = dispatch immediately (with "
                              "--server)")
    predict.add_argument("--workers", type=_positive_int, default=1,
                         help="dispatcher threads (with --server)")
    predict.set_defaults(func=_cmd_predict)

    serve = sub.add_parser(
        "serve",
        help="run the serving daemon: JSONL predict requests over a hot model",
    )
    serve.add_argument("--model", type=Path, required=True,
                       help="saved model JSON (from 'm3 train --save-model') "
                            "published into the hot-model registry")
    serve.add_argument("--engine", choices=["local", "streaming"], default="local",
                       help="engine whose serve_batch computes each micro-batch "
                            "(both drive the same per-chunk predict path)")
    serve.add_argument("--max-batch", type=_positive_int, default=256,
                       help="rows per coalesced micro-batch")
    serve.add_argument("--max-delay-ms", type=float, default=0.0,
                       help="how long an underfull micro-batch waits for more "
                            "requests before dispatching; 0 = dispatch "
                            "immediately (batches still form under load)")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="dispatcher threads")
    serve.add_argument("--max-pending", type=_positive_int, default=1024,
                       help="bounded request-queue depth (backpressure beyond it)")
    serve.add_argument("--proba", action="store_true",
                       help="default to predict_proba for requests that name "
                            "no method")
    serve.add_argument("--input", type=Path, default=None,
                       help="read JSONL requests from this file instead of stdin")
    serve.add_argument("--output", type=Path, default=None,
                       help="write JSONL responses to this file instead of stdout")
    serve.set_defaults(func=_cmd_serve)

    served = sub.add_parser(
        "served",
        help="run the network serving daemon: JSONL/HTTP predict requests "
             "over TCP, graceful drain on SIGTERM",
    )
    served.add_argument("--model", type=Path, required=True,
                        help="saved model JSON (from 'm3 train --save-model') "
                             "published into the hot-model registry")
    served.add_argument("--host", type=str, default="127.0.0.1",
                        help="bind address")
    served.add_argument("--port", type=_non_negative_int, default=0,
                        help="TCP port (0 = pick an ephemeral port; the bound "
                             "address is printed to stderr)")
    served.add_argument("--mode", choices=["auto", "jsonl", "http"],
                        default="auto",
                        help="wire framing; 'auto' sniffs JSONL vs HTTP per "
                             "connection, so one port serves both")
    served.add_argument("--http", action="store_const", const="http",
                        dest="mode", help="shorthand for --mode http")
    served.add_argument("--engine", choices=["local", "streaming"],
                        default="local",
                        help="engine whose serve_batch computes each "
                             "micro-batch")
    served.add_argument("--max-batch", type=_positive_int, default=256,
                        help="rows per coalesced micro-batch")
    served.add_argument("--max-delay-ms", type=float, default=0.0,
                        help="fixed coalesce window for underfull "
                             "micro-batches; 0 = dispatch immediately")
    served.add_argument("--adaptive-delay", action="store_true",
                        help="learn the coalesce window from the observed "
                             "arrival rate (EWMA inter-arrival estimate, "
                             "clamped to --adaptive-ceiling-ms, exactly 0 at "
                             "low load) instead of the fixed --max-delay-ms")
    served.add_argument("--adaptive-ceiling-ms", type=float, default=5.0,
                        help="upper clamp on the learned delay — the "
                             "worst-case latency tax under --adaptive-delay")
    served.add_argument("--workers", type=_positive_int, default=1,
                        help="dispatcher threads")
    served.add_argument("--max-pending", type=_positive_int, default=1024,
                        help="bounded request-queue depth (requests beyond it "
                             "get a typed 'saturated' error / HTTP 429)")
    served.add_argument("--max-inflight", type=_positive_int, default=256,
                        help="per-connection cap on unanswered requests "
                             "before TCP backpressure pushes back")
    served.add_argument("--proba", action="store_true",
                        help="default to predict_proba for requests that "
                             "name no method")
    served.set_defaults(func=_cmd_served)

    traind = sub.add_parser(
        "traind",
        help="run the trainer daemon: tail an appendable dataset, train "
             "deltas, publish model versions",
    )
    traind.add_argument("dataset", type=str,
                        help="an appendable sharded dataset: path or shard:// spec")
    traind.add_argument("--model", type=Path, default=None,
                        help="saved model JSON to warm-start from (must "
                             "support partial_fit); omitted, a fresh "
                             "--algorithm model trains from row 0")
    traind.add_argument("--algorithm",
                        choices=["logistic", "softmax", "nb", "kmeans"],
                        default="logistic",
                        help="fresh streaming model to train when no --model "
                             "is given")
    traind.add_argument("--clusters", type=_positive_int, default=8,
                        help="cluster count (with --algorithm kmeans)")
    traind.add_argument("--name", type=str, default="default",
                        help="registry name versions are published under")
    traind.add_argument("--poll", type=float, default=0.5,
                        help="seconds between manifest-generation polls")
    traind.add_argument("--once", action="store_true",
                        help="poll exactly once and exit (batch catch-up)")
    traind.add_argument("--trained-rows", type=int, default=0,
                        help="rows the warm-start model was already fitted "
                             "on; the delta cursor starts there")
    traind.add_argument("--save-model", type=Path, default=None,
                        help="write each published version to this path as "
                             "servable JSON ('m3 serve --model' picks it up)")
    traind.add_argument("--chunk-rows", type=_positive_int, default=None,
                        help="rows per training chunk (default: auto-sized)")
    traind.add_argument("--io-workers", type=int, default=None,
                        help="parallel readers for the delta scans "
                             "(default: single-reader prefetch)")
    traind.set_defaults(func=_cmd_traind)

    figure1a = sub.add_parser("figure1a", help="regenerate Figure 1a (runtime vs size)")
    figure1a.add_argument("--sizes", type=float, nargs="+", default=[10, 40, 70, 100, 130, 160, 190])
    figure1a.set_defaults(func=_cmd_figure1a)

    figure1b = sub.add_parser("figure1b", help="regenerate Figure 1b (M3 vs Spark)")
    figure1b.add_argument("--size", type=float, default=190.0, help="dataset size in GB")
    figure1b.set_defaults(func=_cmd_figure1b)

    table1 = sub.add_parser("table1", help="run the Table 1 transparency experiment")
    table1.add_argument("--workdir", type=Path, default=None)
    table1.set_defaults(func=_cmd_table1)

    utilization = sub.add_parser("utilization", help="report simulated disk/CPU utilisation")
    utilization.add_argument("--sizes", type=float, nargs="+", default=[10, 190])
    utilization.set_defaults(func=_cmd_utilization)

    lint = sub.add_parser(
        "lint",
        help="static concurrency & resource-safety analysis (rules R001-R005)",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--select", type=str, default=None,
                      help="comma-separated rule ids to run (e.g. R001,R003; "
                           "default: all)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="report format (json is schema-stable for CI)")
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
