"""Page replacement policies.

When the simulated page cache is full, a victim page must be chosen for
eviction.  Linux uses an approximation of least-recently-used (a two-list
CLOCK-like scheme); we provide exact LRU, FIFO and CLOCK so that the ablation
benchmarks can compare them.  All policies expose the same small interface so
the cache can treat them interchangeably.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.vmem.page import Page, PageId


class ReplacementPolicy(ABC):
    """Interface for page replacement policies.

    A policy tracks the set of resident pages and, on demand, selects a victim
    to evict.  Policies never perform the eviction themselves; the cache calls
    :meth:`remove` once it has written the victim back.
    """

    @abstractmethod
    def insert(self, page: Page) -> None:
        """Register a newly loaded page."""

    @abstractmethod
    def access(self, page: Page) -> None:
        """Record an access to an already-resident page."""

    @abstractmethod
    def victim(self) -> PageId:
        """Return the page id that should be evicted next.

        Raises
        ------
        LookupError
            If the policy is tracking no pages.
        """

    @abstractmethod
    def remove(self, page_id: PageId) -> None:
        """Forget a page (after eviction or explicit invalidation)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of pages currently tracked."""

    @property
    def name(self) -> str:
        """Short human-readable policy name."""
        return type(self).__name__.replace("Policy", "").lower()


class LruPolicy(ReplacementPolicy):
    """Exact least-recently-used replacement.

    Maintains an ordered dict from page id to page; the least recently used
    page sits at the front.  This matches the behaviour the M3 paper ascribes
    to the OS page cache ("least recent used caching").
    """

    def __init__(self) -> None:
        self._order: "OrderedDict[PageId, Page]" = OrderedDict()

    def insert(self, page: Page) -> None:
        self._order[page.page_id] = page
        self._order.move_to_end(page.page_id)

    def access(self, page: Page) -> None:
        if page.page_id in self._order:
            self._order.move_to_end(page.page_id)

    def victim(self) -> PageId:
        if not self._order:
            raise LookupError("LRU policy has no pages to evict")
        page_id, _ = next(iter(self._order.items()))
        return page_id

    def remove(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def __len__(self) -> int:
        return len(self._order)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out replacement: evict the oldest loaded page."""

    def __init__(self) -> None:
        self._order: "OrderedDict[PageId, Page]" = OrderedDict()

    def insert(self, page: Page) -> None:
        # Re-inserting an existing page keeps its original position: FIFO
        # ordering is by load time, not access time.
        if page.page_id not in self._order:
            self._order[page.page_id] = page

    def access(self, page: Page) -> None:
        # FIFO ignores accesses.
        return None

    def victim(self) -> PageId:
        if not self._order:
            raise LookupError("FIFO policy has no pages to evict")
        page_id, _ = next(iter(self._order.items()))
        return page_id

    def remove(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(ReplacementPolicy):
    """CLOCK (second-chance) replacement.

    Pages are arranged in a circular list with a hand.  On eviction the hand
    sweeps forward: pages with their reference bit set get a second chance
    (the bit is cleared), the first page found with a clear bit is the victim.
    This approximates LRU with O(1) access cost, which is why real kernels use
    variants of it.
    """

    def __init__(self) -> None:
        self._pages: Dict[PageId, Page] = {}
        self._ring: List[PageId] = []
        self._hand: int = 0

    def insert(self, page: Page) -> None:
        if page.page_id not in self._pages:
            self._ring.append(page.page_id)
        self._pages[page.page_id] = page
        page.referenced = True

    def access(self, page: Page) -> None:
        tracked = self._pages.get(page.page_id)
        if tracked is not None:
            tracked.referenced = True

    def victim(self) -> PageId:
        if not self._ring:
            raise LookupError("CLOCK policy has no pages to evict")
        # Sweep at most two full revolutions: the first clears reference bits,
        # the second is then guaranteed to find a victim.
        for _ in range(2 * len(self._ring)):
            if self._hand >= len(self._ring):
                self._hand = 0
            page_id = self._ring[self._hand]
            page = self._pages[page_id]
            if page.referenced:
                page.referenced = False
                self._hand += 1
            else:
                return page_id
        # All pages were referenced twice in a row; fall back to the hand.
        if self._hand >= len(self._ring):
            self._hand = 0
        return self._ring[self._hand]

    def remove(self, page_id: PageId) -> None:
        if page_id not in self._pages:
            return
        index = self._ring.index(page_id)
        self._ring.pop(index)
        del self._pages[page_id]
        if index < self._hand:
            self._hand -= 1
        if self._hand >= len(self._ring):
            self._hand = 0

    def __len__(self) -> int:
        return len(self._ring)


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "clock": ClockPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Create a replacement policy by name (``"lru"``, ``"fifo"`` or ``"clock"``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls()
