"""The block-size / layout advisor behind ``m3 convert --auto-block``.

Choosing a v2 shard encoding means choosing two knobs — ``block_rows`` and
the row/column ``layout`` — whose goodness depends on how the dataset will be
*scanned*.  Rather than hard-coding rules of thumb, the advisor simulates the
fetch pattern each candidate encoding produces for the declared workload
(chunked streaming over some fraction of the columns), scores the resulting
page-access sequence with the cache-friendliness metrics of
:mod:`repro.vmem.locality` (SLD / TLD / miss ratio / roundtrip intervals),
and divides by the **read amplification** — coded bytes fetched per byte the
workload actually needs.  The two penalties the simulation surfaces are
exactly the real ones:

* blocks wider than the streaming chunk are re-fetched by every chunk that
  overlaps them, so oversized blocks amplify reads;
* a row-major block fetches every column, so column-subset scans over
  row-major data pay ``1 / column_fraction`` amplification — which is the
  case the column layout exists for, and tiny column segments in turn waste
  page-granularity on *full* scans.

Ties break toward the row layout and larger blocks: fewer segments means
fewer seeks and less header metadata at equal simulated cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.vmem.locality import (
    CacheFriendlinessReport,
    cache_friendliness,
    trace_to_page_sequence,
)
from repro.vmem.page import PAGE_SIZE_DEFAULT
from repro.vmem.trace import AccessTrace

#: Raw-byte block sizes tried when no explicit candidate list is given.
DEFAULT_BLOCK_BYTES_CANDIDATES = (
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
)

DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

#: Cap on simulated chunks per candidate, keeping the advisor O(seconds)
#: on billion-row geometries (the fetch pattern is periodic past this).
_MAX_SIMULATED_CHUNKS = 24


@dataclass(frozen=True)
class CandidateScore:
    """One simulated ``(block_rows, layout)`` encoding and its scores."""

    block_rows: int
    layout: str
    #: Coded bytes fetched per byte the workload needs (>= 1 is typical).
    amplification: float
    friendliness: CacheFriendlinessReport
    #: The ranking key: cache-friendliness composite / amplification.
    score: float


@dataclass(frozen=True)
class BlockAdvice:
    """The advisor's pick plus every candidate it considered, best first."""

    block_rows: int
    layout: str
    candidates: Tuple[CandidateScore, ...]

    def as_dict(self) -> dict:
        """JSON-friendly summary (for ``m3 convert --auto-block`` output)."""
        return {
            "block_rows": self.block_rows,
            "layout": self.layout,
            "candidates": [
                {
                    "block_rows": c.block_rows,
                    "layout": c.layout,
                    "amplification": c.amplification,
                    "score": c.score,
                    "spatial_locality": c.friendliness.spatial_locality,
                    "temporal_locality": c.friendliness.temporal_locality,
                    "miss_ratio": c.friendliness.miss_ratio,
                    "mean_roundtrip_interval": c.friendliness.mean_roundtrip_interval,
                }
                for c in self.candidates
            ],
        }


def _simulate_fetch_trace(
    rows: int,
    cols: int,
    itemsize: int,
    chunk_rows: int,
    wanted_cols: int,
    block_rows: int,
    layout: str,
) -> AccessTrace:
    """The byte ranges a chunked scan fetches under one candidate encoding.

    Blocks are laid out consecutively (segments within a block too), and each
    chunk independently fetches every block it overlaps — the pipeline has no
    cross-chunk payload cache on its hot path, so an overlapped block really
    is read again.
    """
    trace = AccessTrace()
    block_bytes = block_rows * cols * itemsize
    column_stride = block_rows * itemsize
    for start in range(0, rows, chunk_rows):
        stop = min(start + chunk_rows, rows)
        for block in range(start // block_rows, (stop - 1) // block_rows + 1):
            block_height = min(block_rows, rows - block * block_rows)
            base = block * block_bytes
            if layout == "row":
                trace.record(base, block_height * cols * itemsize)
            else:
                for col in range(wanted_cols):
                    trace.record(base + col * column_stride, block_height * itemsize)
    return trace


def advise_block_layout(
    rows: int,
    cols: int,
    itemsize: int = 8,
    chunk_rows: Optional[int] = None,
    column_fraction: float = 1.0,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    block_rows_candidates: Optional[Sequence[int]] = None,
    page_size: int = PAGE_SIZE_DEFAULT,
) -> BlockAdvice:
    """Pick ``block_rows`` and layout for a chunk-streamed scan workload.

    Parameters
    ----------
    rows, cols, itemsize:
        Geometry of the dataset being encoded (itemsize of the *storage*
        dtype, since that is what gets fetched).
    chunk_rows:
        The streaming chunk height the consumer will scan with; defaults to
        ~1 MiB worth of rows (the pipeline's warm-up chunk).
    column_fraction:
        Fraction of columns the workload touches per scan: ``1.0`` for
        whole-row training, smaller for feature-subset analytics.
    cache_bytes:
        Page-cache budget the miss ratio / roundtrip metrics are scored at.
    block_rows_candidates:
        Explicit ``block_rows`` values to try; defaults to
        :data:`DEFAULT_BLOCK_BYTES_CANDIDATES` converted through the row
        width.
    """
    if rows <= 0 or cols <= 0 or itemsize <= 0:
        raise ValueError(
            f"geometry must be positive, got rows={rows} cols={cols} "
            f"itemsize={itemsize}"
        )
    if not 0.0 < column_fraction <= 1.0:
        raise ValueError(f"column_fraction must be in (0, 1], got {column_fraction}")
    row_bytes = cols * itemsize
    if chunk_rows is None:
        chunk_rows = max(1, (1024 * 1024) // row_bytes)
    chunk_rows = min(chunk_rows, rows)
    wanted_cols = max(1, math.ceil(cols * column_fraction))

    if block_rows_candidates is None:
        block_rows_candidates = sorted(
            {
                max(1, min(rows, target // row_bytes))
                for target in DEFAULT_BLOCK_BYTES_CANDIDATES
            }
        )
    cache_pages = max(1, cache_bytes // page_size)
    # The fetch pattern repeats chunk over chunk; simulating a bounded prefix
    # keeps the advisor cheap without changing the ranking.
    sample_rows = min(rows, chunk_rows * _MAX_SIMULATED_CHUNKS)
    bytes_needed = sample_rows * wanted_cols * itemsize

    scored: List[CandidateScore] = []
    for block_rows in block_rows_candidates:
        if block_rows <= 0:
            raise ValueError(f"block_rows candidates must be positive, got {block_rows}")
        for layout in ("row", "column"):
            trace = _simulate_fetch_trace(
                sample_rows, cols, itemsize, chunk_rows, wanted_cols,
                int(block_rows), layout,
            )
            pages = trace_to_page_sequence(trace, page_size)
            report = cache_friendliness(pages, cache_pages)
            fetched = len(pages) * page_size
            amplification = max(fetched / bytes_needed, 1e-9)
            scored.append(
                CandidateScore(
                    block_rows=int(block_rows),
                    layout=layout,
                    amplification=amplification,
                    friendliness=report,
                    score=report.score / amplification,
                )
            )
    scored.sort(
        key=lambda c: (-c.score, 0 if c.layout == "row" else 1, -c.block_rows)
    )
    best = scored[0]
    return BlockAdvice(
        block_rows=best.block_rows, layout=best.layout, candidates=tuple(scored)
    )
