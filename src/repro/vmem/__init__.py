"""Virtual-memory substrate: page cache, replacement policies, disk model.

The M3 paper relies on the operating system's virtual memory subsystem: a
memory-mapped file is paged in and out of RAM on demand, with read-ahead and
least-recently-used caching performed by the kernel.  The paper's experiments
ran on a desktop with 32 GB of RAM and a 1 TB SSD against datasets of up to
190 GB — hardware we do not have.  This package provides a deterministic,
configurable simulator of exactly that machinery so that the *shape* of the
paper's results (linear scaling with a slope change at the RAM boundary,
I/O-bound execution) can be reproduced at any scale.

The main entry point is :class:`~repro.vmem.vm_simulator.VirtualMemorySimulator`,
which combines a :class:`~repro.vmem.page_table.PageTable`, a
:class:`~repro.vmem.page_cache.PageCache` (with a pluggable replacement policy
and read-ahead window) and a :class:`~repro.vmem.disk.DiskModel`.  Access
traces can be recorded with :class:`~repro.vmem.trace.AccessTrace` and replayed
under different configurations.
"""

from repro.vmem.page import PAGE_SIZE_DEFAULT, Page, PageId
from repro.vmem.page_table import PageTable, PageTableEntry
from repro.vmem.replacement import (
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.vmem.readahead import (
    AdaptiveReadAhead,
    FixedReadAhead,
    NoReadAhead,
    PipelinedReadAhead,
    ReadAheadPolicy,
)
from repro.vmem.disk import DiskModel, DiskProfile, HDD_7200RPM, NVME_SSD, SATA_SSD
from repro.vmem.page_cache import PageCache, PageCacheConfig
from repro.vmem.stats import IoStats, PageCacheStats, UtilizationSample, UtilizationTimeline
from repro.vmem.trace import AccessKind, AccessRecord, AccessTrace
from repro.vmem.locality import (
    LocalityReport,
    MissRatioCurve,
    analyze_trace,
    build_miss_ratio_curve,
    reuse_distances,
    working_set_sizes,
)
from repro.vmem.vm_simulator import VirtualMemoryConfig, VirtualMemorySimulator

__all__ = [
    "PAGE_SIZE_DEFAULT",
    "Page",
    "PageId",
    "PageTable",
    "PageTableEntry",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "ClockPolicy",
    "make_policy",
    "ReadAheadPolicy",
    "NoReadAhead",
    "FixedReadAhead",
    "AdaptiveReadAhead",
    "PipelinedReadAhead",
    "DiskModel",
    "DiskProfile",
    "SATA_SSD",
    "NVME_SSD",
    "HDD_7200RPM",
    "PageCache",
    "PageCacheConfig",
    "PageCacheStats",
    "IoStats",
    "UtilizationSample",
    "UtilizationTimeline",
    "AccessKind",
    "AccessRecord",
    "AccessTrace",
    "LocalityReport",
    "MissRatioCurve",
    "analyze_trace",
    "build_miss_ratio_curve",
    "reuse_distances",
    "working_set_sizes",
    "VirtualMemoryConfig",
    "VirtualMemorySimulator",
]
