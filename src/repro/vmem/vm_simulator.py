"""The virtual-memory simulator.

:class:`VirtualMemorySimulator` replays an :class:`~repro.vmem.trace.AccessTrace`
(or accepts live accesses) against a configured :class:`~repro.vmem.page_cache.PageCache`
and produces the aggregate accounting — simulated wall time, I/O time, CPU
time, utilisation timeline and page cache statistics — that the benchmark
harness turns into the paper's figures.

This is the substitution for the paper's physical testbed (32 GB desktop,
OCZ PCIe SSD, 190 GB dataset): the same chunked access pattern that the real
algorithms perform on laptop-scale `numpy.memmap` data is replayed here with
the paper's RAM size and dataset sizes to obtain paper-scale runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.vmem.disk import DiskProfile, NVME_SSD, get_profile
from repro.vmem.page import PAGE_SIZE_DEFAULT
from repro.vmem.page_cache import PageCache, PageCacheConfig
from repro.vmem.readahead import AdaptiveReadAhead, NoReadAhead, ReadAheadPolicy
from repro.vmem.stats import IoStats, UtilizationSample, UtilizationTimeline
from repro.vmem.trace import AccessKind, AccessTrace


GIB = 1024 ** 3
"""One gibibyte in bytes."""


@dataclass
class VirtualMemoryConfig:
    """Full configuration of a simulated machine's memory hierarchy.

    The defaults reproduce the paper's desktop: 32 GB of RAM, a PCIe SSD,
    4 KiB pages, LRU replacement and adaptive read-ahead.  ``ram_bytes`` is
    the memory available *to the page cache*; the experiments in the paper
    treat the full 32 GB as available, and so do we.
    """

    ram_bytes: int = 32 * GIB
    page_size: int = PAGE_SIZE_DEFAULT
    replacement: str = "lru"
    readahead: Optional[ReadAheadPolicy] = None
    disk_profile: Union[str, DiskProfile] = NVME_SSD
    raid_factor: int = 1
    cpu_cores: int = 8
    cpu_flops: float = 50e9
    sample_interval_s: float = 1.0

    def resolve_disk_profile(self) -> DiskProfile:
        """Return the disk profile, resolving a name to a built-in profile."""
        if isinstance(self.disk_profile, str):
            return get_profile(self.disk_profile)
        return self.disk_profile

    def make_cache_config(self) -> PageCacheConfig:
        """Build the corresponding :class:`PageCacheConfig`."""
        return PageCacheConfig(
            ram_bytes=self.ram_bytes,
            page_size=self.page_size,
            replacement=self.replacement,
            readahead=self.readahead,
            disk_profile=self.resolve_disk_profile(),
            raid_factor=self.raid_factor,
        )


@dataclass
class SimulationResult:
    """Outcome of replaying a trace through the simulator."""

    wall_time_s: float
    io_stats: IoStats
    cache_stats_dict: dict
    timeline: UtilizationTimeline = field(default_factory=UtilizationTimeline)

    @property
    def io_utilization(self) -> float:
        """Fraction of wall time the disk was busy (0–1)."""
        return self.io_stats.io_utilization

    @property
    def cpu_utilization(self) -> float:
        """Fraction of wall time the CPU was busy (0–1)."""
        return self.io_stats.cpu_utilization


class VirtualMemorySimulator:
    """Replays memory accesses against a simulated machine.

    Examples
    --------
    >>> from repro.vmem import VirtualMemorySimulator, VirtualMemoryConfig, AccessTrace
    >>> trace = AccessTrace()
    >>> trace.record(0, 8 * 4096, cpu_cost_s=0.001)
    >>> sim = VirtualMemorySimulator(VirtualMemoryConfig(ram_bytes=1 << 20))
    >>> result = sim.run_trace(trace, file_bytes=8 * 4096)
    >>> result.wall_time_s > 0
    True
    """

    def __init__(self, config: Optional[VirtualMemoryConfig] = None) -> None:
        self.config = config or VirtualMemoryConfig()
        self.cache = PageCache(self.config.make_cache_config())
        self._cpu_time_s = 0.0
        self._io_time_s = 0.0

    # -- live access API -------------------------------------------------------

    def access(
        self,
        offset: int,
        length: int,
        kind: Union[AccessKind, str] = AccessKind.READ,
        cpu_cost_s: float = 0.0,
    ) -> float:
        """Perform a live access; returns the simulated time it took."""
        if isinstance(kind, str):
            kind = AccessKind(kind)
        io_time = self.cache.access_range(offset, length, write=(kind is AccessKind.WRITE))
        self._io_time_s += io_time
        self._cpu_time_s += cpu_cost_s
        return io_time + cpu_cost_s

    def charge_cpu(self, seconds: float) -> None:
        """Charge pure compute time not associated with a memory access."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._cpu_time_s += seconds

    @property
    def elapsed_s(self) -> float:
        """Simulated wall time so far (CPU + I/O, non-overlapping)."""
        return self._cpu_time_s + self._io_time_s

    def io_stats(self) -> IoStats:
        """Aggregate I/O statistics for the accesses performed so far."""
        disk = self.cache.disk
        return IoStats(
            bytes_read=disk.bytes_read,
            bytes_written=disk.bytes_written,
            read_requests=disk.read_requests,
            write_requests=disk.write_requests,
            io_time_s=self._io_time_s,
            cpu_time_s=self._cpu_time_s,
        )

    def reset(self) -> None:
        """Reset all time accounting and cache contents."""
        self.cache = PageCache(self.config.make_cache_config())
        self._cpu_time_s = 0.0
        self._io_time_s = 0.0

    # -- trace replay ----------------------------------------------------------

    def run_trace(
        self,
        trace: AccessTrace,
        file_bytes: Optional[int] = None,
        cold_cache: bool = True,
    ) -> SimulationResult:
        """Replay ``trace`` and return the simulated accounting.

        Parameters
        ----------
        trace:
            The access trace to replay.
        file_bytes:
            Size of the mapped file.  Defaults to the largest offset in the
            trace.  Bounds read-ahead so the simulator never prefetches past
            end-of-file.
        cold_cache:
            If true (default) the cache is emptied before replay, modelling a
            freshly-booted machine as in the paper's experiments.
        """
        if cold_cache:
            self.reset()
        if file_bytes is None:
            file_bytes = trace.max_offset
        self.cache.set_file_size(file_bytes)

        timeline = UtilizationTimeline()
        next_sample_at = self.config.sample_interval_s
        window_io = 0.0
        window_cpu = 0.0

        for record in trace:
            io_time = self.cache.access_range(
                record.offset, record.length, write=(record.kind is AccessKind.WRITE)
            )
            self._io_time_s += io_time
            self._cpu_time_s += record.cpu_cost_s
            window_io += io_time
            window_cpu += record.cpu_cost_s

            while self.elapsed_s >= next_sample_at:
                window_total = window_io + window_cpu
                timeline.add(
                    UtilizationSample(
                        time_s=next_sample_at,
                        cpu_utilization=(window_cpu / window_total) if window_total else 0.0,
                        disk_utilization=(window_io / window_total) if window_total else 0.0,
                        resident_bytes=self.cache.resident_bytes,
                    )
                )
                next_sample_at += self.config.sample_interval_s
                window_io = 0.0
                window_cpu = 0.0

        stats = self.io_stats()
        return SimulationResult(
            wall_time_s=stats.total_time_s,
            io_stats=stats,
            cache_stats_dict=self.cache.stats.as_dict(),
            timeline=timeline,
        )
