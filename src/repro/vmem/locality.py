"""Memory-access locality analysis.

The paper's ongoing work proposes to "extensively study the memory access
patterns and locality of algorithms (e.g., sequential scans vs random access)
to better understand how they affect performance".  This module implements the
standard tools for that study on top of :class:`~repro.vmem.trace.AccessTrace`:

* **Reuse distances** — for every page access, the number of *distinct* pages
  touched since the previous access to the same page (∞ for first accesses).
  Under LRU, an access hits if and only if its reuse distance is smaller than
  the cache capacity in pages, so the histogram of reuse distances fully
  determines the miss ratio at *every* possible RAM size.
* **Miss-ratio curves** — the fraction of accesses that miss as a function of
  cache size, computed in one pass from the reuse-distance histogram (the
  Mattson stack algorithm).  This is how the benchmark harness can answer
  "how much RAM would this algorithm need to stop being I/O bound?" without
  re-running the simulator once per RAM size.
* **Working-set sizes** — the number of distinct pages touched in a window of
  the trace (Denning's working set), summarising how much of the file the
  algorithm actively needs at a time.

The implementation uses a Fenwick (binary indexed) tree over access recency so
reuse distances for a trace with ``n`` page accesses cost ``O(n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.vmem.page import PAGE_SIZE_DEFAULT, PageId, pages_for_range
from repro.vmem.trace import AccessTrace

INFINITE_DISTANCE = -1
"""Sentinel reuse distance for the first access to a page."""


class _FenwickTree:
    """A Fenwick tree supporting point updates and prefix sums."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at position ``index`` (0-based)."""
        position = index + 1
        while position <= self._size:
            self._tree[position] += delta
            position += position & (-position)

    def prefix_sum(self, index: int) -> int:
        """Sum of positions ``0..index`` inclusive (0-based)."""
        position = index + 1
        total = 0
        while position > 0:
            total += self._tree[position]
            position -= position & (-position)
        return total


def trace_to_page_sequence(
    trace: AccessTrace, page_size: int = PAGE_SIZE_DEFAULT
) -> List[PageId]:
    """Flatten a byte-range trace into the sequence of page ids it touches."""
    sequence: List[PageId] = []
    for record in trace:
        sequence.extend(pages_for_range(record.offset, record.length, page_size))
    return sequence


def reuse_distances(page_sequence: Sequence[PageId]) -> List[int]:
    """LRU reuse distance of every access in ``page_sequence``.

    The reuse distance of an access is the number of *distinct* pages accessed
    since the previous access to the same page; first accesses get
    :data:`INFINITE_DISTANCE`.
    """
    n = len(page_sequence)
    tree = _FenwickTree(n)
    last_position: Dict[PageId, int] = {}
    distances: List[int] = []
    for position, page in enumerate(page_sequence):
        previous = last_position.get(page)
        if previous is None:
            distances.append(INFINITE_DISTANCE)
        else:
            # Distinct pages touched strictly between the two accesses:
            # each distinct page contributes its most recent access (a "1" in
            # the tree), so the count is a prefix-sum difference.
            distinct = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            distances.append(distinct)
            tree.add(previous, -1)
        tree.add(position, +1)
        last_position[page] = position
    return distances


@dataclass
class MissRatioCurve:
    """Miss ratio as a function of LRU cache size (in pages).

    Attributes
    ----------
    total_accesses:
        Number of page accesses in the analysed trace.
    cold_misses:
        Accesses with infinite reuse distance (first touches); these miss at
        every cache size.
    histogram:
        ``histogram[d]`` = number of accesses with finite reuse distance ``d``.
    page_size:
        Page size the analysis used.
    """

    total_accesses: int
    cold_misses: int
    histogram: Dict[int, int] = field(default_factory=dict)
    page_size: int = PAGE_SIZE_DEFAULT

    def miss_ratio(self, cache_pages: int) -> float:
        """Fraction of accesses that miss with an LRU cache of ``cache_pages`` pages."""
        if cache_pages < 0:
            raise ValueError("cache_pages must be non-negative")
        if self.total_accesses == 0:
            return 0.0
        misses = self.cold_misses + sum(
            count for distance, count in self.histogram.items() if distance >= cache_pages
        )
        return misses / self.total_accesses

    def miss_ratio_for_bytes(self, ram_bytes: int) -> float:
        """Miss ratio for a cache of ``ram_bytes`` bytes."""
        return self.miss_ratio(ram_bytes // self.page_size)

    def minimum_pages_for_hit_ratio(self, target_hit_ratio: float) -> Optional[int]:
        """Smallest cache size (pages) achieving at least ``target_hit_ratio``.

        Returns ``None`` if even an infinite cache cannot reach the target
        (because of cold misses).
        """
        if not 0.0 <= target_hit_ratio <= 1.0:
            raise ValueError("target_hit_ratio must be in [0, 1]")
        if self.total_accesses == 0:
            return 0
        best_possible = 1.0 - self.cold_misses / self.total_accesses
        if best_possible + 1e-12 < target_hit_ratio:
            return None
        candidate_sizes = sorted({0, *[d + 1 for d in self.histogram]})
        for size in candidate_sizes:
            if 1.0 - self.miss_ratio(size) >= target_hit_ratio - 1e-12:
                return size
        return max(self.histogram, default=0) + 1

    @property
    def compulsory_miss_ratio(self) -> float:
        """Miss ratio of an infinitely large cache (cold misses only)."""
        if self.total_accesses == 0:
            return 0.0
        return self.cold_misses / self.total_accesses


def build_miss_ratio_curve(
    trace: AccessTrace, page_size: int = PAGE_SIZE_DEFAULT
) -> MissRatioCurve:
    """Analyse ``trace`` and return its LRU :class:`MissRatioCurve`."""
    sequence = trace_to_page_sequence(trace, page_size)
    distances = reuse_distances(sequence)
    histogram: Dict[int, int] = {}
    cold = 0
    for distance in distances:
        if distance == INFINITE_DISTANCE:
            cold += 1
        else:
            histogram[distance] = histogram.get(distance, 0) + 1
    return MissRatioCurve(
        total_accesses=len(sequence),
        cold_misses=cold,
        histogram=histogram,
        page_size=page_size,
    )


def working_set_sizes(
    page_sequence: Sequence[PageId], window: int
) -> List[int]:
    """Denning working-set sizes: distinct pages in each sliding window.

    Parameters
    ----------
    page_sequence:
        The page access sequence.
    window:
        Window length in accesses.  Windows shorter than ``window`` at the end
        of the trace are not reported.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    n = len(page_sequence)
    if n < window:
        return []
    counts: Dict[PageId, int] = {}
    sizes: List[int] = []
    for index, page in enumerate(page_sequence):
        counts[page] = counts.get(page, 0) + 1
        if index >= window:
            evicted = page_sequence[index - window]
            counts[evicted] -= 1
            if counts[evicted] == 0:
                del counts[evicted]
        if index >= window - 1:
            sizes.append(len(counts))
    return sizes


@dataclass(frozen=True)
class LocalityReport:
    """Summary of a trace's locality characteristics."""

    sequential_fraction: float
    distinct_pages: int
    total_page_accesses: int
    compulsory_miss_ratio: float
    mean_working_set: float
    ram_for_90_percent_hits_bytes: Optional[int]

    @property
    def access_pattern(self) -> str:
        """Coarse classification: ``"sequential"``, ``"mixed"`` or ``"random"``."""
        if self.sequential_fraction >= 0.8:
            return "sequential"
        if self.sequential_fraction >= 0.3:
            return "mixed"
        return "random"


def analyze_trace(
    trace: AccessTrace,
    page_size: int = PAGE_SIZE_DEFAULT,
    working_set_window: int = 1024,
) -> LocalityReport:
    """Produce a :class:`LocalityReport` for ``trace``.

    This is the entry point the paper's "study the memory access patterns and
    locality of algorithms" agenda calls for: it classifies the pattern,
    quantifies reuse, and answers how much RAM the algorithm would need for
    the page cache to absorb 90 % of its accesses.
    """
    sequence = trace_to_page_sequence(trace, page_size)
    curve = build_miss_ratio_curve(trace, page_size)
    window = min(working_set_window, max(1, len(sequence)))
    sets = working_set_sizes(sequence, window)
    mean_ws = sum(sets) / len(sets) if sets else float(len(set(sequence)))
    pages_needed = curve.minimum_pages_for_hit_ratio(0.9)
    return LocalityReport(
        sequential_fraction=trace.sequential_fraction(),
        distinct_pages=len(set(sequence)),
        total_page_accesses=len(sequence),
        compulsory_miss_ratio=curve.compulsory_miss_ratio,
        mean_working_set=mean_ws,
        ram_for_90_percent_hits_bytes=(
            pages_needed * page_size if pages_needed is not None else None
        ),
    )
