"""Memory-access locality analysis.

The paper's ongoing work proposes to "extensively study the memory access
patterns and locality of algorithms (e.g., sequential scans vs random access)
to better understand how they affect performance".  This module implements the
standard tools for that study on top of :class:`~repro.vmem.trace.AccessTrace`:

* **Reuse distances** — for every page access, the number of *distinct* pages
  touched since the previous access to the same page (∞ for first accesses).
  Under LRU, an access hits if and only if its reuse distance is smaller than
  the cache capacity in pages, so the histogram of reuse distances fully
  determines the miss ratio at *every* possible RAM size.
* **Miss-ratio curves** — the fraction of accesses that miss as a function of
  cache size, computed in one pass from the reuse-distance histogram (the
  Mattson stack algorithm).  This is how the benchmark harness can answer
  "how much RAM would this algorithm need to stop being I/O bound?" without
  re-running the simulator once per RAM size.
* **Working-set sizes** — the number of distinct pages touched in a window of
  the trace (Denning's working set), summarising how much of the file the
  algorithm actively needs at a time.

The implementation uses a Fenwick (binary indexed) tree over access recency so
reuse distances for a trace with ``n`` page accesses cost ``O(n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.vmem.page import PAGE_SIZE_DEFAULT, PageId, pages_for_range
from repro.vmem.trace import AccessTrace

INFINITE_DISTANCE = -1
"""Sentinel reuse distance for the first access to a page."""


class _FenwickTree:
    """A Fenwick tree supporting point updates and prefix sums."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at position ``index`` (0-based)."""
        position = index + 1
        while position <= self._size:
            self._tree[position] += delta
            position += position & (-position)

    def prefix_sum(self, index: int) -> int:
        """Sum of positions ``0..index`` inclusive (0-based)."""
        position = index + 1
        total = 0
        while position > 0:
            total += self._tree[position]
            position -= position & (-position)
        return total


def trace_to_page_sequence(
    trace: AccessTrace, page_size: int = PAGE_SIZE_DEFAULT
) -> List[PageId]:
    """Flatten a byte-range trace into the sequence of page ids it touches."""
    sequence: List[PageId] = []
    for record in trace:
        sequence.extend(pages_for_range(record.offset, record.length, page_size))
    return sequence


def reuse_distances(page_sequence: Sequence[PageId]) -> List[int]:
    """LRU reuse distance of every access in ``page_sequence``.

    The reuse distance of an access is the number of *distinct* pages accessed
    since the previous access to the same page; first accesses get
    :data:`INFINITE_DISTANCE`.
    """
    n = len(page_sequence)
    tree = _FenwickTree(n)
    last_position: Dict[PageId, int] = {}
    distances: List[int] = []
    for position, page in enumerate(page_sequence):
        previous = last_position.get(page)
        if previous is None:
            distances.append(INFINITE_DISTANCE)
        else:
            # Distinct pages touched strictly between the two accesses:
            # each distinct page contributes its most recent access (a "1" in
            # the tree), so the count is a prefix-sum difference.
            distinct = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            distances.append(distinct)
            tree.add(previous, -1)
        tree.add(position, +1)
        last_position[page] = position
    return distances


@dataclass
class MissRatioCurve:
    """Miss ratio as a function of LRU cache size (in pages).

    Attributes
    ----------
    total_accesses:
        Number of page accesses in the analysed trace.
    cold_misses:
        Accesses with infinite reuse distance (first touches); these miss at
        every cache size.
    histogram:
        ``histogram[d]`` = number of accesses with finite reuse distance ``d``.
    page_size:
        Page size the analysis used.
    """

    total_accesses: int
    cold_misses: int
    histogram: Dict[int, int] = field(default_factory=dict)
    page_size: int = PAGE_SIZE_DEFAULT

    def miss_ratio(self, cache_pages: int) -> float:
        """Fraction of accesses that miss with an LRU cache of ``cache_pages`` pages."""
        if cache_pages < 0:
            raise ValueError("cache_pages must be non-negative")
        if self.total_accesses == 0:
            return 0.0
        misses = self.cold_misses + sum(
            count for distance, count in self.histogram.items() if distance >= cache_pages
        )
        return misses / self.total_accesses

    def miss_ratio_for_bytes(self, ram_bytes: int) -> float:
        """Miss ratio for a cache of ``ram_bytes`` bytes."""
        return self.miss_ratio(ram_bytes // self.page_size)

    def minimum_pages_for_hit_ratio(self, target_hit_ratio: float) -> Optional[int]:
        """Smallest cache size (pages) achieving at least ``target_hit_ratio``.

        Returns ``None`` if even an infinite cache cannot reach the target
        (because of cold misses).
        """
        if not 0.0 <= target_hit_ratio <= 1.0:
            raise ValueError("target_hit_ratio must be in [0, 1]")
        if self.total_accesses == 0:
            return 0
        best_possible = 1.0 - self.cold_misses / self.total_accesses
        if best_possible + 1e-12 < target_hit_ratio:
            return None
        candidate_sizes = sorted({0, *[d + 1 for d in self.histogram]})
        for size in candidate_sizes:
            if 1.0 - self.miss_ratio(size) >= target_hit_ratio - 1e-12:
                return size
        return max(self.histogram, default=0) + 1

    @property
    def compulsory_miss_ratio(self) -> float:
        """Miss ratio of an infinitely large cache (cold misses only)."""
        if self.total_accesses == 0:
            return 0.0
        return self.cold_misses / self.total_accesses


def build_miss_ratio_curve(
    trace: AccessTrace, page_size: int = PAGE_SIZE_DEFAULT
) -> MissRatioCurve:
    """Analyse ``trace`` and return its LRU :class:`MissRatioCurve`."""
    sequence = trace_to_page_sequence(trace, page_size)
    distances = reuse_distances(sequence)
    histogram: Dict[int, int] = {}
    cold = 0
    for distance in distances:
        if distance == INFINITE_DISTANCE:
            cold += 1
        else:
            histogram[distance] = histogram.get(distance, 0) + 1
    return MissRatioCurve(
        total_accesses=len(sequence),
        cold_misses=cold,
        histogram=histogram,
        page_size=page_size,
    )


def working_set_sizes(
    page_sequence: Sequence[PageId], window: int
) -> List[int]:
    """Denning working-set sizes: distinct pages in each sliding window.

    Parameters
    ----------
    page_sequence:
        The page access sequence.
    window:
        Window length in accesses.  Windows shorter than ``window`` at the end
        of the trace are not reported.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    n = len(page_sequence)
    if n < window:
        return []
    counts: Dict[PageId, int] = {}
    sizes: List[int] = []
    for index, page in enumerate(page_sequence):
        counts[page] = counts.get(page, 0) + 1
        if index >= window:
            evicted = page_sequence[index - window]
            counts[evicted] -= 1
            if counts[evicted] == 0:
                del counts[evicted]
        if index >= window - 1:
            sizes.append(len(counts))
    return sizes


@dataclass(frozen=True)
class LocalityReport:
    """Summary of a trace's locality characteristics."""

    sequential_fraction: float
    distinct_pages: int
    total_page_accesses: int
    compulsory_miss_ratio: float
    mean_working_set: float
    ram_for_90_percent_hits_bytes: Optional[int]

    @property
    def access_pattern(self) -> str:
        """Coarse classification: ``"sequential"``, ``"mixed"`` or ``"random"``."""
        if self.sequential_fraction >= 0.8:
            return "sequential"
        if self.sequential_fraction >= 0.3:
            return "mixed"
        return "random"


def spatial_locality_degree(page_sequence: Sequence[PageId]) -> float:
    """SLD: how close consecutive accesses are in the address space, in [0, 1].

    Each consecutive pair contributes ``1 / (1 + |delta - 1|)`` where
    ``delta`` is the page-id stride: a perfect forward scan (stride 1) scores
    1.0, re-touching the same page (stride 0) scores 0.5, and far jumps decay
    toward 0.  The mean over all pairs is the mapanalyzer-style spatial
    locality degree: high SLD means OS readahead and block-granular fetch
    both pay off.
    """
    if len(page_sequence) < 2:
        return 1.0
    total = 0.0
    for previous, current in zip(page_sequence, page_sequence[1:]):
        total += 1.0 / (1.0 + abs((current - previous) - 1))
    return total / (len(page_sequence) - 1)


def temporal_locality_degree(page_sequence: Sequence[PageId]) -> float:
    """TLD: how soon pages are re-touched after first use, in [0, 1].

    Every access contributes ``1 / (1 + d)`` where ``d`` is its LRU reuse
    distance; first touches (infinite distance) contribute 0.  A tight inner
    loop over a few pages scores near 1; a one-pass scan scores 0 — it has
    *no* temporal reuse, which is exactly why scans want streaming eviction
    rather than LRU retention.
    """
    if not page_sequence:
        return 0.0
    total = 0.0
    for distance in reuse_distances(page_sequence):
        if distance != INFINITE_DISTANCE:
            total += 1.0 / (1.0 + distance)
    return total / len(page_sequence)


def roundtrip_intervals(
    page_sequence: Sequence[PageId], cache_pages: int
) -> List[int]:
    """MRI: access-count gaps between a page's eviction and its re-fetch.

    Simulates an LRU cache of ``cache_pages`` pages over the sequence and
    records, for every miss on a *previously evicted* page, how many accesses
    ago that page was evicted.  Short roundtrip intervals are the signature
    of premature eviction — the cache is just slightly too small (or the
    layout just slightly too scattered) for the reuse pattern, the
    costliest regime for a paging system.
    """
    if cache_pages <= 0:
        raise ValueError("cache_pages must be positive")
    cache: "Dict[PageId, bool]" = {}  # insertion-ordered: LRU via re-insert
    evicted_at: Dict[PageId, int] = {}
    intervals: List[int] = []
    for position, page in enumerate(page_sequence):
        if page in cache:
            del cache[page]  # re-insert below to refresh recency
        else:
            eviction = evicted_at.pop(page, None)
            if eviction is not None:
                intervals.append(position - eviction)
            if len(cache) >= cache_pages:
                victim = next(iter(cache))
                del cache[victim]
                evicted_at[victim] = position
        cache[page] = True
    return intervals


@dataclass(frozen=True)
class CacheFriendlinessReport:
    """The mapanalyzer-style cache-friendliness scorecard of one access trace.

    Combines the four metrics the block-size/layout advisor ranks candidate
    encodings by: spatial locality (does the layout keep consecutive touches
    adjacent?), temporal locality (is reuse captured while pages are still
    resident?), the miss ratio at the cache size under study, and the mean
    eviction-to-refetch roundtrip interval (are we evicting pages we are
    just about to need again?).
    """

    spatial_locality: float
    temporal_locality: float
    miss_ratio: float
    cache_pages: int
    roundtrips: int
    mean_roundtrip_interval: Optional[float]
    total_page_accesses: int

    @property
    def score(self) -> float:
        """Composite friendliness in [0, 1]: locality up, misses down.

        Hit ratio carries half the weight (it is the end-to-end outcome);
        spatial and temporal locality share the other half (they explain
        *why* and generalise across nearby cache sizes).
        """
        hit = 1.0 - self.miss_ratio
        return 0.5 * hit + 0.25 * self.spatial_locality + 0.25 * self.temporal_locality


def cache_friendliness(
    page_sequence: Sequence[PageId], cache_pages: int
) -> CacheFriendlinessReport:
    """Score ``page_sequence`` against an LRU cache of ``cache_pages`` pages."""
    if cache_pages <= 0:
        raise ValueError("cache_pages must be positive")
    distances = reuse_distances(page_sequence)
    total = len(page_sequence)
    misses = sum(
        1
        for distance in distances
        if distance == INFINITE_DISTANCE or distance >= cache_pages
    )
    intervals = roundtrip_intervals(page_sequence, cache_pages)
    return CacheFriendlinessReport(
        spatial_locality=spatial_locality_degree(page_sequence),
        temporal_locality=temporal_locality_degree(page_sequence),
        miss_ratio=(misses / total) if total else 0.0,
        cache_pages=cache_pages,
        roundtrips=len(intervals),
        mean_roundtrip_interval=(
            sum(intervals) / len(intervals) if intervals else None
        ),
        total_page_accesses=total,
    )


def analyze_trace(
    trace: AccessTrace,
    page_size: int = PAGE_SIZE_DEFAULT,
    working_set_window: int = 1024,
) -> LocalityReport:
    """Produce a :class:`LocalityReport` for ``trace``.

    This is the entry point the paper's "study the memory access patterns and
    locality of algorithms" agenda calls for: it classifies the pattern,
    quantifies reuse, and answers how much RAM the algorithm would need for
    the page cache to absorb 90 % of its accesses.
    """
    sequence = trace_to_page_sequence(trace, page_size)
    curve = build_miss_ratio_curve(trace, page_size)
    window = min(working_set_window, max(1, len(sequence)))
    sets = working_set_sizes(sequence, window)
    mean_ws = sum(sets) / len(sets) if sets else float(len(set(sequence)))
    pages_needed = curve.minimum_pages_for_hit_ratio(0.9)
    return LocalityReport(
        sequential_fraction=trace.sequential_fraction(),
        distinct_pages=len(set(sequence)),
        total_page_accesses=len(sequence),
        compulsory_miss_ratio=curve.compulsory_miss_ratio,
        mean_working_set=mean_ws,
        ram_for_90_percent_hits_bytes=(
            pages_needed * page_size if pages_needed is not None else None
        ),
    )
