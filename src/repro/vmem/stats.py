"""Statistics containers for the virtual-memory simulator.

The paper's first key finding is about *where time goes*: "disk I/O was 100 %
utilized while CPU was only utilized at around 13 %".  These dataclasses
collect the counters needed to reproduce that observation — page cache hits
and faults, bytes moved, and a timeline of CPU/disk utilisation samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PageCacheStats:
    """Hit/miss counters for the simulated page cache."""

    hits: int = 0
    major_faults: int = 0
    prefetched_pages: int = 0
    prefetch_hits: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total page accesses (hits + major faults)."""
        return self.hits + self.major_faults

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache (0–1); 0 when no accesses."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def fault_rate(self) -> float:
        """Fraction of accesses that caused a major fault (0–1)."""
        total = self.accesses
        return self.major_faults / total if total else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched pages that were subsequently used."""
        return self.prefetch_hits / self.prefetched_pages if self.prefetched_pages else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary representation, convenient for reports and tests."""
        return {
            "hits": self.hits,
            "major_faults": self.major_faults,
            "prefetched_pages": self.prefetched_pages,
            "prefetch_hits": self.prefetch_hits,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "hit_rate": self.hit_rate,
            "fault_rate": self.fault_rate,
            "prefetch_accuracy": self.prefetch_accuracy,
        }


@dataclass
class IoStats:
    """Aggregate I/O accounting produced by a simulated run."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_requests: int = 0
    write_requests: int = 0
    io_time_s: float = 0.0
    cpu_time_s: float = 0.0

    @property
    def total_time_s(self) -> float:
        """Total simulated wall time (I/O + CPU), assuming no overlap.

        The paper reports M3 as strongly I/O bound, so modelling I/O and CPU
        as non-overlapping is a small, conservative simplification.
        """
        return self.io_time_s + self.cpu_time_s

    @property
    def io_utilization(self) -> float:
        """Fraction of wall time spent in I/O (0–1)."""
        total = self.total_time_s
        return self.io_time_s / total if total else 0.0

    @property
    def cpu_utilization(self) -> float:
        """Fraction of wall time spent computing (0–1)."""
        total = self.total_time_s
        return self.cpu_time_s / total if total else 0.0

    def merge(self, other: "IoStats") -> "IoStats":
        """Return a new :class:`IoStats` combining this one with ``other``."""
        return IoStats(
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            read_requests=self.read_requests + other.read_requests,
            write_requests=self.write_requests + other.write_requests,
            io_time_s=self.io_time_s + other.io_time_s,
            cpu_time_s=self.cpu_time_s + other.cpu_time_s,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary representation."""
        return {
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "read_requests": self.read_requests,
            "write_requests": self.write_requests,
            "io_time_s": self.io_time_s,
            "cpu_time_s": self.cpu_time_s,
            "total_time_s": self.total_time_s,
            "io_utilization": self.io_utilization,
            "cpu_utilization": self.cpu_utilization,
        }


@dataclass
class UtilizationSample:
    """A single point on the utilisation timeline."""

    time_s: float
    cpu_utilization: float
    disk_utilization: float
    resident_bytes: int


@dataclass
class UtilizationTimeline:
    """A time series of utilisation samples taken during a simulated run."""

    samples: List[UtilizationSample] = field(default_factory=list)

    def add(self, sample: UtilizationSample) -> None:
        """Append a sample (samples should be added in time order)."""
        self.samples.append(sample)

    @property
    def mean_cpu_utilization(self) -> float:
        """Mean CPU utilisation across samples (0–1); 0 when empty."""
        if not self.samples:
            return 0.0
        return sum(s.cpu_utilization for s in self.samples) / len(self.samples)

    @property
    def mean_disk_utilization(self) -> float:
        """Mean disk utilisation across samples (0–1); 0 when empty."""
        if not self.samples:
            return 0.0
        return sum(s.disk_utilization for s in self.samples) / len(self.samples)

    @property
    def peak_resident_bytes(self) -> int:
        """Largest resident-set size observed."""
        return max((s.resident_bytes for s in self.samples), default=0)

    def __len__(self) -> int:
        return len(self.samples)
