"""A minimal page table mapping page ids to residency information.

The real kernel maps virtual addresses to physical frames; for the purposes of
the M3 reproduction we only need to know, for every page of the mapped file,
whether it is currently resident in the (simulated) page cache and some
bookkeeping used by replacement policies and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.vmem.page import Page, PageId


@dataclass
class PageTableEntry:
    """Residency record for a single page.

    Attributes
    ----------
    page:
        The resident :class:`~repro.vmem.page.Page`, or ``None`` if the page
        is not currently in RAM.
    faults:
        Number of major faults this page has caused (times it was loaded).
    evictions:
        Number of times the page has been evicted.
    """

    page: Optional[Page] = None
    faults: int = 0
    evictions: int = 0

    @property
    def resident(self) -> bool:
        """Whether the page is currently in the page cache."""
        return self.page is not None


class PageTable:
    """Maps :data:`PageId` to :class:`PageTableEntry`.

    The table is sparse: entries are created lazily on first access, so a
    190 GB mapping (≈ 50 M pages) only materialises entries for pages that
    were actually touched.
    """

    def __init__(self) -> None:
        self._entries: Dict[PageId, PageTableEntry] = {}

    def entry(self, page_id: PageId) -> PageTableEntry:
        """Return the entry for ``page_id``, creating it if needed."""
        entry = self._entries.get(page_id)
        if entry is None:
            entry = PageTableEntry()
            self._entries[page_id] = entry
        return entry

    def lookup(self, page_id: PageId) -> Optional[PageTableEntry]:
        """Return the entry for ``page_id`` or ``None`` if never touched."""
        return self._entries.get(page_id)

    def is_resident(self, page_id: PageId) -> bool:
        """Whether ``page_id`` is currently resident."""
        entry = self._entries.get(page_id)
        return entry is not None and entry.resident

    def record_load(self, page: Page) -> None:
        """Mark ``page`` as resident and count a major fault."""
        entry = self.entry(page.page_id)
        entry.page = page
        entry.faults += 1

    def record_eviction(self, page_id: PageId) -> None:
        """Mark ``page_id`` as no longer resident and count the eviction."""
        entry = self.entry(page_id)
        entry.page = None
        entry.evictions += 1

    def resident_pages(self) -> Iterator[Page]:
        """Iterate over all currently resident pages."""
        for entry in self._entries.values():
            if entry.page is not None:
                yield entry.page

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_count(self) -> int:
        """Number of resident pages."""
        return sum(1 for entry in self._entries.values() if entry.resident)

    @property
    def total_faults(self) -> int:
        """Total number of major faults across all pages."""
        return sum(entry.faults for entry in self._entries.values())

    @property
    def total_evictions(self) -> int:
        """Total number of evictions across all pages."""
        return sum(entry.evictions for entry in self._entries.values())
