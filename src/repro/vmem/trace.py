"""Access traces.

The paper's ongoing-work section proposes "extensively study[ing] the memory
access patterns and locality of algorithms (e.g., sequential scans vs random
access)".  An :class:`AccessTrace` records the byte ranges an algorithm touches
so that the same workload can be replayed through differently-configured
virtual memory simulators (different RAM sizes, disks, replacement policies)
without re-running the algorithm — which is exactly how the benchmark harness
produces Figure 1a's sweep over dataset sizes.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Union


class AccessKind(str, enum.Enum):
    """Whether an access reads or writes the mapped region."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class AccessRecord:
    """A single contiguous access to the mapped file.

    Attributes
    ----------
    offset:
        Byte offset of the first byte accessed.
    length:
        Number of bytes accessed.
    kind:
        Read or write.
    cpu_cost_s:
        CPU time (seconds) the algorithm spent processing these bytes.  This
        lets the simulator interleave compute and I/O accounting when the
        trace is replayed.
    """

    offset: int
    length: int
    kind: AccessKind = AccessKind.READ
    cpu_cost_s: float = 0.0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")
        if self.cpu_cost_s < 0:
            raise ValueError(f"cpu_cost_s must be non-negative, got {self.cpu_cost_s}")

    @property
    def end(self) -> int:
        """Offset of the first byte *after* the access."""
        return self.offset + self.length


@dataclass
class AccessTrace:
    """An ordered list of :class:`AccessRecord` produced by one workload run."""

    records: List[AccessRecord] = field(default_factory=list)
    description: str = ""

    def record(
        self,
        offset: int,
        length: int,
        kind: Union[AccessKind, str] = AccessKind.READ,
        cpu_cost_s: float = 0.0,
    ) -> None:
        """Append an access to the trace."""
        if isinstance(kind, str):
            kind = AccessKind(kind)
        self.records.append(AccessRecord(offset, length, kind, cpu_cost_s))

    def extend(self, records: Iterable[AccessRecord]) -> None:
        """Append many records at once."""
        self.records.extend(records)

    def __iter__(self) -> Iterator[AccessRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        """Total bytes touched (reads + writes, counting repeats)."""
        return sum(r.length for r in self.records)

    @property
    def total_cpu_cost_s(self) -> float:
        """Total CPU seconds attributed to the trace."""
        return sum(r.cpu_cost_s for r in self.records)

    @property
    def max_offset(self) -> int:
        """One past the largest byte offset touched (i.e. required file size)."""
        return max((r.end for r in self.records), default=0)

    def sequential_fraction(self) -> float:
        """Fraction of records that start exactly where the previous one ended.

        A fully sequential scan returns a value close to 1.0; random access
        returns a value close to 0.0.  This is the "locality" metric the
        paper's future work proposes to study.
        """
        if len(self.records) <= 1:
            return 1.0 if self.records else 0.0
        sequential = 0
        for prev, cur in zip(self.records, self.records[1:]):
            if cur.offset == prev.end:
                sequential += 1
        return sequential / (len(self.records) - 1)

    def scaled(self, factor: int) -> "AccessTrace":
        """Return a trace representing ``factor`` back-to-back repetitions.

        Used to extrapolate a one-iteration trace to the paper's 10 iterations
        without storing ten times the records.
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        scaled = AccessTrace(description=f"{self.description} x{factor}")
        for _ in range(factor):
            scaled.records.extend(self.records)
        return scaled

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Serialise the trace to a JSON-lines file."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            header = {"description": self.description, "num_records": len(self.records)}
            handle.write(json.dumps(header) + "\n")
            for record in self.records:
                handle.write(
                    json.dumps(
                        {
                            "offset": record.offset,
                            "length": record.length,
                            "kind": record.kind.value,
                            "cpu_cost_s": record.cpu_cost_s,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AccessTrace":
        """Load a trace previously written by :meth:`save`."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return cls()
        header = json.loads(lines[0])
        trace = cls(description=header.get("description", ""))
        for line in lines[1:]:
            if not line.strip():
                continue
            payload = json.loads(line)
            trace.record(
                payload["offset"],
                payload["length"],
                AccessKind(payload["kind"]),
                payload.get("cpu_cost_s", 0.0),
            )
        return trace
