"""Pages and page identifiers.

A *page* is the unit of transfer between disk and RAM.  The simulator uses the
same default page size as Linux on x86-64 (4 KiB) but the size is configurable
so that ablation benchmarks can study its effect (e.g. 2 MiB huge pages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

PAGE_SIZE_DEFAULT = 4096
"""Default page size in bytes (Linux x86-64 base pages)."""

#: A page is identified by the byte offset of its first byte divided by the
#: page size, i.e. its index within the backing file.
PageId = int


def page_id_for_offset(offset: int, page_size: int = PAGE_SIZE_DEFAULT) -> PageId:
    """Return the page id containing byte ``offset``.

    Parameters
    ----------
    offset:
        Byte offset into the mapped file.  Must be non-negative.
    page_size:
        Page size in bytes.  Must be positive.
    """
    if offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    if page_size <= 0:
        raise ValueError(f"page_size must be positive, got {page_size}")
    return offset // page_size


def pages_for_range(offset: int, length: int, page_size: int = PAGE_SIZE_DEFAULT) -> range:
    """Return the range of page ids touched by ``[offset, offset + length)``.

    A zero-length range touches no pages.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if length == 0:
        return range(0, 0)
    first = page_id_for_offset(offset, page_size)
    last = page_id_for_offset(offset + length - 1, page_size)
    return range(first, last + 1)


def num_pages(total_bytes: int, page_size: int = PAGE_SIZE_DEFAULT) -> int:
    """Number of pages needed to hold ``total_bytes`` bytes (ceiling division)."""
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be non-negative, got {total_bytes}")
    if page_size <= 0:
        raise ValueError(f"page_size must be positive, got {page_size}")
    return -(-total_bytes // page_size)


@dataclass
class Page:
    """A resident page tracked by the page cache.

    Attributes
    ----------
    page_id:
        Index of the page within the backing file.
    dirty:
        Whether the page has been written to since it was brought into RAM
        (a dirty page must be written back to disk before eviction).
    referenced:
        Reference bit used by the CLOCK replacement policy.
    load_tick:
        Logical time at which the page was faulted in.
    last_access_tick:
        Logical time of the most recent access.
    access_count:
        Number of accesses since the page was loaded.
    """

    page_id: PageId
    dirty: bool = False
    referenced: bool = True
    load_tick: int = 0
    last_access_tick: int = 0
    access_count: int = field(default=1)

    def touch(self, tick: int, write: bool = False) -> None:
        """Record an access to this page at logical time ``tick``."""
        self.referenced = True
        self.last_access_tick = tick
        self.access_count += 1
        if write:
            self.dirty = True
