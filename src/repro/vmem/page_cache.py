"""The simulated page cache.

This is the heart of the virtual-memory substrate: it models a fixed-size pool
of RAM pages backed by a :class:`~repro.vmem.disk.DiskModel`, with a pluggable
replacement policy and read-ahead.  Algorithms (or recorded traces) issue byte
range accesses; the cache translates them to page accesses, charges simulated
disk time for major faults, and keeps the counters needed to report hit rates
and utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.vmem.disk import DiskModel, DiskProfile, NVME_SSD
from repro.vmem.page import PAGE_SIZE_DEFAULT, Page, PageId, num_pages, pages_for_range
from repro.vmem.page_table import PageTable
from repro.vmem.readahead import AdaptiveReadAhead, ReadAheadPolicy
from repro.vmem.replacement import LruPolicy, ReplacementPolicy, make_policy
from repro.vmem.stats import PageCacheStats


@dataclass
class PageCacheConfig:
    """Configuration of a simulated page cache.

    Attributes
    ----------
    ram_bytes:
        Amount of RAM available to the page cache.  The paper's machine had
        32 GB; the default here is deliberately small so unit tests exercise
        eviction without large traces.
    page_size:
        Page size in bytes (default 4 KiB, the Linux base page size).
    replacement:
        Replacement policy name (``"lru"``, ``"clock"``, ``"fifo"``) or an
        instance.
    readahead:
        Read-ahead policy instance; defaults to Linux-like adaptive read-ahead.
    disk_profile:
        Performance profile of the backing device.
    raid_factor:
        RAID 0 striping factor for the backing device.
    """

    ram_bytes: int = 64 * 1024 * 1024
    page_size: int = PAGE_SIZE_DEFAULT
    replacement: Union[str, ReplacementPolicy] = "lru"
    readahead: Optional[ReadAheadPolicy] = None
    disk_profile: DiskProfile = NVME_SSD
    raid_factor: int = 1

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0:
            raise ValueError(f"ram_bytes must be positive, got {self.ram_bytes}")
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.page_size}")
        if self.ram_bytes < self.page_size:
            raise ValueError(
                f"ram_bytes ({self.ram_bytes}) must hold at least one page "
                f"({self.page_size})"
            )

    @property
    def capacity_pages(self) -> int:
        """Number of pages that fit in RAM."""
        return self.ram_bytes // self.page_size


class PageCache:
    """A fixed-capacity page cache backed by a simulated disk.

    The cache exposes :meth:`access_range` (byte-range granularity, the form
    used when replaying algorithm traces) and :meth:`access_page` (single-page
    granularity).  Both return the simulated disk time incurred.
    """

    def __init__(self, config: Optional[PageCacheConfig] = None) -> None:
        self.config = config or PageCacheConfig()
        if isinstance(self.config.replacement, ReplacementPolicy):
            self.policy: ReplacementPolicy = self.config.replacement
        else:
            self.policy = make_policy(self.config.replacement)
        self.readahead: ReadAheadPolicy = self.config.readahead or AdaptiveReadAhead()
        self.disk = DiskModel(profile=self.config.disk_profile, raid_factor=self.config.raid_factor)
        self.page_table = PageTable()
        self.stats = PageCacheStats()
        self._pages: Dict[PageId, Page] = {}
        self._prefetched: Dict[PageId, bool] = {}
        self._tick = 0
        self._file_pages: Optional[int] = None

    # -- public API ----------------------------------------------------------

    def set_file_size(self, file_bytes: int) -> None:
        """Declare the size of the mapped file (bounds read-ahead)."""
        self._file_pages = num_pages(file_bytes, self.config.page_size)

    @property
    def capacity_pages(self) -> int:
        """Maximum number of resident pages."""
        return self.config.capacity_pages

    @property
    def resident_pages(self) -> int:
        """Number of pages currently resident."""
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        """Bytes currently resident in the cache."""
        return len(self._pages) * self.config.page_size

    def is_resident(self, page_id: PageId) -> bool:
        """Whether ``page_id`` is currently cached."""
        return page_id in self._pages

    def access_range(self, offset: int, length: int, write: bool = False) -> float:
        """Access the byte range ``[offset, offset + length)``.

        Returns the simulated disk time (seconds) charged for the access.
        """
        elapsed = 0.0
        for page_id in pages_for_range(offset, length, self.config.page_size):
            elapsed += self.access_page(page_id, write=write)
        return elapsed

    def access_page(self, page_id: PageId, write: bool = False) -> float:
        """Access a single page, faulting it in if necessary.

        Returns the simulated disk time (seconds) charged for the access.
        """
        self._tick += 1
        page = self._pages.get(page_id)
        if page is not None:
            # Hit: possibly a prefetched page being used for the first time.
            if self._prefetched.pop(page_id, False):
                self.stats.prefetch_hits += 1
            page.touch(self._tick, write=write)
            self.policy.access(page)
            self.stats.hits += 1
            return 0.0
        return self._major_fault(page_id, write=write)

    def flush(self) -> float:
        """Write back all dirty pages; returns the simulated disk time."""
        elapsed = 0.0
        for page in list(self._pages.values()):
            if page.dirty:
                elapsed += self._writeback(page)
        return elapsed

    def drop_caches(self) -> None:
        """Evict every resident page (like ``echo 3 > /proc/sys/vm/drop_caches``).

        Dirty pages are written back first.
        """
        self.flush()
        for page_id in list(self._pages):
            self._evict(page_id, count_stats=False)

    def reset_stats(self) -> None:
        """Zero counters while keeping cache contents."""
        self.stats = PageCacheStats()
        self.disk.reset()

    # -- internals -------------------------------------------------------------

    def _major_fault(self, page_id: PageId, write: bool) -> float:
        elapsed = self._make_room(1)
        window = self._bounded_window(self.readahead.prefetch_window(page_id))
        # Demand page + read-ahead window are fetched in one contiguous request
        # when possible; that is what makes read-ahead amortise latency.
        fetch_ids = [page_id] + [pid for pid in window if pid not in self._pages]
        fetch_ids = self._contiguous_prefix(fetch_ids)
        elapsed += self._make_room(len(fetch_ids) - 1)
        offset = fetch_ids[0] * self.config.page_size
        nbytes = len(fetch_ids) * self.config.page_size
        elapsed += self.disk.read(offset, nbytes)

        for index, pid in enumerate(fetch_ids):
            page = Page(page_id=pid, load_tick=self._tick, last_access_tick=self._tick)
            self._insert(page)
            if index == 0:
                page.touch(self._tick, write=write)
                self.stats.major_faults += 1
            else:
                # Prefetched pages have not been demanded yet.
                page.referenced = False
                page.access_count = 0
                self._prefetched[pid] = True
                self.stats.prefetched_pages += 1
        return elapsed

    def _bounded_window(self, window: List[PageId]) -> List[PageId]:
        if self._file_pages is None:
            return window
        return [pid for pid in window if 0 <= pid < self._file_pages]

    @staticmethod
    def _contiguous_prefix(page_ids: List[PageId]) -> List[PageId]:
        """Keep only the contiguous run starting at the demand page."""
        if not page_ids:
            return page_ids
        result = [page_ids[0]]
        for pid in page_ids[1:]:
            if pid == result[-1] + 1:
                result.append(pid)
            else:
                break
        return result

    def _insert(self, page: Page) -> None:
        if page.page_id in self._pages:
            return
        self._pages[page.page_id] = page
        self.policy.insert(page)
        self.page_table.record_load(page)

    def _make_room(self, needed: int) -> float:
        """Evict pages until ``needed`` new pages fit; returns writeback time."""
        elapsed = 0.0
        while len(self._pages) + needed > self.capacity_pages and self._pages:
            victim_id = self.policy.victim()
            elapsed += self._evict(victim_id)
        return elapsed

    def _evict(self, page_id: PageId, count_stats: bool = True) -> float:
        page = self._pages.pop(page_id, None)
        self.policy.remove(page_id)
        self._prefetched.pop(page_id, None)
        if page is None:
            return 0.0
        elapsed = 0.0
        if page.dirty:
            elapsed += self._writeback(page)
        self.page_table.record_eviction(page_id)
        if count_stats:
            self.stats.evictions += 1
        return elapsed

    def _writeback(self, page: Page) -> float:
        offset = page.page_id * self.config.page_size
        elapsed = self.disk.write(offset, self.config.page_size)
        page.dirty = False
        self.stats.writebacks += 1
        return elapsed
