"""Read-ahead policies.

The M3 paper credits much of memory mapping's efficiency to the kernel's
read-ahead: when a sequential scan is detected, the kernel fetches upcoming
pages before they are demanded, hiding disk latency.  The simulator models
three policies:

* :class:`NoReadAhead` — every page access that misses is a synchronous fault.
* :class:`FixedReadAhead` — always prefetch a fixed window of subsequent pages.
* :class:`AdaptiveReadAhead` — Linux-like: start with a small window, double it
  while the access pattern stays sequential, collapse on a random access.
* :class:`PipelinedReadAhead` — engine-level: models M3's explicit
  multi-reader prefetch pool (``io_workers`` in the streaming engine), where
  ``readers`` parallel streams each keep ``window`` pages in flight.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.vmem.page import PageId


class ReadAheadPolicy(ABC):
    """Decides which additional pages to prefetch after a demand fault."""

    @abstractmethod
    def prefetch_window(self, page_id: PageId) -> List[PageId]:
        """Pages to prefetch (beyond ``page_id``) given a fault on ``page_id``."""

    def reset(self) -> None:
        """Forget any learned access-pattern state."""
        return None

    @property
    def name(self) -> str:
        """Short human-readable policy name."""
        return type(self).__name__


class NoReadAhead(ReadAheadPolicy):
    """Never prefetch; every miss is a synchronous single-page read."""

    def prefetch_window(self, page_id: PageId) -> List[PageId]:
        return []


class FixedReadAhead(ReadAheadPolicy):
    """Prefetch a fixed number of consecutive pages after every fault."""

    def __init__(self, window: int = 32) -> None:
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window}")
        self.window = window

    def prefetch_window(self, page_id: PageId) -> List[PageId]:
        return [page_id + i for i in range(1, self.window + 1)]


class AdaptiveReadAhead(ReadAheadPolicy):
    """Linux-style adaptive read-ahead.

    The window starts at ``initial_window`` pages.  Each time a fault lands
    exactly where the previous sequential run left off the window doubles (up
    to ``max_window``); a non-sequential fault resets it.  The default maximum
    of 32 pages (128 KiB with 4 KiB pages) matches the Linux default
    ``read_ahead_kb = 128``.
    """

    def __init__(self, initial_window: int = 4, max_window: int = 32) -> None:
        if initial_window <= 0:
            raise ValueError(f"initial_window must be positive, got {initial_window}")
        if max_window < initial_window:
            raise ValueError(
                f"max_window ({max_window}) must be >= initial_window ({initial_window})"
            )
        self.initial_window = initial_window
        self.max_window = max_window
        self._window = initial_window
        self._expected_next: Optional[PageId] = None

    def prefetch_window(self, page_id: PageId) -> List[PageId]:
        sequential = self._expected_next is not None and page_id == self._expected_next
        if sequential:
            self._window = min(self._window * 2, self.max_window)
        else:
            self._window = self.initial_window
        window = [page_id + i for i in range(1, self._window + 1)]
        # The next sequential fault would land just past what we prefetched.
        self._expected_next = page_id + self._window + 1
        return window

    def reset(self) -> None:
        self._window = self.initial_window
        self._expected_next = None

    @property
    def current_window(self) -> int:
        """Current read-ahead window size in pages."""
        return self._window


class PipelinedReadAhead(ReadAheadPolicy):
    """Engine-level pipelined read-ahead: a pool of parallel reader streams.

    Models the :class:`~repro.api.chunks.ParallelPrefetcher`'s behaviour at
    the page level so it can be replayed through the virtual-memory simulator
    and compared against the kernel policies above: a pool of ``readers``
    sequential streams each keeps ``window`` pages in flight, so any demand
    fault triggers prefetch of the union of the pool's outstanding windows —
    ``readers × window`` consecutive pages.  Unlike
    :class:`AdaptiveReadAhead` the window never collapses: the engine *knows*
    the chunk plan is a sequential scan, it does not have to re-detect it
    after every shard boundary.
    """

    def __init__(self, readers: int = 4, window: int = 8) -> None:
        if readers <= 0:
            raise ValueError(f"readers must be positive, got {readers}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.readers = readers
        self.window = window

    def prefetch_window(self, page_id: PageId) -> List[PageId]:
        return [page_id + i for i in range(1, self.readers * self.window + 1)]

    @property
    def total_window(self) -> int:
        """Pages the pool keeps in flight (``readers × window``)."""
        return self.readers * self.window


def make_readahead(name: str, **kwargs: int) -> ReadAheadPolicy:
    """Create a read-ahead policy by name
    (``"none"``, ``"fixed"``, ``"adaptive"``, ``"pipelined"``)."""
    key = name.lower()
    if key in ("none", "off"):
        return NoReadAhead()
    if key == "fixed":
        return FixedReadAhead(**kwargs)
    if key == "adaptive":
        return AdaptiveReadAhead(**kwargs)
    if key == "pipelined":
        return PipelinedReadAhead(**kwargs)
    raise ValueError(
        f"unknown read-ahead policy {name!r}; choose from none, fixed, adaptive, pipelined"
    )
