"""Disk performance model.

The M3 experiments used an OCZ RevoDrive 350 (a PCIe SSD).  The simulator
charges time for every page read from and written to the simulated device
using a simple but well-calibrated model:

* every I/O operation pays a fixed per-request latency (seek/command overhead);
* the payload pays ``bytes / sequential_bandwidth`` when the request continues
  the previous one (sequential) and ``bytes / random_bandwidth`` otherwise;
* requests can be batched (read-ahead issues one request for the whole
  window), which amortises the fixed latency — exactly the mechanism that
  makes read-ahead profitable.

The model also tracks *busy time* so that device utilisation (the paper's
"disk I/O was 100 % utilized") can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class DiskProfile:
    """Static performance characteristics of a storage device.

    Attributes
    ----------
    name:
        Human readable device name.
    read_latency_s:
        Fixed per-request read latency in seconds.
    write_latency_s:
        Fixed per-request write latency in seconds.
    sequential_read_bw:
        Sequential read bandwidth in bytes/second.
    random_read_bw:
        Random (4 KiB-ish) read bandwidth in bytes/second.
    sequential_write_bw:
        Sequential write bandwidth in bytes/second.
    random_write_bw:
        Random write bandwidth in bytes/second.
    """

    name: str
    read_latency_s: float
    write_latency_s: float
    sequential_read_bw: float
    random_read_bw: float
    sequential_write_bw: float
    random_write_bw: float

    def validate(self) -> None:
        """Raise ``ValueError`` if any parameter is non-positive."""
        for field_name in (
            "sequential_read_bw",
            "random_read_bw",
            "sequential_write_bw",
            "random_write_bw",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.read_latency_s < 0 or self.write_latency_s < 0:
            raise ValueError("latencies must be non-negative")


#: Profile approximating the OCZ RevoDrive 350 PCIe SSD used in the paper
#: (~1.8 GB/s sequential read, ~130 k IOPS random read).
NVME_SSD = DiskProfile(
    name="pcie-ssd (OCZ RevoDrive 350 class)",
    read_latency_s=60e-6,
    write_latency_s=25e-6,
    sequential_read_bw=1.8e9,
    random_read_bw=520e6,
    sequential_write_bw=1.7e9,
    random_write_bw=450e6,
)

#: A mainstream SATA SSD (~520 MB/s sequential).
SATA_SSD = DiskProfile(
    name="sata-ssd",
    read_latency_s=90e-6,
    write_latency_s=60e-6,
    sequential_read_bw=520e6,
    random_read_bw=300e6,
    sequential_write_bw=480e6,
    random_write_bw=250e6,
)

#: A 7200 RPM spinning disk (~160 MB/s sequential, slow random access).
HDD_7200RPM = DiskProfile(
    name="hdd-7200rpm",
    read_latency_s=8e-3,
    write_latency_s=9e-3,
    sequential_read_bw=160e6,
    random_read_bw=2e6,
    sequential_write_bw=150e6,
    random_write_bw=2e6,
)

_PROFILES = {
    "nvme": NVME_SSD,
    "pcie": NVME_SSD,
    "ssd": SATA_SSD,
    "sata": SATA_SSD,
    "hdd": HDD_7200RPM,
}


def get_profile(name: str) -> DiskProfile:
    """Look up a built-in :class:`DiskProfile` by name."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown disk profile {name!r}; choose from {sorted(set(_PROFILES))}"
        ) from None


@dataclass
class DiskModel:
    """Charges simulated time for disk I/O and tracks device busy time.

    Parameters
    ----------
    profile:
        The static device characteristics.
    raid_factor:
        Number of devices striped together (RAID 0).  Bandwidth scales by this
        factor; latency does not.  The paper suggests RAID 0 as a way to push
        M3 further, so the ablation benchmarks sweep this knob.
    """

    profile: DiskProfile = NVME_SSD
    raid_factor: int = 1

    bytes_read: int = field(default=0, init=False)
    bytes_written: int = field(default=0, init=False)
    read_requests: int = field(default=0, init=False)
    write_requests: int = field(default=0, init=False)
    busy_time_s: float = field(default=0.0, init=False)
    _last_read_end: Optional[int] = field(default=None, init=False)
    _last_write_end: Optional[int] = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.profile.validate()
        if self.raid_factor < 1:
            raise ValueError(f"raid_factor must be >= 1, got {self.raid_factor}")

    # -- time accounting ---------------------------------------------------

    def read(self, offset: int, nbytes: int) -> float:
        """Charge a read of ``nbytes`` starting at byte ``offset``.

        Returns the simulated elapsed time in seconds.
        """
        if nbytes <= 0:
            return 0.0
        sequential = self._last_read_end is not None and offset == self._last_read_end
        bandwidth = (
            self.profile.sequential_read_bw if sequential else self.profile.random_read_bw
        ) * self.raid_factor
        elapsed = self.profile.read_latency_s + nbytes / bandwidth
        self._last_read_end = offset + nbytes
        self.bytes_read += nbytes
        self.read_requests += 1
        self.busy_time_s += elapsed
        return elapsed

    def write(self, offset: int, nbytes: int) -> float:
        """Charge a write of ``nbytes`` starting at byte ``offset``.

        Returns the simulated elapsed time in seconds.
        """
        if nbytes <= 0:
            return 0.0
        sequential = self._last_write_end is not None and offset == self._last_write_end
        bandwidth = (
            self.profile.sequential_write_bw if sequential else self.profile.random_write_bw
        ) * self.raid_factor
        elapsed = self.profile.write_latency_s + nbytes / bandwidth
        self._last_write_end = offset + nbytes
        self.bytes_written += nbytes
        self.write_requests += 1
        self.busy_time_s += elapsed
        return elapsed

    # -- reporting -----------------------------------------------------------

    def utilization(self, wall_time_s: float) -> float:
        """Fraction of ``wall_time_s`` during which the device was busy (0–1).

        Clamped to 1.0: in the simulator I/O time is a component of wall time,
        so utilisation cannot meaningfully exceed 100 %.
        """
        if wall_time_s <= 0:
            return 0.0
        return min(1.0, self.busy_time_s / wall_time_s)

    def reset(self) -> None:
        """Zero all counters (keeps the profile and RAID factor)."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_requests = 0
        self.write_requests = 0
        self.busy_time_s = 0.0
        self._last_read_end = None
        self._last_write_end = None
