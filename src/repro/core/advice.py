"""Access advice — the M3 analogue of ``madvise``.

The paper notes that "the operating system has access to a variety of internal
statistics on how the mapped data is being used, [so] the access to such data
can be further optimized ... via methods including least recent used caching
and read-ahead".  On a real system the application can help with
``madvise(MADV_SEQUENTIAL / MADV_RANDOM / MADV_WILLNEED / MADV_DONTNEED)``.

:class:`AccessAdvice` captures those hints in a portable way.  When an
:class:`~repro.core.mmap_matrix.MmapMatrix` is backed by a real file we apply
them with :func:`mmap.mmap.madvise` where the platform supports it; when the
matrix is attached to the virtual-memory *simulator* the advice selects the
corresponding read-ahead policy so that simulated and real behaviour stay in
step.
"""

from __future__ import annotations

import enum
import mmap as _mmap
from typing import Optional

from repro.vmem.readahead import AdaptiveReadAhead, FixedReadAhead, NoReadAhead, ReadAheadPolicy


class AccessAdvice(str, enum.Enum):
    """Portable access-pattern hints."""

    NORMAL = "normal"
    SEQUENTIAL = "sequential"
    RANDOM = "random"
    WILLNEED = "willneed"
    DONTNEED = "dontneed"

    def to_madvise_flag(self) -> Optional[int]:
        """The ``MADV_*`` constant for this advice, or ``None`` if unavailable."""
        names = {
            AccessAdvice.NORMAL: "MADV_NORMAL",
            AccessAdvice.SEQUENTIAL: "MADV_SEQUENTIAL",
            AccessAdvice.RANDOM: "MADV_RANDOM",
            AccessAdvice.WILLNEED: "MADV_WILLNEED",
            AccessAdvice.DONTNEED: "MADV_DONTNEED",
        }
        return getattr(_mmap, names[self], None)

    def to_readahead_policy(self) -> ReadAheadPolicy:
        """The simulator read-ahead policy corresponding to this advice.

        * sequential / willneed → aggressive fixed read-ahead,
        * normal → Linux-like adaptive read-ahead,
        * random / dontneed → no read-ahead.
        """
        if self in (AccessAdvice.SEQUENTIAL, AccessAdvice.WILLNEED):
            return FixedReadAhead(window=32)
        if self is AccessAdvice.NORMAL:
            return AdaptiveReadAhead()
        return NoReadAhead()


def apply_advice(buffer: memoryview, advice: AccessAdvice) -> bool:
    """Best-effort ``madvise`` on a real mapped buffer.

    Returns ``True`` if the advice was applied, ``False`` if the platform (or
    the buffer) does not support it.  Failure is never an error: advice is a
    hint, and M3 works correctly (just possibly slower) without it.
    """
    flag = advice.to_madvise_flag()
    if flag is None:
        return False
    base = getattr(buffer, "obj", None)
    madvise = getattr(base, "madvise", None)
    if madvise is None:
        return False
    try:
        madvise(flag)
    except (OSError, ValueError):
        return False
    return True
