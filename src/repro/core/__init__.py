"""M3 core: transparent out-of-core machine learning via memory mapping.

This package is the paper's primary contribution.  Its public surface is
deliberately tiny, mirroring Table 1 of the paper where switching from an
in-memory matrix to M3 requires one changed line and one helper call:

.. code-block:: python

    # Original (in memory)                 # M3 (memory mapped)
    data = np.load("small.npy")            data = m3.load_matrix("huge.m3")
    model = LogisticRegression().fit(data, y)   # unchanged

Key pieces:

* :func:`~repro.core.allocator.mmap_alloc` — the Python analogue of the
  paper's ``mmapAlloc`` helper: create or open a file-backed buffer and hand
  back an array view of it.
* :class:`~repro.core.mmap_matrix.MmapMatrix` — a matrix wrapper around
  ``numpy.memmap`` that supports the row-slicing protocol estimators use,
  optionally records its access pattern into an
  :class:`~repro.vmem.trace.AccessTrace`, and accepts access *advice*.
* :class:`~repro.core.m3.M3` — the legacy facade tying together dataset
  creation, opening, advice and trace capture; now a thin shim over
  :class:`repro.api.Session`, which adds pluggable storage backends
  (``mmap``, ``shard``, ``memory``) and execution engines.
* :mod:`~repro.core.chunking` — chunk iterators and planners.
"""

from repro.core.config import M3Config
from repro.core.advice import AccessAdvice
from repro.core.allocator import mmap_alloc, mmap_free
from repro.core.mmap_matrix import MmapMatrix
from repro.core.chunking import ChunkPlan, iter_chunks, plan_chunks
from repro.core.m3 import M3, create_dataset, load_matrix, open_dataset

__all__ = [
    "M3",
    "M3Config",
    "AccessAdvice",
    "mmap_alloc",
    "mmap_free",
    "MmapMatrix",
    "ChunkPlan",
    "iter_chunks",
    "plan_chunks",
    "create_dataset",
    "open_dataset",
    "load_matrix",
]
