"""``MmapMatrix`` — a memory-mapped matrix that estimators treat as an array.

This is the object an M3 user hands to an unmodified estimator.  It wraps a
``numpy.memmap`` (or any 2-D array) and

* implements the row-slicing protocol (``shape``, ``dtype``, ``__getitem__``,
  ``__setitem__``) that every estimator in :mod:`repro.ml` relies on,
* optionally records each access into an :class:`~repro.vmem.trace.AccessTrace`
  so that the exact access pattern can be replayed in the virtual-memory
  simulator at paper scale,
* applies :class:`~repro.core.advice.AccessAdvice` to the underlying mapping
  when the platform supports ``madvise``.

Because slicing returns plain ndarray views/copies provided by NumPy, an
``MmapMatrix`` is interchangeable with an in-memory array — which is the whole
point of M3.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Tuple, Union

import numpy as np

from repro.core.advice import AccessAdvice, apply_advice
from repro.vmem.trace import AccessKind, AccessTrace


class MmapMatrix:
    """A 2-D matrix view over (typically) memory-mapped storage.

    Parameters
    ----------
    backing:
        The underlying 2-D array — usually a ``numpy.memmap`` created by
        :func:`repro.core.allocator.mmap_alloc` or
        :func:`repro.data.formats.open_binary_matrix`, but any ndarray works
        (useful in tests and for the transparency property).
    source_path:
        Path of the backing file, if any (informational).
    advice:
        Access advice to apply to the mapping.
    trace:
        Optional trace to record accesses into.
    data_offset:
        Byte offset of the matrix within the backing file; recorded accesses
        are shifted by this amount so trace offsets are file offsets.
    """

    def __init__(
        self,
        backing: Any,
        source_path: Optional[Union[str, Path]] = None,
        advice: AccessAdvice = AccessAdvice.SEQUENTIAL,
        trace: Optional[AccessTrace] = None,
        data_offset: int = 0,
    ) -> None:
        if not hasattr(backing, "shape") or len(backing.shape) != 2:
            raise ValueError("backing must be a 2-D array-like")
        self._backing = backing
        self.source_path = Path(source_path) if source_path is not None else None
        self.advice = advice
        self.trace = trace
        self.data_offset = int(data_offset)
        self._row_bytes = int(backing.shape[1]) * np.dtype(backing.dtype).itemsize
        self._apply_advice()

    # -- array protocol ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix shape ``(rows, cols)``."""
        return (int(self._backing.shape[0]), int(self._backing.shape[1]))

    @property
    def dtype(self) -> np.dtype:
        """Element dtype."""
        return np.dtype(self._backing.dtype)

    @property
    def ndim(self) -> int:
        """Always 2."""
        return 2

    def __len__(self) -> int:
        return self.shape[0]

    @property
    def nbytes(self) -> int:
        """Total size of the matrix in bytes."""
        return self.shape[0] * self._row_bytes

    @property
    def backing(self) -> Any:
        """The wrapped array (memmap or ndarray)."""
        return self._backing

    @property
    def is_memory_mapped(self) -> bool:
        """Whether the backing array is an actual ``numpy.memmap``."""
        return isinstance(self._backing, np.memmap)

    def __array__(self, dtype=None) -> np.ndarray:
        """Materialise the whole matrix (only sensible for small matrices)."""
        self._record_rows(0, self.shape[0], AccessKind.READ)
        result = np.asarray(self._backing)
        return result.astype(dtype) if dtype is not None else result

    # -- slicing ------------------------------------------------------------

    def _record_rows(self, start: int, stop: int, kind: AccessKind) -> None:
        if self.trace is None or stop <= start:
            return
        self.trace.record(
            self.data_offset + start * self._row_bytes,
            (stop - start) * self._row_bytes,
            kind,
        )

    def record_read(self, start: int, stop: int) -> None:
        """Record a read of rows ``[start, stop)`` performed out of band.

        Readers that gather rows straight into preallocated buffers (the
        parallel chunk pipeline's buffer pool) bypass ``__getitem__``; this
        keeps the handle's access trace complete anyway.
        """
        self._record_rows(start, stop, AccessKind.READ)

    def _bounds_from_key(self, key: Any) -> Optional[Tuple[int, int]]:
        """Row bounds touched by an indexing key, or ``None`` if unknown."""
        rows = self.shape[0]
        row_key = key[0] if isinstance(key, tuple) else key
        if isinstance(row_key, slice):
            start, stop, step = row_key.indices(rows)
            if step > 0:
                return (start, stop)
            return (min(start, stop) + 1, max(start, stop) + 1) if rows else (0, 0)
        if isinstance(row_key, (int, np.integer)):
            index = int(row_key)
            if index < 0:
                index += rows
            return (index, index + 1)
        if isinstance(row_key, (list, np.ndarray)):
            arr = np.asarray(row_key)
            if arr.size == 0:
                return (0, 0)
            if arr.dtype == bool:
                touched = np.nonzero(arr)[0]
                if touched.size == 0:
                    return (0, 0)
                return (int(touched.min()), int(touched.max()) + 1)
            arr = np.where(arr < 0, arr + rows, arr)
            return (int(arr.min()), int(arr.max()) + 1)
        return None

    def __getitem__(self, key: Any) -> np.ndarray:
        bounds = self._bounds_from_key(key)
        if bounds is not None:
            self._record_rows(bounds[0], bounds[1], AccessKind.READ)
        return self._backing[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        bounds = self._bounds_from_key(key)
        if bounds is not None:
            self._record_rows(bounds[0], bounds[1], AccessKind.WRITE)
        self._backing[key] = value

    # -- management ---------------------------------------------------------

    def _apply_advice(self) -> bool:
        if not self.is_memory_mapped:
            return False
        try:
            view = memoryview(self._backing._mmap)  # noqa: SLF001
        except (AttributeError, TypeError):
            return False
        return apply_advice(view, self.advice)

    def set_advice(self, advice: AccessAdvice) -> bool:
        """Change the access advice; returns whether it could be applied."""
        self.advice = advice
        return self._apply_advice()

    def attach_trace(self, trace: Optional[AccessTrace]) -> None:
        """Start (or stop, with ``None``) recording accesses."""
        self.trace = trace

    def flush(self) -> None:
        """Flush dirty pages to disk (no-op for plain ndarrays)."""
        flush = getattr(self._backing, "flush", None)
        if callable(flush) and getattr(self._backing, "mode", "r") != "r":
            flush()

    def __repr__(self) -> str:
        location = str(self.source_path) if self.source_path else "anonymous"
        kind = "memmap" if self.is_memory_mapped else "in-memory"
        return (
            f"MmapMatrix(shape={self.shape}, dtype={self.dtype}, "
            f"backing={kind}, source={location!r})"
        )
