"""``mmap_alloc`` — the Python analogue of the paper's ``mmapAlloc`` helper.

Table 1 of the paper shows the entire code change M3 requires::

    Original                         M3
    --------                         --
    Mat data;                        double *m = mmapAlloc(file, rows * cols);
                                     Mat data(m, rows, cols);

``mmap_alloc`` plays the role of ``mmapAlloc``: given a file path and a shape
it returns a NumPy array *view* over a file-backed mapping.  If the file does
not exist (or is too small) it is created/extended to the required size, so
the same call serves both "allocate a huge scratch matrix on disk" and "map an
existing dataset".
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

import numpy as np

ShapeLike = Union[int, Tuple[int, ...]]


def _normalise_shape(shape: ShapeLike) -> Tuple[int, ...]:
    if isinstance(shape, int):
        shape = (shape,)
    shape = tuple(int(dim) for dim in shape)
    if not shape:
        raise ValueError("shape must have at least one dimension")
    if any(dim <= 0 for dim in shape):
        raise ValueError(f"all dimensions must be positive, got {shape}")
    return shape


def mmap_alloc(
    path: Union[str, Path],
    shape: ShapeLike,
    dtype: Union[str, np.dtype] = np.float64,
    mode: str = "r+",
    offset: int = 0,
) -> np.memmap:
    """Map ``path`` into memory and return an array view of the given shape.

    Parameters
    ----------
    path:
        Backing file.  Created (sparse) or grown if needed when ``mode`` is a
        writable mode; must already exist for read-only mode.
    shape:
        Array shape, e.g. ``(rows, cols)``.
    dtype:
        Element dtype (default float64, matching the paper's dense doubles).
    mode:
        ``"r"``, ``"r+"``, ``"w+"`` or ``"c"`` as accepted by ``numpy.memmap``.
        The default ``"r+"`` creates the file if missing and maps it
        read-write.
    offset:
        Byte offset of the array within the file (used by the binary format's
        header).

    Returns
    -------
    numpy.memmap
        A file-backed array of the requested shape and dtype.
    """
    path = Path(path)
    shape = _normalise_shape(shape)
    dtype = np.dtype(dtype)
    if offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    required = offset + int(np.prod(shape)) * dtype.itemsize

    if mode in ("r", "c"):
        if not path.exists():
            raise FileNotFoundError(f"{path} does not exist (mode {mode!r} cannot create it)")
        actual = path.stat().st_size
        if actual < required:
            raise ValueError(
                f"{path} is {actual} bytes but shape {shape} needs {required} bytes"
            )
    else:
        # Writable modes: create or extend the backing file (sparse where the
        # filesystem allows, so this is cheap even for very large shapes).
        if mode == "w+" or not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("wb") as handle:
                handle.truncate(required)
            mode = "r+"
        elif path.stat().st_size < required:
            with path.open("r+b") as handle:
                handle.truncate(required)

    return np.memmap(path, dtype=dtype, mode=mode, offset=offset, shape=shape, order="C")


def mmap_free(array: np.memmap, flush: bool = True) -> None:
    """Release a mapping created by :func:`mmap_alloc`.

    NumPy unmaps automatically when the last reference dies; this helper just
    makes the intent explicit (and optionally flushes dirty pages first), which
    matters in long-running processes that map many large files.
    """
    if not isinstance(array, np.memmap):
        raise TypeError(f"expected numpy.memmap, got {type(array).__name__}")
    if flush and getattr(array, "mode", "r") != "r":
        array.flush()
    base = array._mmap  # noqa: SLF001 - numpy does not expose a public handle
    if base is not None:
        # Dropping our reference is sufficient; closing eagerly would
        # invalidate other views. We only flush + drop.
        del base
