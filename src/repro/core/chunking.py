"""Chunk planning and iteration over (memory-mapped) matrices.

Estimators use the simple :func:`repro.ml.base.iter_row_chunks` helper; the
benchmark harness and the virtual-memory replay need a richer object — a
:class:`ChunkPlan` that knows how many bytes each chunk touches, so the same
plan can be executed on real data *and* replayed as an access trace through
the simulator at a different scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Tuple

import numpy as np

from repro.vmem.trace import AccessKind, AccessTrace


@dataclass(frozen=True)
class ChunkPlan:
    """A sequence of row chunks over a matrix of known geometry.

    Attributes
    ----------
    n_rows, n_cols:
        Matrix shape.
    itemsize:
        Bytes per element.
    chunk_rows:
        Rows per chunk (the final chunk may be smaller).
    data_offset:
        Byte offset of row 0 within the backing file.
    """

    n_rows: int
    n_cols: int
    itemsize: int
    chunk_rows: int
    data_offset: int = 0

    def __post_init__(self) -> None:
        if self.n_rows < 0 or self.n_cols <= 0:
            raise ValueError(f"invalid shape ({self.n_rows}, {self.n_cols})")
        if self.itemsize <= 0:
            raise ValueError(f"itemsize must be positive, got {self.itemsize}")
        if self.chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {self.chunk_rows}")

    @property
    def row_bytes(self) -> int:
        """Bytes per row."""
        return self.n_cols * self.itemsize

    @property
    def total_bytes(self) -> int:
        """Bytes in the whole matrix."""
        return self.n_rows * self.row_bytes

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the plan."""
        return -(-self.n_rows // self.chunk_rows) if self.n_rows else 0

    def bounds(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(start_row, stop_row)`` for every chunk, in order."""
        for start in range(0, self.n_rows, self.chunk_rows):
            yield start, min(start + self.chunk_rows, self.n_rows)

    def byte_ranges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(byte_offset, byte_length)`` for every chunk, in order."""
        for start, stop in self.bounds():
            yield self.data_offset + start * self.row_bytes, (stop - start) * self.row_bytes

    def to_trace(
        self,
        passes: int = 1,
        cpu_seconds_per_byte: float = 0.0,
        kind: AccessKind = AccessKind.READ,
        description: str = "",
    ) -> AccessTrace:
        """Convert the plan into an access trace of ``passes`` sequential scans.

        ``cpu_seconds_per_byte`` attributes compute cost to each chunk so the
        simulator can report CPU vs disk utilisation.
        """
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        trace = AccessTrace(description=description or f"{passes} sequential passes")
        for _ in range(passes):
            for offset, length in self.byte_ranges():
                trace.record(offset, length, kind, cpu_cost_s=length * cpu_seconds_per_byte)
        return trace


def plan_chunks(matrix: Any, chunk_rows: int, data_offset: int = 0) -> ChunkPlan:
    """Build a :class:`ChunkPlan` for any 2-D matrix-like object."""
    if not hasattr(matrix, "shape") or len(matrix.shape) != 2:
        raise ValueError("matrix must be 2-D")
    offset = data_offset
    if offset == 0:
        offset = getattr(matrix, "data_offset", 0)
    return ChunkPlan(
        n_rows=int(matrix.shape[0]),
        n_cols=int(matrix.shape[1]),
        itemsize=np.dtype(matrix.dtype).itemsize,
        chunk_rows=chunk_rows,
        data_offset=int(offset),
    )


def iter_chunks(matrix: Any, chunk_rows: int) -> Iterator[np.ndarray]:
    """Yield materialised row chunks of ``matrix`` as float64 arrays."""
    plan = plan_chunks(matrix, chunk_rows)
    for start, stop in plan.bounds():
        yield np.asarray(matrix[start:stop], dtype=np.float64)


def split_evenly(n_rows: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``n_rows`` into ``parts`` contiguous, nearly equal row ranges.

    Used by the distributed baseline to partition a dataset across instances.
    Empty ranges are produced when ``parts > n_rows``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if n_rows < 0:
        raise ValueError(f"n_rows must be non-negative, got {n_rows}")
    base = n_rows // parts
    remainder = n_rows % parts
    bounds = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds
