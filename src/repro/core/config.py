"""Configuration for the M3 runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.advice import AccessAdvice


@dataclass
class M3Config:
    """Settings controlling how M3 opens and scans memory-mapped datasets.

    Attributes
    ----------
    chunk_rows:
        Default number of rows per chunk when estimators stream over a
        dataset.  Larger chunks amortise per-chunk Python overhead; smaller
        chunks bound peak memory.  The ablation benchmark sweeps this.
    default_advice:
        Access advice applied to newly opened matrices (the analogue of
        ``madvise``); sequential by default because every algorithm in the
        paper scans row-major data front to back.
    mode:
        Default ``numpy.memmap`` mode for opened datasets: ``"r"`` for
        read-only training data.
    record_traces:
        When true, every :class:`~repro.core.mmap_matrix.MmapMatrix` opened
        through the :class:`~repro.core.m3.M3` facade records its access
        pattern for later replay in the virtual-memory simulator.
    workspace:
        Directory used for datasets created without an explicit path.
    """

    chunk_rows: int = 4096
    default_advice: AccessAdvice = AccessAdvice.SEQUENTIAL
    mode: str = "r"
    record_traces: bool = False
    workspace: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {self.chunk_rows}")
        if self.mode not in ("r", "r+", "c"):
            raise ValueError(f"mode must be one of 'r', 'r+', 'c', got {self.mode!r}")
        if self.workspace is not None:
            self.workspace = Path(self.workspace)
