"""The M3 facade: create, open and memory-map datasets with one call each.

The facade exists so that user code reads like Table 1 of the paper — one
helper call replaces the in-memory constructor, and everything downstream is
unchanged:

.. code-block:: python

    import repro.core as m3
    from repro.ml import LogisticRegression

    X, y = m3.open_dataset("infimnist_10gb.m3")     # memory mapped, any size
    model = LogisticRegression(max_iterations=10).fit(X, y)   # unchanged code
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.advice import AccessAdvice
from repro.core.allocator import mmap_alloc
from repro.core.config import M3Config
from repro.core.mmap_matrix import MmapMatrix
from repro.data.formats import (
    HEADER_SIZE,
    create_binary_matrix,
    open_binary_matrix,
    read_binary_matrix_header,
    write_binary_matrix,
)
from repro.vmem.trace import AccessTrace


class M3:
    """High-level entry point for memory-mapped machine learning.

    Parameters
    ----------
    config:
        Runtime configuration; see :class:`~repro.core.config.M3Config`.
    """

    def __init__(self, config: Optional[M3Config] = None) -> None:
        self.config = config or M3Config()
        self.last_trace: Optional[AccessTrace] = None

    # -- dataset creation ------------------------------------------------------

    def create_dataset(
        self,
        path: Union[str, Path],
        data: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ) -> Path:
        """Write an in-memory matrix (and optional labels) to an M3 dataset file."""
        path = Path(path)
        write_binary_matrix(path, data, labels)
        return path

    def create_empty_dataset(
        self,
        path: Union[str, Path],
        rows: int,
        cols: int,
        dtype: Union[str, np.dtype] = np.float64,
        with_labels: bool = False,
    ) -> Path:
        """Create a (sparse) dataset file to be filled by an out-of-core writer."""
        path = Path(path)
        create_binary_matrix(path, rows, cols, dtype, with_labels)
        return path

    # -- dataset opening -------------------------------------------------------

    def open_dataset(
        self,
        path: Union[str, Path],
        mode: Optional[str] = None,
        advice: Optional[AccessAdvice] = None,
        record_trace: Optional[bool] = None,
    ) -> Tuple[MmapMatrix, Optional[np.ndarray]]:
        """Open an M3 dataset file as ``(matrix, labels)``.

        The matrix is an :class:`~repro.core.mmap_matrix.MmapMatrix` backed by
        ``numpy.memmap``; labels (if present in the file) are returned as a
        memory-mapped int64 vector.
        """
        path = Path(path)
        mode = mode or self.config.mode
        advice = advice or self.config.default_advice
        record = self.config.record_traces if record_trace is None else record_trace

        data, labels, header = open_binary_matrix(path, mode=mode)
        trace: Optional[AccessTrace] = None
        if record:
            trace = AccessTrace(description=f"open_dataset({path.name})")
            self.last_trace = trace
        matrix = MmapMatrix(
            data,
            source_path=path,
            advice=advice,
            trace=trace,
            data_offset=HEADER_SIZE,
        )
        return matrix, labels

    def load_matrix(
        self,
        path: Union[str, Path],
        shape: Optional[Tuple[int, int]] = None,
        dtype: Union[str, np.dtype] = np.float64,
        mode: Optional[str] = None,
        advice: Optional[AccessAdvice] = None,
        record_trace: Optional[bool] = None,
    ) -> MmapMatrix:
        """Memory-map a matrix file.

        If ``shape`` is omitted the file must be in M3 binary format (the
        header supplies the geometry); with an explicit ``shape`` any raw
        binary file of the right size can be mapped — the direct analogue of
        the paper's ``mmapAlloc(file, rows * cols)``.
        """
        path = Path(path)
        mode = mode or self.config.mode
        advice = advice or self.config.default_advice
        record = self.config.record_traces if record_trace is None else record_trace
        trace: Optional[AccessTrace] = None
        if record:
            trace = AccessTrace(description=f"load_matrix({path.name})")
            self.last_trace = trace

        if shape is None:
            data, _, _header = open_binary_matrix(path, mode=mode)
            return MmapMatrix(
                data, source_path=path, advice=advice, trace=trace, data_offset=HEADER_SIZE
            )
        backing = mmap_alloc(path, shape, dtype=dtype, mode=mode)
        return MmapMatrix(backing, source_path=path, advice=advice, trace=trace)

    # -- introspection ---------------------------------------------------------

    def dataset_info(self, path: Union[str, Path]) -> dict:
        """Return the parsed header of a dataset file as a dictionary."""
        header = read_binary_matrix_header(path)
        return {
            "rows": header.rows,
            "cols": header.cols,
            "dtype": str(header.dtype),
            "has_labels": header.has_labels,
            "data_bytes": header.data_bytes,
            "file_bytes": header.file_bytes,
        }


_DEFAULT = M3()


def create_dataset(
    path: Union[str, Path], data: np.ndarray, labels: Optional[np.ndarray] = None
) -> Path:
    """Module-level convenience wrapper around :meth:`M3.create_dataset`."""
    return _DEFAULT.create_dataset(path, data, labels)


def open_dataset(
    path: Union[str, Path], mode: Optional[str] = None, **kwargs
) -> Tuple[MmapMatrix, Optional[np.ndarray]]:
    """Module-level convenience wrapper around :meth:`M3.open_dataset`."""
    return _DEFAULT.open_dataset(path, mode=mode, **kwargs)


def load_matrix(path: Union[str, Path], **kwargs) -> MmapMatrix:
    """Module-level convenience wrapper around :meth:`M3.load_matrix`."""
    return _DEFAULT.load_matrix(path, **kwargs)
