"""The legacy M3 facade — now a thin shim over :class:`repro.api.Session`.

The facade exists so that user code reads like Table 1 of the paper — one
helper call replaces the in-memory constructor, and everything downstream is
unchanged:

.. code-block:: python

    import repro.core as m3
    from repro.ml import LogisticRegression

    X, y = m3.open_dataset("infimnist_10gb.m3")     # memory mapped, any size
    model = LogisticRegression(max_iterations=10).fit(X, y)   # unchanged code

New code should use the unified API instead, which adds pluggable storage
backends, execution engines and per-handle lifecycle/tracing:

.. code-block:: python

    from repro.api import Session

    with Session() as session:
        dataset = session.open("mmap://infimnist_10gb.m3")
        result = session.fit(LogisticRegression(max_iterations=10), dataset)

Every method here delegates to a private :class:`~repro.api.Session`; the
old ``(matrix, labels)`` return shapes are preserved exactly.
"""

from __future__ import annotations

import threading
import warnings
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.analysis.runtime import make_lock
from repro.core.advice import AccessAdvice
from repro.core.allocator import mmap_alloc
from repro.core.config import M3Config
from repro.core.mmap_matrix import MmapMatrix
from repro.data.formats import create_binary_matrix
from repro.vmem.trace import AccessTrace


class M3:
    """High-level entry point for memory-mapped machine learning (legacy).

    A compatibility shim over :class:`repro.api.Session`: the return shapes
    of the original facade are preserved, while datasets are actually opened
    through the pluggable-backend machinery (so ``shard://`` and
    ``memory://`` specs work here too).

    Parameters
    ----------
    config:
        Runtime configuration; see :class:`~repro.core.config.M3Config`.
    """

    def __init__(self, config: Optional[M3Config] = None) -> None:
        from repro.api.session import Session

        self.config = config or M3Config()
        # Pooling is disabled: legacy callers hold bare (matrix, labels)
        # tuples and rely on garbage collection to release mappings, so
        # handles must not be shared or tracked beyond their Dataset.
        self.session = Session(self.config, handle_pool_size=0)
        self._thread_state = threading.local()

    # -- deprecated shared-trace attribute ------------------------------------

    @property
    def last_trace(self) -> Optional[AccessTrace]:
        """The trace of the most recent open on *this thread* (deprecated).

        Traces are now a property of each :class:`~repro.api.Dataset` handle
        (``dataset.trace``); this accessor remains readable for old callers
        and is thread-local rather than shared mutable state.
        """
        warnings.warn(
            "M3.last_trace is deprecated; use the per-handle Dataset.trace "
            "(or MmapMatrix.trace) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self._thread_state, "trace", None)

    @last_trace.setter
    def last_trace(self, trace: Optional[AccessTrace]) -> None:
        warnings.warn(
            "M3.last_trace is deprecated; use the per-handle Dataset.trace "
            "(or MmapMatrix.trace) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._thread_state.trace = trace

    def _remember_trace(self, trace: Optional[AccessTrace]) -> None:
        self._thread_state.trace = trace

    # -- dataset creation ------------------------------------------------------

    def create_dataset(
        self,
        path: Union[str, Path],
        data: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ) -> Path:
        """Write an in-memory matrix (and optional labels) to an M3 dataset file."""
        self.session.create(Path(path), data, labels)
        return Path(path)

    def create_empty_dataset(
        self,
        path: Union[str, Path],
        rows: int,
        cols: int,
        dtype: Union[str, np.dtype] = np.float64,
        with_labels: bool = False,
    ) -> Path:
        """Create a (sparse) dataset file to be filled by an out-of-core writer."""
        path = Path(path)
        create_binary_matrix(path, rows, cols, dtype, with_labels)
        return path

    # -- dataset opening -------------------------------------------------------

    def open_dataset(
        self,
        path: Union[str, Path],
        mode: Optional[str] = None,
        advice: Optional[AccessAdvice] = None,
        record_trace: Optional[bool] = None,
    ) -> Tuple[MmapMatrix, Optional[np.ndarray]]:
        """Open a dataset as ``(matrix, labels)`` (legacy shape).

        ``path`` may be a filesystem path or any URI-style spec the unified
        API understands (``mmap://…``, ``shard://…``, ``memory://…``).
        Prefer :meth:`repro.api.Session.open`, which returns a managed
        :class:`~repro.api.Dataset` handle instead of a bare tuple.
        """
        dataset = self.session.open(
            path if isinstance(path, (str, Path)) else Path(path),
            mode=mode,
            advice=advice,
            record_trace=record_trace,
        )
        # Legacy callers receive a bare tuple and rely on garbage collection
        # to release the mapping, so the session must not keep the handle
        # alive; and last_trace only ever reflected *recorded* opens.
        self.session.release(dataset)
        if dataset.trace is not None:
            self._remember_trace(dataset.trace)
        labels = dataset.labels
        if labels is not None:
            # The legacy shape promises a plain int64 ndarray; materialise
            # lazy label views (the sharded backend's) here so old callers
            # can keep using ndarray operators on the result.
            labels = np.asarray(labels)
        return dataset.matrix, labels

    def load_matrix(
        self,
        path: Union[str, Path],
        shape: Optional[Tuple[int, int]] = None,
        dtype: Union[str, np.dtype] = np.float64,
        mode: Optional[str] = None,
        advice: Optional[AccessAdvice] = None,
        record_trace: Optional[bool] = None,
    ) -> MmapMatrix:
        """Memory-map a matrix file (legacy).

        If ``shape`` is omitted the file must be in M3 binary format (the
        header supplies the geometry); with an explicit ``shape`` any raw
        binary file of the right size can be mapped — the direct analogue of
        the paper's ``mmapAlloc(file, rows * cols)``.
        """
        path = Path(path)
        mode = mode or self.config.mode
        advice = advice or self.config.default_advice
        record = self.config.record_traces if record_trace is None else record_trace

        if shape is None:
            matrix, _ = self.open_dataset(
                path, mode=mode, advice=advice, record_trace=record
            )
            return matrix

        trace: Optional[AccessTrace] = None
        if record:
            trace = AccessTrace(description=f"load_matrix({path.name})")
            self._remember_trace(trace)
        backing = mmap_alloc(path, shape, dtype=dtype, mode=mode)
        return MmapMatrix(backing, source_path=path, advice=advice, trace=trace)

    # -- introspection ---------------------------------------------------------

    def dataset_info(self, path: Union[str, Path]) -> dict:
        """Return the parsed header of a dataset as a dictionary.

        Works for single-file and sharded datasets; the ``backend`` key names
        the storage backend that would serve the dataset.
        """
        info = self.session.info(path if isinstance(path, (str, Path)) else Path(path))
        result = {
            "rows": info["rows"],
            "cols": info["cols"],
            "dtype": info["dtype"],
            "has_labels": info["has_labels"],
            "data_bytes": info["nbytes"],
            "backend": info["backend"],
        }
        if "file_bytes" in info:
            result["file_bytes"] = info["file_bytes"]
        if "num_shards" in info:
            result["num_shards"] = info["num_shards"]
        return result


_DEFAULT: Optional[M3] = None
_DEFAULT_LOCK = make_lock("repro.core.m3._DEFAULT_LOCK")


def _default() -> M3:
    """The lazily created facade behind the module-level helpers.

    Created on first use rather than at import time, so importing
    :mod:`repro.core` does not instantiate a session mid-way through the
    package import cycle.
    """
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = M3()
    return _DEFAULT


def create_dataset(
    path: Union[str, Path], data: np.ndarray, labels: Optional[np.ndarray] = None
) -> Path:
    """Module-level convenience wrapper around :meth:`M3.create_dataset`."""
    return _default().create_dataset(path, data, labels)


def open_dataset(
    path: Union[str, Path], mode: Optional[str] = None, **kwargs
) -> Tuple[MmapMatrix, Optional[np.ndarray]]:
    """Module-level convenience wrapper around :meth:`M3.open_dataset`."""
    return _default().open_dataset(path, mode=mode, **kwargs)


def load_matrix(path: Union[str, Path], **kwargs) -> MmapMatrix:
    """Module-level convenience wrapper around :meth:`M3.load_matrix`."""
    return _default().load_matrix(path, **kwargs)
