"""The serving client: keep-alive JSONL (or HTTP POST) against a NetServer.

:class:`NetClient` is the caller-side half of :mod:`repro.net`: it holds
one keep-alive connection, pipelines requests (``submit`` returns a
future, so a caller keeping several in flight is what the server's
micro-batcher coalesces), and decodes responses through the same
:mod:`repro.net.protocol` codec the server encodes with — including the
typed wire errors, so a remote ``ServerSaturated`` raises
``ServerSaturated`` here, not a stringly-typed lookalike.

JSONL mode (default) runs a daemon reader thread that resolves futures
in request order (the server answers in order per connection).  HTTP
mode trades pipelining for framing interoperability: each ``submit`` is
one synchronous ``POST /predict`` round trip returning an
already-completed future, so the two modes are drop-in swappable.
"""

from __future__ import annotations

import json
import socket
import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple

import numpy as np

from repro.analysis.runtime import make_lock
from repro.net import protocol
from repro.serve.server import ServerClosed

__all__ = ["NetClient", "NetResult"]


@dataclass(frozen=True)
class NetResult:
    """One served response as it crossed the wire.

    The client-side mirror of :class:`~repro.serve.server.ServeResult`:
    the same predictions and accounting, minus server-internal fields
    that never leave the process.
    """

    predictions: np.ndarray
    model_key: str
    queue_wait_ms: float
    compute_ms: float
    batch_rows: int
    id: Optional[Any] = None

    @property
    def model_name(self) -> str:
        """The registry name the serving version was published under."""
        return self.model_key.rsplit("@", 1)[0]

    @property
    def model_version(self) -> int:
        """The registry version that served the request."""
        return int(self.model_key.rsplit("@", 1)[1])

    @property
    def prediction(self) -> Any:
        """The first (for single-row requests: the only) row's prediction."""
        return self.predictions[0]


class NetClient:
    """A keep-alive client for one :class:`~repro.net.server.NetServer`.

    Parameters
    ----------
    host, port:
        The server's bound address.
    http:
        ``False`` (default): pipelined JSONL over one connection.
        ``True``: one synchronous HTTP/1.1 ``POST /predict`` per request.
    timeout_s:
        Connect timeout, the default ``predict``/``predict_one`` result
        timeout, and (HTTP mode) the per-round-trip socket timeout.
        JSONL mode reads with no socket timeout — an idle keep-alive
        connection is a normal state — and bounds callers through
        ``Future.result(timeout)`` instead.
    default_method:
        Prediction method sent when a request names none (``None`` keeps
        the server's default).
    """

    def __init__(
        self,
        host: str,
        port: int,
        http: bool = False,
        timeout_s: float = 30.0,
        default_method: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.http = http
        self.timeout_s = timeout_s
        self.default_method = default_method
        self._lock = make_lock("repro.net.client.NetClient._lock")
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        if not http:
            self._sock.settimeout(None)
        self._rfile = self._sock.makefile("rb")
        self._pending: Deque["Future[NetResult]"] = deque()
        self._closed = False
        self._reader: Optional[threading.Thread] = None
        if not http:
            self._reader = threading.Thread(
                target=self._read_loop, name="m3-net-client", daemon=True
            )
            self._reader.start()

    # -- request side --------------------------------------------------------

    def submit(
        self,
        rows: Any,
        method: Optional[str] = None,
        model: Optional[str] = None,
        request_id: Optional[Any] = None,
    ) -> "Future[NetResult]":
        """Send one request; returns a future of its :class:`NetResult`.

        In JSONL mode the future resolves when the server's in-order
        response arrives (keep several in flight to feed the server's
        micro-batcher).  In HTTP mode the round trip happens inline and
        the returned future is already completed — same call shape, no
        pipelining.
        """
        method = method if method is not None else self.default_method
        if self.http:
            future: "Future[NetResult]" = Future()
            try:
                result = self._http_roundtrip(rows, method, model, request_id)
            except Exception as error:  # noqa: BLE001 — relayed through the future, like JSONL mode
                future.set_exception(error)
            else:
                future.set_result(result)
            return future
        body = protocol.encode_request(
            rows, request_id=request_id, method=method, model=model
        )
        data = (body + "\n").encode("utf-8")
        future = Future()
        with self._lock:
            if self._closed:
                raise ServerClosed("client connection is closed")
            self._pending.append(future)
            try:
                self._sock.sendall(data)
            except OSError:
                self._pending.pop()
                raise
        return future

    def predict(
        self,
        rows: Any,
        method: Optional[str] = None,
        model: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> NetResult:
        """Serve a row or small batch synchronously (submit + wait)."""
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        return self.submit(rows, method=method, model=model).result(timeout=timeout)

    def predict_one(
        self,
        x: Any,
        method: Optional[str] = None,
        model: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> NetResult:
        """Serve one row synchronously."""
        return self.predict(x, method=method, model=model, timeout_s=timeout_s)

    # -- response side (JSONL reader thread) ---------------------------------

    def _read_loop(self) -> None:
        failure: Optional[BaseException] = None
        try:
            while True:
                line = self._rfile.readline()
                if not line:
                    break
                record = json.loads(line.decode("utf-8"))
                with self._lock:
                    future = self._pending.popleft() if self._pending else None
                if future is not None:
                    self._resolve(future, record)
        except (OSError, ValueError) as error:
            failure = error
        finally:
            with self._lock:
                leftovers = list(self._pending)
                self._pending.clear()
                self._closed = True
            relayed = (
                failure
                if failure is not None
                else ConnectionError("connection closed by the server")
            )
            for future in leftovers:
                if future.set_running_or_notify_cancel():
                    future.set_exception(relayed)

    @staticmethod
    def _resolve(future: "Future[NetResult]", record: Dict[str, Any]) -> None:
        if not future.set_running_or_notify_cancel():
            return
        if record.get("error") is not None:
            future.set_exception(protocol.exception_for_error(record["error"]))
            return
        try:
            result = _result_from(record)
        except (KeyError, TypeError, ValueError) as error:
            future.set_exception(
                protocol.ProtocolError(f"malformed response record: {error}")
            )
            return
        future.set_result(result)

    # -- HTTP mode -----------------------------------------------------------

    def _http_roundtrip(
        self,
        rows: Any,
        method: Optional[str],
        model: Optional[str],
        request_id: Optional[Any],
    ) -> NetResult:
        body = protocol.encode_request(
            rows, request_id=request_id, method=method, model=model
        )
        data = protocol.http_request_bytes(body, host=self.host, keep_alive=True)
        with self._lock:
            if self._closed:
                raise ServerClosed("client connection is closed")
            self._sock.sendall(data)
            _status, record = self._read_http_response()  # lint: caller-holds-lock
        if record.get("error") is not None:
            raise protocol.exception_for_error(record["error"])
        return _result_from(record)

    def _read_http_response(self) -> Tuple[int, Dict[str, Any]]:  # lint: caller-holds-lock
        status_line = self._rfile.readline()
        if not status_line:
            raise ConnectionError("connection closed by the server")
        parts = status_line.decode("ascii", errors="replace").split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise protocol.ProtocolError(
                f"malformed HTTP status line: {status_line!r}"
            )
        status = int(parts[1])
        header_lines = []
        while True:
            line = self._rfile.readline()
            if not line:
                raise ConnectionError("connection closed mid-response")
            if line in (b"\r\n", b"\n"):
                break
            header_lines.append(line)
        headers = protocol.parse_http_headers(header_lines)
        length = int(headers.get("content-length", "0"))
        body = self._rfile.read(length) if length else b""
        record: Dict[str, Any] = json.loads(body.decode("utf-8")) if body else {}
        return status, record

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the connection; outstanding futures fail with a
        ``ConnectionError``.  Idempotent."""
        with self._lock:
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected
        if self._reader is not None:
            self._reader.join(timeout=5.0)
        self._rfile.close()
        self._sock.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "http" if self.http else "jsonl"
        state = "closed" if self._closed else "connected"
        return f"NetClient({self.host}:{self.port}, {mode}, {state})"


def _result_from(record: Dict[str, Any]) -> NetResult:
    """Decode one response record into a :class:`NetResult`."""
    return NetResult(
        predictions=np.asarray(record["predictions"]),
        model_key=str(record["model"]),
        queue_wait_ms=float(record.get("queue_wait_ms", 0.0)),
        compute_ms=float(record.get("compute_ms", 0.0)),
        batch_rows=int(record.get("batch_rows", 0)),
        id=record.get("id"),
    )
