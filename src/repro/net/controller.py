"""Adaptive micro-batch delay: learn ``max_delay_ms`` from arrival rate.

A fixed coalesce window is a bet about traffic that is always wrong
somewhere: ``max_delay_ms=0`` dispatches underfull batches the moment a
dispatcher is free (fine under closed-loop load, wasteful for open-loop
bursts), while any positive fixed delay taxes every quiet-hour request
with latency it buys nothing for.

:class:`AdaptiveDelayController` replaces the constant with an estimate:
it keeps an EWMA of the request inter-arrival gap and sizes the window
so an underfull batch waits just long enough for the traffic *actually
arriving* to fill it — ``gap x (max_batch - 1)`` seconds, clamped to a
ceiling — and collapses to **zero** when the observed rate is too low
for waiting to gain a worthwhile batch (fewer than ``min_gain`` extra
requests expected inside a full ceiling window).  Idle traffic therefore
pays nothing; a burst coalesces into near-full batches within one
ceiling's worth of observation.

The controller is transport-agnostic: ``ModelServer`` calls
:meth:`record_arrival` on every accepted ``submit`` and reads
:meth:`delay_s` when a dispatcher opens a batch window, whether requests
arrive over a socket, stdin, or in-process calls.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.analysis.runtime import make_lock

__all__ = ["AdaptiveDelayController"]

#: Gaps above this are treated as idle pauses, not rate observations: a
#: lunch break must not poison the estimate for the first burst after it.
MAX_OBSERVED_GAP_S = 1.0


class AdaptiveDelayController:
    """EWMA arrival-rate estimator feeding ``ModelServer``'s coalesce window.

    Parameters
    ----------
    max_batch:
        The server's batch size the window should aim to fill.
    ceiling_ms:
        Hard upper clamp on the learned delay — the worst-case latency
        tax any request can pay, however bursty the traffic looks.
    alpha:
        EWMA weight of the newest inter-arrival gap (0 < alpha <= 1).
        Small values smooth over jitter; large values track rate shifts
        within a few requests.
    min_gain:
        The low-load cutoff: the learned delay drops to exactly zero
        unless a full ceiling window is expected to gather at least this
        many extra requests (``ceiling / gap >= min_gain``).
    """

    def __init__(
        self,
        max_batch: int = 256,
        ceiling_ms: float = 5.0,
        alpha: float = 0.2,
        min_gain: float = 2.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if ceiling_ms < 0:
            raise ValueError(f"ceiling_ms must be >= 0, got {ceiling_ms}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if min_gain <= 0:
            raise ValueError(f"min_gain must be > 0, got {min_gain}")
        self.max_batch = max_batch
        self.ceiling_s = ceiling_ms / 1000.0
        self.alpha = alpha
        self.min_gain = min_gain
        self._lock = make_lock("repro.net.controller.AdaptiveDelayController._lock")
        self._gap_ewma_s: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self._arrivals = 0

    def record_arrival(self, now: Optional[float] = None) -> None:
        """Fold one request arrival into the inter-arrival EWMA.

        ``now`` (a ``time.perf_counter`` timestamp) is injectable so tests
        drive deterministic arrival schedules.
        """
        if now is None:
            now = time.perf_counter()
        with self._lock:
            self._arrivals += 1
            last = self._last_arrival
            self._last_arrival = now
            if last is None:
                return
            gap = now - last
            if gap < 0.0:
                return
            if gap > MAX_OBSERVED_GAP_S:
                # An idle pause, not a rate sample: forget the old rate so
                # the next burst is measured fresh instead of being
                # averaged against the silence.
                self._gap_ewma_s = None
                return
            if self._gap_ewma_s is None:
                self._gap_ewma_s = gap
            else:
                self._gap_ewma_s += self.alpha * (gap - self._gap_ewma_s)

    def delay_s(self) -> float:
        """The learned coalesce window, in seconds (0.0 at low load).

        ``gap x (max_batch - 1)`` — the time the observed rate needs to
        fill the rest of a batch — clamped to the ceiling, or exactly
        ``0.0`` when fewer than ``min_gain`` extra requests are expected
        within a full ceiling window.
        """
        with self._lock:
            gap = self._gap_ewma_s
        if gap is None or self.ceiling_s == 0.0 or self.max_batch == 1:
            return 0.0
        if gap <= 0.0:
            # Back-to-back timestamps: traffic far faster than the clock
            # resolution fills batches without any window.
            return 0.0
        if self.ceiling_s / gap < self.min_gain:
            return 0.0
        return min(gap * (self.max_batch - 1), self.ceiling_s)

    @property
    def delay_ms(self) -> float:
        """:meth:`delay_s` in milliseconds (the knob's display unit)."""
        return self.delay_s() * 1e3

    def snapshot(self) -> Dict[str, float]:
        """Current estimator state, JSON-friendly (for stats lines and tests)."""
        with self._lock:
            gap = self._gap_ewma_s
            arrivals = self._arrivals
        return {
            "arrivals": float(arrivals),
            "gap_ewma_ms": float("nan") if gap is None else gap * 1e3,
            "delay_ms": self.delay_s() * 1e3,
            "ceiling_ms": self.ceiling_s * 1e3,
        }

    def __repr__(self) -> str:
        state = self.snapshot()
        return (
            f"AdaptiveDelayController(max_batch={self.max_batch}, "
            f"ceiling_ms={state['ceiling_ms']:.1f}, "
            f"delay_ms={state['delay_ms']:.3f})"
        )
