"""The network serving front end: a socket/HTTP transport for ``ModelServer``.

``ModelServer`` was built transport-agnostic — a bounded queue, dispatcher
threads, and futures.  :class:`NetServer` puts a wire on it: an asyncio
TCP listener (run on one dedicated event-loop thread) speaking

* **JSONL** — one request per line, one response per line, in request
  order, over a keep-alive connection (the same framing ``m3 serve``
  speaks on stdin, via :mod:`repro.net.protocol`), and
* **HTTP/1.1 POST** — one request per ``POST /predict`` body, the same
  JSON documents, with wire errors mapped to statuses (429 for
  backpressure, 400/404/405 for client bugs, 500/503 for server-side
  trouble).  ``mode="auto"`` (default) sniffs the first line per
  connection, so one port serves both framings.

Flow control is layered: per connection, at most ``max_inflight``
requests are in flight before the reader stops pulling frames (TCP
backpressure pushes back to the client); across the server, the
``ModelServer``'s own ``max_pending`` bound turns into a typed
``saturated`` wire record (HTTP 429) via ``submit(block=False)`` — the
connection stays healthy, only the overflowing request is refused.

Graceful drain (:meth:`close`, or SIGTERM via :meth:`request_shutdown` +
:meth:`serve_forever`): stop accepting connections, wake idle readers,
flush every in-flight request's response, then drain the ``ModelServer``
(which serves its queue and joins its dispatchers).  A client that keeps
pipelining through a drain gets every accepted request answered before
its connection closes.

Fault sites ``net.accept`` / ``net.read`` / ``net.write`` drop a
connection at each transport stage exactly as a reset, torn frame, or
broken pipe would — only that connection dies; the listener, the other
connections and the dispatchers keep serving.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.runtime import make_lock
from repro.faults import InjectedFault, maybe_fire
from repro.net import protocol
from repro.serve.server import ModelServer, ServeResult, ServerSaturated

__all__ = ["NetServer", "NetStats"]

#: How long close() waits for in-flight connections to flush before
#: cancelling their tasks.
DEFAULT_DRAIN_TIMEOUT_S = 10.0

#: Per-read timeout for HTTP header/body continuation bytes: a frame the
#: client started must finish arriving within this bound.
FRAME_READ_TIMEOUT_S = 30.0


@dataclass
class NetStats:
    """Transport-level accounting — the socket sibling of ``ServeStats``.

    Counts frames and connections, not batches: ``requests`` is every
    accepted frame (including ones refused with a typed error),
    ``responses`` every record actually written back, ``saturated`` the
    backpressure refusals among ``errors``.
    """

    connections: int = 0
    active: int = 0
    requests: int = 0
    responses: int = 0
    errors: int = 0
    saturated: int = 0
    dropped_connections: int = 0
    faults_injected: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-friendly summary."""
        return {
            "connections": self.connections,
            "active": self.active,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "saturated": self.saturated,
            "dropped_connections": self.dropped_connections,
            "faults_injected": self.faults_injected,
        }

    def snapshot(self) -> "NetStats":
        """An independent copy (the live object keeps accumulating)."""
        return NetStats(**self.as_dict())


class _Entry:
    """One accepted frame awaiting its in-order response."""

    __slots__ = ("future", "error", "request_id", "http", "keep_alive", "status")

    def __init__(
        self,
        future: Optional["Future[ServeResult]"] = None,
        error: Optional[BaseException] = None,
        request_id: Optional[Any] = None,
        http: bool = False,
        keep_alive: bool = True,
        status: Optional[int] = None,
    ) -> None:
        self.future = future
        self.error = error
        self.request_id = request_id
        self.http = http
        self.keep_alive = keep_alive
        #: Explicit HTTP status override (404/405); None = derive from kind.
        self.status = status


class NetServer:
    """A TCP front end (JSONL + HTTP/1.1 POST) over one :class:`ModelServer`.

    Parameters
    ----------
    server:
        The :class:`~repro.serve.server.ModelServer` requests dispatch
        through.  :meth:`close` drains it, so the usual ownership is one
        server per front end.
    host, port:
        Bind address.  ``port=0`` (the default) picks an ephemeral port;
        the bound address is in :attr:`host`/:attr:`port` once the
        constructor returns.
    mode:
        ``"auto"`` (sniff JSONL vs HTTP per connection), ``"jsonl"``, or
        ``"http"``.
    default_method:
        Prediction method for requests that name none.
    max_inflight:
        Per-connection cap on submitted-but-unanswered requests; beyond
        it the reader stops pulling frames and TCP backpressure reaches
        the client.
    max_request_bytes:
        Upper bound on one HTTP body (oversized requests get a typed
        ``bad_request`` error).
    drain_timeout_s:
        How long a graceful drain waits for in-flight connections to
        flush before cancelling them.
    """

    def __init__(
        self,
        server: ModelServer,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "auto",
        default_method: str = "predict",
        max_inflight: int = 256,
        max_request_bytes: int = 8 << 20,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    ) -> None:
        if mode not in ("auto", "jsonl", "http"):
            raise ValueError(f"mode must be 'auto', 'jsonl' or 'http', got {mode!r}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.server = server
        self.host = host
        self.port = port
        self.mode = mode
        self.default_method = default_method
        self.max_inflight = max_inflight
        self.max_request_bytes = max_request_bytes
        self.drain_timeout_s = drain_timeout_s
        self._lock = make_lock("repro.net.server.NetServer._lock")
        self._stats = NetStats()
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._conn_socks: Set[socket.socket] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._drain_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._shutdown_requested = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="m3-net-loop", daemon=True
        )
        self._thread.start()
        started = self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5.0)
            raise error
        if not started:
            raise RuntimeError(
                f"network server on {host}:{port} failed to start within 10s"
            )

    # -- event-loop thread ---------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — relayed to the starting thread
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._drain_event = asyncio.Event()
        # The accept loop is ours, not asyncio.start_server's: owning the
        # raw connection socket from the instant accept() returns is what
        # makes the drain airtight.  asyncio's internal accept task wires
        # a connection up across several loop iterations, and a teardown
        # racing those iterations discards the queued callbacks — leaking
        # an open FD whose client then blocks forever on a connection no
        # one remembers.  With the socket registered first, shutdown can
        # always force-close whatever the wiring never finished.
        lsock = socket.create_server((self.host, self.port), backlog=128)
        lsock.setblocking(False)
        sockname = lsock.getsockname()
        self.host, self.port = sockname[0], int(sockname[1])
        accept_task = asyncio.ensure_future(self._accept_loop(lsock))
        self._ready.set()
        try:
            # asyncio.Event has no timeout form; close() bounds the whole
            # loop thread with a joined deadline instead.
            await self._stop_event.wait()  # lint: disable=R005 — bounded by close()'s thread join
        finally:
            # Graceful drain: 1) stop accepting, 2) wake idle readers so
            # keep-alive connections flush their in-flight responses and
            # exit, 3) give stragglers a bounded grace, then cancel.
            accept_task.cancel()
            try:
                await accept_task
            except asyncio.CancelledError:
                pass
            lsock.close()
            self._drain_event.set()
            deadline = self._loop.time() + self.drain_timeout_s
            while True:
                with self._lock:
                    tasks = [task for task in self._conn_tasks if not task.done()]
                if not tasks:
                    break
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    for task in tasks:
                        task.cancel()
                    await asyncio.gather(*tasks, return_exceptions=True)
                    break
                await asyncio.wait(tasks, timeout=remaining)
            # Force-close any connection socket still registered: even a
            # connection whose handler was cancelled before it ever ran
            # gets its FD closed here, so no client is ever stranded on a
            # silent, never-closed socket.
            with self._lock:
                leftovers = list(self._conn_socks)
                self._conn_socks.clear()
            for conn in leftovers:
                try:
                    conn.close()
                except OSError:
                    pass
            # Transport close() finishes via call_soon callbacks; give
            # them the loop iterations they need before asyncio.run tears
            # the loop down (a closed loop never runs them).
            for _ in range(3):
                await asyncio.sleep(0)

    async def _accept_loop(self, lsock: socket.socket) -> None:
        assert self._loop is not None
        while True:
            try:
                conn, _addr = await self._loop.sock_accept(lsock)
            except OSError:
                return  # listener torn down under us by a racing close()
            conn.setblocking(False)
            task = asyncio.ensure_future(self._handle_connection(conn))
            with self._lock:
                self._conn_socks.add(conn)
                self._conn_tasks.add(task)
                self._stats.connections += 1
                self._stats.active += 1

    async def _handle_connection(self, conn: socket.socket) -> None:
        task = asyncio.current_task()
        assert self._loop is not None
        dropped = False
        injected = False
        writer: Optional[asyncio.StreamWriter] = None
        try:
            reader = asyncio.StreamReader(
                limit=self.max_request_bytes, loop=self._loop
            )
            protocol_ = asyncio.StreamReaderProtocol(reader, loop=self._loop)
            transport, _ = await self._loop.connect_accepted_socket(
                lambda: protocol_, conn
            )
            writer = asyncio.StreamWriter(transport, protocol_, reader, self._loop)
            maybe_fire("net.accept")
            await self._serve_connection(reader, writer)
        except InjectedFault:
            dropped = True
            injected = True
        except (OSError, ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            dropped = True
        finally:
            try:
                if writer is not None:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (OSError, ConnectionError):
                        pass
            finally:
                # Belt over the transport machinery: close the raw socket
                # directly (a no-op when the transport already did), even
                # if wait_closed was cancelled out from under us.
                try:
                    conn.close()
                except OSError:
                    pass
                with self._lock:
                    if task is not None:
                        self._conn_tasks.discard(task)
                    self._conn_socks.discard(conn)
                    self._stats.active -= 1
                    if dropped:
                        self._stats.dropped_connections += 1
                    if injected:
                        self._stats.faults_injected += 1

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._drain_event is not None
        pending: "asyncio.Queue[Optional[_Entry]]" = asyncio.Queue()
        inflight = asyncio.Semaphore(self.max_inflight)
        writer_task = asyncio.ensure_future(
            self._write_responses(writer, pending, inflight)
        )
        try:
            while True:
                if self._drain_event.is_set():
                    # Draining: keep consuming frames the client already
                    # pipelined into the socket, stop once it goes quiet.
                    first = await self._grace_readline(reader)
                else:
                    first = await self._read_frame_head(reader)
                if first is None:
                    break  # EOF, drain quiescence, or the drain began while idle
                maybe_fire("net.read")
                entry = await self._read_request(first, reader)
                if entry is None:
                    continue  # blank JSONL line
                await inflight.acquire()
                pending.put_nowait(entry)
                if entry.http and not entry.keep_alive:
                    break  # Connection: close — answer, then hang up
        finally:
            # Always flush: every accepted entry gets its response written
            # (drain included) before the connection handler returns.
            pending.put_nowait(None)
            await writer_task

    async def _read_frame_head(
        self, reader: asyncio.StreamReader
    ) -> Optional[bytes]:
        """The next frame's first line; ``None`` at EOF or when a drain begins.

        An idle keep-alive connection legitimately waits here for minutes,
        so the read is raced against the drain event instead of carrying
        its own deadline — close() always wins the race.
        """
        assert self._drain_event is not None
        read_task = asyncio.ensure_future(reader.readline())
        drain_task = asyncio.ensure_future(
            self._drain_event.wait()  # lint: disable=R005 — raced against the read; set by close()
        )
        done, _pending = await asyncio.wait(  # lint: disable=R005 — drain_task bounds the race
            {read_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if read_task in done:
            drain_task.cancel()
            try:
                await drain_task
            except asyncio.CancelledError:
                pass
            return read_task.result() or None
        # Drain won.  Cancelling a readline that has not completed loses
        # nothing (StreamReader only consumes the buffer once a full line
        # is there), but the readline may have completed in the window
        # since the race settled — recover that frame instead of dropping
        # it; the grace loop above picks up anything still buffered.
        read_task.cancel()
        try:
            line = await read_task
        except (asyncio.CancelledError, OSError, ConnectionError):
            return None
        return line or None

    @staticmethod
    async def _grace_readline(reader: asyncio.StreamReader) -> Optional[bytes]:
        """One more frame line during a drain, or ``None`` once quiescent.

        Requests the client pipelined before the drain began are sitting
        in socket buffers; answering them is what makes the drain
        graceful.  A short bounded wait per line distinguishes "more
        buffered frames" from "the client is done".
        """
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=0.05)
        except asyncio.TimeoutError:
            return None
        return line or None

    async def _read_request(
        self, first: bytes, reader: asyncio.StreamReader
    ) -> Optional[_Entry]:
        if self.mode == "http" or (
            self.mode == "auto" and protocol.looks_like_http(first)
        ):
            return await self._read_http_request(first, reader)
        text = first.decode("utf-8", errors="replace").strip()
        if not text:
            return None
        return self._entry_for_body(text, http=False, keep_alive=True)

    async def _read_http_request(
        self, first: bytes, reader: asyncio.StreamReader
    ) -> _Entry:
        try:
            method, path = protocol.parse_http_request_head(first)
        except protocol.ProtocolError as error:
            return self._counted(_Entry(error=error, http=True, keep_alive=False))
        header_lines: List[bytes] = []
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=FRAME_READ_TIMEOUT_S
            )
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise asyncio.IncompleteReadError(partial=b"", expected=None)
            if len(header_lines) >= 100:
                error = protocol.ProtocolError("too many HTTP headers")
                return self._counted(_Entry(error=error, http=True, keep_alive=False))
            header_lines.append(line)
        try:
            headers = protocol.parse_http_headers(header_lines)
            length = int(headers.get("content-length", "0"))
        except (protocol.ProtocolError, ValueError) as error:
            bad = protocol.ProtocolError(f"malformed HTTP headers: {error}")
            return self._counted(_Entry(error=bad, http=True, keep_alive=False))
        keep_alive = headers.get("connection", "keep-alive").strip().lower() != "close"
        if length < 0 or length > self.max_request_bytes:
            error = protocol.ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{self.max_request_bytes}-byte limit"
            )
            return self._counted(_Entry(error=error, http=True, keep_alive=False))
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=FRAME_READ_TIMEOUT_S
            )
        if method != "POST":
            error = protocol.ProtocolError(
                f"method {method} not allowed (POST a request document)"
            )
            return self._counted(
                _Entry(error=error, http=True, keep_alive=keep_alive, status=405)
            )
        if path not in ("/predict", "/"):
            error = protocol.ProtocolError(f"no such path {path!r} (use /predict)")
            return self._counted(
                _Entry(error=error, http=True, keep_alive=keep_alive, status=404)
            )
        return self._entry_for_body(
            body.decode("utf-8", errors="replace"), http=True, keep_alive=keep_alive
        )

    def _counted(self, entry: _Entry) -> _Entry:
        """Count one accepted frame (runs on the event-loop thread)."""
        with self._lock:
            self._stats.requests += 1
        return entry

    def _entry_for_body(self, text: str, http: bool, keep_alive: bool) -> _Entry:
        entry = _Entry(http=http, keep_alive=keep_alive)
        try:
            request = protocol.parse_request_line(
                text, default_method=self.default_method
            )
            entry.request_id = request.id
            # Never blocks: a full ModelServer queue surfaces as a typed
            # `saturated` record (HTTP 429) on this one request, while the
            # connection — and every other request on it — stays healthy.
            entry.future = self.server.submit(
                request.rows, method=request.method, model=request.model, block=False
            )
        except Exception as error:  # noqa: BLE001 — any submit failure becomes a typed wire error
            entry.error = error
        return self._counted(entry)

    async def _write_responses(
        self,
        writer: asyncio.StreamWriter,
        pending: "asyncio.Queue[Optional[_Entry]]",
        inflight: asyncio.Semaphore,
    ) -> None:
        """Flush responses in request order (head-of-line await per entry).

        A write failure (real or injected) marks the connection broken:
        remaining entries are still consumed — their futures complete
        server-side — but nothing more is written, and the transport is
        aborted so the reader side unblocks.
        """
        broken = False
        while True:
            entry = await pending.get()
            if entry is None:
                return
            error = entry.error
            result: Optional[ServeResult] = None
            if error is None and entry.future is not None:
                try:
                    result = await asyncio.wrap_future(entry.future)
                except Exception as request_error:  # noqa: BLE001 — relayed as a typed wire error
                    error = request_error
            if error is not None:
                record = protocol.error_record(error, entry.request_id)
                status = entry.status or protocol.status_for_kind(
                    record["error"]["kind"]
                )
            else:
                assert result is not None
                record = protocol.response_record(result, entry.request_id)
                status = 200
            if not broken:
                try:
                    maybe_fire("net.write")
                    if entry.http:
                        writer.write(
                            protocol.http_response_bytes(
                                status, record, keep_alive=entry.keep_alive
                            )
                        )
                    else:
                        writer.write(
                            (protocol.encode_record(record) + "\n").encode("utf-8")
                        )
                    await writer.drain()
                    with self._lock:
                        self._stats.responses += 1
                        if error is not None:
                            self._stats.errors += 1
                            if isinstance(error, ServerSaturated):
                                self._stats.saturated += 1
                except (OSError, ConnectionError) as write_error:
                    broken = True
                    with self._lock:
                        if isinstance(write_error, InjectedFault):
                            self._stats.faults_injected += 1
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
            inflight.release()

    # -- lifecycle (caller threads) ------------------------------------------

    def close(self) -> None:
        """Graceful drain, idempotent: stop accepting, flush in-flight
        requests, then drain the ``ModelServer`` (serve its queue, join its
        dispatchers)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        loop = self._loop
        stop = self._stop_event
        if loop is not None and stop is not None and self._thread.is_alive():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # the loop already exited on its own
        self._thread.join(timeout=self.drain_timeout_s + 10.0)
        self.server.drain()

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to begin the graceful drain.

        Async-signal-safe (sets one event): the ``m3 served`` SIGTERM /
        SIGINT handlers call this directly.
        """
        self._shutdown_requested.set()

    def serve_forever(self, poll_s: float = 0.5) -> None:
        """Block until :meth:`request_shutdown`, then :meth:`close`.

        Returns early (and still drains) if the event-loop thread dies.
        """
        while not self._shutdown_requested.wait(timeout=poll_s):
            if not self._thread.is_alive():
                break
        self.close()

    # -- introspection -------------------------------------------------------

    def stats(self) -> NetStats:
        """A snapshot of the transport-level accounting."""
        with self._lock:
            return self._stats.snapshot()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return (self.host, self.port)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has begun."""
        with self._lock:
            return self._closed

    def __enter__(self) -> "NetServer":
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "listening"
        return (
            f"NetServer({self.host}:{self.port}, mode={self.mode!r}, "
            f"{state}, on {self.server!r})"
        )
