"""The serving wire protocol: one codec for every ModelServer transport.

``m3 serve`` (stdin/stdout JSONL), :class:`repro.net.NetServer` (TCP
JSONL and HTTP/1.1 POST) and :class:`repro.net.NetClient` all frame
requests and responses through this module, so the stdin and socket
paths cannot drift: a request line means the same thing, and a response
record carries the same fields, wherever it travels.

Requests — one JSON document per line (JSONL) or per POST body (HTTP)::

    [1.5, 2.0, ...]                        # one row, default method/model
    [[...], [...]]                         # a small batch of rows
    {"id": 7, "x": [...], "method": "predict_proba", "model": "default"}

Responses mirror :class:`~repro.serve.server.ServeResult`::

    {"id": 7, "predictions": [...], "model": "default@3",
     "queue_wait_ms": 0.41, "compute_ms": 0.85, "batch_rows": 96}

Errors are **typed records**, not bare strings: the ``error`` object
names a ``kind`` (mapped to an HTTP status in POST mode), carries the
human message, and — when the failure traces back to an injected or
device fault — the fault ``site``::

    {"id": 7, "error": {"kind": "saturated", "message": "...", "site": null}}

``kind`` values and their HTTP statuses live in :data:`ERROR_STATUS`;
:func:`error_record` maps server-side exceptions onto kinds, and
:func:`exception_for_error` maps a received record back onto the same
typed exceptions (``ServerSaturated``, ``ServeError``, ...) so a
``NetClient`` caller handles a remote failure with exactly the code that
handles a local one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.serve.server import (
    DEFAULT_MODEL_NAME,
    ServeError,
    ServeResult,
    ServerClosed,
    ServerSaturated,
)

__all__ = [
    "ProtocolError",
    "RemoteError",
    "Request",
    "ERROR_STATUS",
    "parse_request",
    "parse_request_line",
    "encode_request",
    "response_record",
    "error_record",
    "error_kind",
    "error_site",
    "status_for_kind",
    "exception_for_error",
    "encode_record",
    "http_response_bytes",
    "http_request_bytes",
    "parse_http_request_head",
    "parse_http_headers",
]

#: Wire error ``kind`` -> HTTP status code for the POST transport.
ERROR_STATUS: Dict[str, int] = {
    "bad_request": 400,  # unparseable frame / malformed request document
    "model": 400,        # model-level: unknown name, bad method, shape mismatch
    "saturated": 429,    # backpressure: the bounded request queue is full
    "serve": 500,        # serving-pipeline failure (ServeError)
    "internal": 500,     # anything else — a server bug, not a client one
    "closed": 503,       # the server is draining / closed
}

_STATUS_TEXT: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A frame that does not parse as a request or response document."""


class RemoteError(RuntimeError):
    """A far-side error relayed over the wire with no richer local type.

    ``saturated``/``closed``/``serve`` records map back onto their native
    exceptions; every other ``kind`` (``bad_request``, ``model``,
    ``internal``) raises this, carrying the wire fields.
    """

    def __init__(self, kind: str, message: str, site: Optional[str] = None) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.remote_message = message
        self.site = site


@dataclass(frozen=True)
class Request:
    """One decoded predict request: rows plus routing fields.

    ``rows`` stays whatever JSON decoded to (a list, or nested lists) —
    validation and array conversion belong to ``ModelServer.submit``.
    """

    rows: Any
    id: Optional[Any] = None
    method: str = "predict"
    model: str = DEFAULT_MODEL_NAME


def parse_request(
    payload: Any,
    default_method: str = "predict",
    default_model: str = DEFAULT_MODEL_NAME,
) -> Request:
    """Decode one already-JSON-parsed request document into a :class:`Request`.

    Raises :class:`ProtocolError` for documents that are neither a bare
    array of features nor an object with an ``x`` field.
    """
    if isinstance(payload, list):
        return Request(rows=payload, method=default_method, model=default_model)
    if isinstance(payload, dict) and "x" in payload:
        method = payload.get("method", default_method)
        model = payload.get("model", default_model)
        if not isinstance(method, str):
            raise ProtocolError(f"request 'method' must be a string, got {method!r}")
        if not isinstance(model, str):
            raise ProtocolError(f"request 'model' must be a string, got {model!r}")
        return Request(
            rows=payload["x"], id=payload.get("id"), method=method, model=model
        )
    raise ProtocolError(
        "a request must be a JSON array of features or an object with an "
        "'x' field"
    )


def parse_request_line(
    line: str,
    default_method: str = "predict",
    default_model: str = DEFAULT_MODEL_NAME,
) -> Request:
    """Decode one JSONL request line (or HTTP POST body) into a :class:`Request`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from None
    return parse_request(payload, default_method=default_method, default_model=default_model)


def encode_request(
    rows: Any,
    request_id: Optional[Any] = None,
    method: Optional[str] = None,
    model: Optional[str] = None,
) -> str:
    """Encode a request as one JSON document (no trailing newline).

    Omitted fields stay off the wire, so a plain single-row request with
    server-side defaults encodes as the compact bare-array form.
    """
    if isinstance(rows, np.ndarray):
        rows = rows.tolist()
    if request_id is None and method is None and model is None:
        return json.dumps(rows)
    payload: Dict[str, Any] = {"x": rows}
    if request_id is not None:
        payload["id"] = request_id
    if method is not None:
        payload["method"] = method
    if model is not None:
        payload["model"] = model
    return json.dumps(payload)


def response_record(result: ServeResult, request_id: Optional[Any] = None) -> Dict[str, Any]:
    """The JSON-ready response record for one served request."""
    return {
        "id": request_id,
        "predictions": np.asarray(result.predictions).tolist(),
        "model": result.model_key,
        "queue_wait_ms": result.queue_wait_s * 1e3,
        "compute_ms": result.compute_s * 1e3,
        "batch_rows": result.batch_rows,
    }


def error_kind(error: BaseException) -> str:
    """The wire ``kind`` for a server-side exception (see :data:`ERROR_STATUS`)."""
    if isinstance(error, ServerSaturated):
        return "saturated"
    if isinstance(error, ServerClosed):
        return "closed"
    if isinstance(error, ServeError):
        return "serve"
    if isinstance(error, ProtocolError):
        return "bad_request"
    if isinstance(error, (KeyError, ValueError, TypeError, AttributeError)):
        # Model-level trouble: unknown model name, bad method, shape
        # mismatch — the client's bug, reported as such.
        return "model"
    return "internal"


def error_site(error: BaseException) -> Optional[str]:
    """The fault-injection ``site`` behind ``error``, if any, via the cause chain."""
    seen = 0
    current: Optional[BaseException] = error
    while current is not None and seen < 8:
        site = getattr(current, "site", None)
        if isinstance(site, str):
            return site
        current = current.__cause__
        seen += 1
    return None


def error_record(error: BaseException, request_id: Optional[Any] = None) -> Dict[str, Any]:
    """The typed JSON-ready error record for a failed request."""
    message = str(error)
    if isinstance(error, KeyError) and error.args:
        # str(KeyError("x")) is "'x'" — unhelpful on the wire.
        message = str(error.args[0])
    return {
        "id": request_id,
        "error": {
            "kind": error_kind(error),
            "message": message,
            "site": error_site(error),
        },
    }


def status_for_kind(kind: str) -> int:
    """The HTTP status for a wire error ``kind`` (500 for unknown kinds)."""
    return ERROR_STATUS.get(kind, 500)


def exception_for_error(error_payload: Any) -> BaseException:
    """Rebuild the typed exception a received error record describes.

    The client-side inverse of :func:`error_record`: ``saturated``,
    ``closed`` and ``serve`` kinds come back as their native serving
    exceptions (with ``.site`` attached when the record carries one);
    everything else raises :class:`RemoteError`.
    """
    if not isinstance(error_payload, dict):
        return RemoteError("internal", str(error_payload))
    kind = error_payload.get("kind", "internal")
    message = error_payload.get("message", "")
    site = error_payload.get("site")
    rebuilt: BaseException
    if kind == "saturated":
        rebuilt = ServerSaturated(message)
    elif kind == "closed":
        rebuilt = ServerClosed(message)
    elif kind == "serve":
        rebuilt = ServeError(message)
    else:
        return RemoteError(str(kind), str(message), site)
    if isinstance(site, str):
        rebuilt.site = site  # type: ignore[attr-defined]
    return rebuilt


def encode_record(record: Dict[str, Any]) -> str:
    """One response/error record as a JSON line body (no trailing newline)."""
    return json.dumps(record)


# -- minimal HTTP/1.1 framing -------------------------------------------------


def http_response_bytes(
    status: int, record: Dict[str, Any], keep_alive: bool = True
) -> bytes:
    """Frame one JSON record as an HTTP/1.1 response."""
    body = encode_record(record).encode("utf-8")
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


def http_request_bytes(
    body: str, host: str = "localhost", path: str = "/predict", keep_alive: bool = True
) -> bytes:
    """Frame one JSON request document as an HTTP/1.1 POST."""
    encoded = body.encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(encoded)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + encoded


def parse_http_request_head(line: bytes) -> Tuple[str, str]:
    """Split an HTTP request line into ``(method, path)``.

    Raises :class:`ProtocolError` when the line is not an HTTP/1.x
    request head.
    """
    try:
        text = line.decode("ascii").strip()
    except UnicodeDecodeError:
        raise ProtocolError("request head is not ASCII") from None
    parts = text.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed HTTP request line: {text!r}")
    return parts[0].upper(), parts[1]


def parse_http_headers(lines: List[bytes]) -> Dict[str, str]:
    """Parse raw header lines into a lower-cased name -> value dict."""
    headers: Dict[str, str] = {}
    for raw in lines:
        text = raw.decode("latin-1").strip()
        if not text:
            continue
        name, separator, value = text.partition(":")
        if not separator:
            raise ProtocolError(f"malformed HTTP header line: {text!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


_HTTP_METHODS = (b"POST ", b"GET ", b"PUT ", b"DELETE ", b"HEAD ", b"OPTIONS ", b"PATCH ")


def looks_like_http(first_line: bytes) -> bool:
    """Whether a connection's first line opens an HTTP exchange (vs JSONL)."""
    return first_line.startswith(_HTTP_METHODS)
