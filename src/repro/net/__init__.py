"""``repro.net`` — the network serving front end.

Puts a wire on :class:`~repro.serve.server.ModelServer`:

* :class:`NetServer` — an asyncio TCP listener speaking newline-delimited
  JSON and minimal HTTP/1.1 POST (``mode="auto"`` sniffs per connection),
  with keep-alive connections, per-connection backpressure, typed wire
  errors (HTTP 429 for saturation), and graceful drain on
  ``close()``/SIGTERM.
* :class:`NetClient` — the pipelining keep-alive client (JSONL futures,
  or synchronous HTTP round trips) used by tests, benchmarks and
  ``m3 predict --connect``.
* :class:`AdaptiveDelayController` — learns ``max_delay_ms`` from the
  observed arrival rate (EWMA inter-arrival estimate, clamped to a
  ceiling, exactly zero at low load) so open-loop bursts coalesce into
  full micro-batches without taxing idle traffic.
* :mod:`repro.net.protocol` — the shared request/response codec, also
  driving ``m3 serve``'s stdin loop so the stdin and socket paths cannot
  drift.
"""

from repro.net.client import NetClient, NetResult
from repro.net.controller import AdaptiveDelayController
from repro.net.protocol import ProtocolError, RemoteError
from repro.net.server import NetServer, NetStats

__all__ = [
    "AdaptiveDelayController",
    "NetClient",
    "NetResult",
    "NetServer",
    "NetStats",
    "ProtocolError",
    "RemoteError",
]
