"""Network serving under open-loop load: adaptive delay vs fixed dispatch.

The acceptance bar of the ``repro.net`` front end: under a high-rate
open-loop arrival process (requests keep coming whether or not responses
have drained — the regime closed-loop clients can never produce), the
:class:`~repro.net.AdaptiveDelayController` must sustain **>= 1.3x** the
throughput of per-request dispatch (``max_batch=1``), while at low load
its learned window collapses to zero so the p50 latency stays within 10%
(plus a scheduling-jitter epsilon) of a ``max_delay_ms=0`` server.

Three traffic shapes drive every configuration through a real socket —
``NetClient`` pipelining JSONL frames into a ``NetServer`` — because the
controller's whole premise is learning from *wire* arrival times:

* ``poisson_high`` — exponential inter-arrival gaps far above the
  single-row service rate; batching is the only way to keep up.
* ``bursty`` — back-to-back bursts separated by idle gaps, the shape
  that punishes a fixed window from both sides.
* ``poisson_low`` — arrivals slower than the adaptive cutoff, where the
  controller must get out of the way (window exactly 0).

Writes ``BENCH_net.json`` (consumed and validated by CI): per-load,
per-configuration throughput, p50/p99 client-observed latency, mean
batch rows, the adaptive controller's learned state, and the bit-identity
check against in-core ``model.predict``.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.ml import GaussianNaiveBayes
from repro.net import AdaptiveDelayController, NetClient, NetServer
from repro.serve import ModelServer

N_ROWS = 3000
N_FEATURES = 64
N_CLASSES = 100         # per-class likelihood loop = high fixed per-call cost
MAX_BATCH = 256
CEILING_MS = 5.0

HIGH_REQUESTS = 1200
HIGH_MEAN_GAP_S = 0.0001      # ~10000 offered req/s, far above 1-row service
BURSTS = 40
BURST_SIZE = 30
BURST_PAUSE_S = 0.010
LOW_REQUESTS = 150
LOW_MEAN_GAP_S = 0.010        # ~100 req/s: below the adaptive cutoff

#: Configuration name -> ModelServer coalescing knobs.
CONFIGS = ("per_request", "fixed_zero", "adaptive")


@pytest.fixture(scope="module")
def workload():
    """A fitted multi-class scorer plus its in-core predictions."""
    rng = np.random.default_rng(4242)
    X = rng.normal(size=(N_ROWS, N_FEATURES))
    y = (np.arange(N_ROWS) % N_CLASSES).astype(np.int64)
    model = GaussianNaiveBayes().fit(X, y)
    return X, model, model.predict(X)


def _assert_metrics_clean(payload: dict, prefix: str = "") -> None:
    """No emitted metric may be NaN or negative, at any nesting level."""
    for key, value in payload.items():
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            _assert_metrics_clean(value, prefix=f"{label}.")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        else:
            assert not math.isnan(value), f"{label} is NaN"
            assert value >= 0, f"{label} is negative: {value}"


def _gaps_poisson(n: int, mean_gap_s: float, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).exponential(mean_gap_s, size=n)


def _gaps_bursty() -> np.ndarray:
    """BURSTS bursts of BURST_SIZE back-to-back requests, idle in between."""
    gaps = []
    for _ in range(BURSTS):
        gaps.append(BURST_PAUSE_S)
        gaps.extend([0.0] * (BURST_SIZE - 1))
    return np.asarray(gaps)


def _build_server(config: str):
    """One (ModelServer, controller) pair per configuration under test."""
    controller = None
    if config == "per_request":
        server = ModelServer(max_batch=1, max_delay_ms=0.0, workers=1,
                             max_pending=8192)
    elif config == "fixed_zero":
        server = ModelServer(max_batch=MAX_BATCH, max_delay_ms=0.0, workers=1,
                             max_pending=8192)
    elif config == "adaptive":
        controller = AdaptiveDelayController(max_batch=MAX_BATCH,
                                             ceiling_ms=CEILING_MS)
        server = ModelServer(max_batch=MAX_BATCH, workers=1, max_pending=8192,
                             delay_controller=controller)
    else:
        raise ValueError(config)
    return server, controller


def _run_open_loop(config: str, X, model, expected, gaps) -> dict:
    """Drive one arrival schedule at one configuration over a real socket."""
    server, controller = _build_server(config)
    server.publish("default", model)
    mismatches = []
    latencies = np.zeros(len(gaps))
    done_at = np.zeros(len(gaps))
    with NetServer(server, max_inflight=4096) as net:
        with NetClient(net.host, net.port, timeout_s=120.0) as client:
            began = time.perf_counter()
            futures = []
            for i, gap in enumerate(gaps):
                if gap > 0.0:
                    time.sleep(gap)
                sent = time.perf_counter()

                def _record(future, i=i, sent=sent):
                    now = time.perf_counter()
                    latencies[i] = now - sent
                    done_at[i] = now

                future = client.submit(X[i % N_ROWS], request_id=i)
                future.add_done_callback(_record)
                futures.append(future)
            for i, future in enumerate(futures):
                result = future.result(timeout=120.0)
                if result.predictions[0] != expected[i % N_ROWS]:
                    mismatches.append((i, result.model_key))
        wall = float(done_at.max() - began)
        serve_stats = server.stats()
        # The loop thread increments `responses` after flushing each write;
        # the client's future can resolve a beat earlier, so poll briefly.
        for _ in range(100):
            net_stats = net.stats()
            if net_stats.responses >= len(gaps):
                break
            time.sleep(0.01)
    server.close()
    assert not mismatches, f"served predictions diverged: {mismatches[:5]}"
    assert net_stats.errors == 0, net_stats
    assert net_stats.responses == len(gaps), net_stats
    metrics = {
        "requests": len(gaps),
        "wall_s": wall,
        "requests_per_s": len(gaps) / wall if wall > 0 else 0.0,
        "latency_p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "latency_p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "mean_batch_rows": serve_stats.mean_batch_rows,
    }
    if controller is not None:
        snap = controller.snapshot()
        metrics["learned_delay_ms"] = snap["delay_ms"]
        gap_ewma = snap["gap_ewma_ms"]
        metrics["gap_ewma_ms"] = 0.0 if math.isnan(gap_ewma) else gap_ewma
    return metrics


@pytest.mark.benchmark(group="net")
def test_adaptive_delay_vs_fixed_dispatch(benchmark, workload):
    """Open-loop Poisson + bursty arrivals over the socket, three configs."""
    X, model, expected = workload
    loads = {
        "poisson_high": _gaps_poisson(HIGH_REQUESTS, HIGH_MEAN_GAP_S, seed=7),
        "bursty": _gaps_bursty(),
        "poisson_low": _gaps_poisson(LOW_REQUESTS, LOW_MEAN_GAP_S, seed=11),
    }

    def sweep():
        return {
            load: {
                config: _run_open_loop(config, X, model, expected, gaps)
                for config in CONFIGS
            }
            for load, gaps in loads.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    high = results["poisson_high"]
    low = results["poisson_low"]
    speedup = (
        high["adaptive"]["requests_per_s"] / high["per_request"]["requests_per_s"]
        if high["per_request"]["requests_per_s"] > 0 else 0.0
    )
    # Scheduling-jitter epsilon: at ~1ms service times, half a millisecond
    # of sleep()/wakeup noise would otherwise dominate a 10% band.
    p50_bound_ms = low["fixed_zero"]["latency_p50_ms"] * 1.10 + 0.5
    payload = {
        "workload": (
            f"GaussianNaiveBayes ({N_CLASSES} classes x {N_FEATURES} features), "
            f"open-loop JSONL over TCP, max_batch={MAX_BATCH}, "
            f"adaptive ceiling {CEILING_MS}ms"
        ),
        "loads": {
            load: {
                "offered_req_per_s": float(len(gaps) / gaps.sum())
                if gaps.sum() > 0 else 0.0,
                "configs": results[load],
            }
            for load, gaps in loads.items()
        },
        "high_load_adaptive_speedup_vs_per_request": speedup,
        "low_load_adaptive_p50_ms": low["adaptive"]["latency_p50_ms"],
        "low_load_zero_delay_p50_ms": low["fixed_zero"]["latency_p50_ms"],
        "low_load_p50_bound_ms": p50_bound_ms,
        "bit_identical_to_in_core_predict": True,  # asserted per response
    }

    # Acceptance bars: adaptive batching must beat per-request dispatch
    # under high open-loop load, by genuinely batching — and must cost
    # (within jitter) nothing at low load, because its window is 0 there.
    assert speedup >= 1.3, payload
    assert high["adaptive"]["mean_batch_rows"] > 2.0, high["adaptive"]
    assert low["adaptive"]["latency_p50_ms"] <= p50_bound_ms, payload
    assert low["adaptive"].get("learned_delay_ms", 0.0) == 0.0, low["adaptive"]

    _assert_metrics_clean(payload)
    Path("BENCH_net.json").write_text(json.dumps(payload, indent=2) + "\n")
    lines = []
    for load in results:
        offered = payload["loads"][load]["offered_req_per_s"]
        lines.append(f"{load} (~{offered:.0f} offered req/s):")
        for config in CONFIGS:
            metrics = results[load][config]
            extra = (
                f", learned window {metrics['learned_delay_ms']:.3f}ms"
                if "learned_delay_ms" in metrics else ""
            )
            lines.append(
                f"  {config:12s} {metrics['requests_per_s']:7.0f} req/s, "
                f"p50 {metrics['latency_p50_ms']:6.2f}ms / "
                f"p99 {metrics['latency_p99_ms']:7.2f}ms, "
                f"mean batch {metrics['mean_batch_rows']:.1f} rows{extra}"
            )
    lines.append(
        f"high-load adaptive vs per-request: {speedup:.2f}x; "
        f"low-load p50 {low['adaptive']['latency_p50_ms']:.2f}ms vs "
        f"bound {p50_bound_ms:.2f}ms"
    )
    emit("Network serving (adaptive delay vs fixed dispatch, open loop)",
         "\n".join(lines))
