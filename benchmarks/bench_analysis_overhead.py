"""Runtime-analysis overhead: instrumented streaming fit/predict vs baseline.

The lock-order / lease instrumentation behind ``REPRO_ANALYSIS=1`` is meant
to be cheap enough to leave on in CI: every ``make_lock``/``make_condition``
in the chunk pipeline becomes an :class:`~repro.analysis.runtime.OrderedLock`
(per-acquisition rank check + held-stack bookkeeping) and every
:class:`~repro.api.chunks.BufferLease` activation/release reports to the
global lease tracker.  The acceptance bar from the analyzer spec: streaming
fit and predict with instrumentation on must stay within **1.10x** of the
uninstrumented wall time.

Both configurations are timed best-of-``ROUNDS`` on the same on-disk sharded
workload (chunk boundaries deliberately straddle shards, so the leased buffer
path — the instrumented hot path — is exercised).  A small absolute epsilon
keeps sub-100ms timings from flaking the ratio on noisy CI machines.

Writes ``BENCH_analysis.json`` (consumed and validated by CI): wall times per
configuration, the fit/predict overhead ratios, and proof the instrumented
run really was instrumented (leases tracked, ordered locks constructed).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.runtime import GRAPH, LEASES, set_analysis_enabled
from repro.api.dataset import Dataset
from repro.api.engines import StreamingEngine
from repro.api.sharded import ShardedMatrix, write_sharded_dataset
from repro.api.storage import StorageHandle
from repro.ml import LogisticRegression

ROWS = 16000
COLS = 64
SHARDS = 8
CHUNK_ROWS = 900    # does not divide the 2000-row shards: chunks straddle
EPOCHS = 2
ROUNDS = 3          # best-of-N per configuration
PREDICT_PASSES = 5  # predict is fast; time several passes to beat noise
MAX_RATIO = 1.10    # acceptance bar: <= 1.10x the uninstrumented wall time
EPSILON_S = 0.050   # absolute slack so millisecond noise cannot flake the bar


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A sharded on-disk dataset plus a model fitted once in-core."""
    rng = np.random.default_rng(99)
    X = rng.normal(size=(ROWS, COLS))
    y = (X @ rng.normal(size=COLS) > 0).astype(np.int64)
    directory = tmp_path_factory.mktemp("bench_analysis") / "shards"
    write_sharded_dataset(directory, X, y, shard_rows=ROWS // SHARDS)
    fitted = LogisticRegression(
        max_iterations=EPOCHS, solver="sgd", chunk_size=CHUNK_ROWS, seed=0
    ).fit(X, y)
    return directory, fitted


def _open(directory) -> Dataset:
    matrix = ShardedMatrix(directory)
    return Dataset(
        StorageHandle(matrix=matrix, labels=matrix.lazy_labels),
        spec=f"shard://{directory}",
    )


def _time_streaming(directory, fitted) -> dict:
    """Best-of-ROUNDS wall times for one streaming fit and one predict."""
    # align_shards=False forces straddling chunks through the leased buffer
    # ring — the path the runtime instrumentation actually hooks.
    engine = StreamingEngine(chunk_rows=CHUNK_ROWS, io_workers=2, align_shards=False)
    fit_s = predict_s = math.inf
    for _ in range(ROUNDS):
        dataset = _open(directory)
        model = LogisticRegression(
            max_iterations=EPOCHS, solver="sgd", chunk_size=CHUNK_ROWS, seed=0
        )
        began = time.perf_counter()
        engine.fit(model, dataset)
        fit_s = min(fit_s, time.perf_counter() - began)
        dataset.close()

        dataset = _open(directory)
        began = time.perf_counter()
        for _ in range(PREDICT_PASSES):
            engine.predict(fitted, dataset)
        predict_s = min(predict_s, time.perf_counter() - began)
        dataset.close()
    return {"fit_s": fit_s, "predict_s": predict_s}


def _assert_metrics_clean(payload: dict, prefix: str = "") -> None:
    """No emitted metric may be NaN or negative, at any nesting level."""
    for key, value in payload.items():
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            _assert_metrics_clean(value, prefix=f"{label}.")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        else:
            assert not math.isnan(value), f"{label} is NaN"
            assert value >= 0, f"{label} is negative: {value}"


@pytest.mark.benchmark(group="analysis-overhead")
def test_analysis_overhead_within_budget(benchmark, workload):
    """Instrumented streaming fit/predict stays within 1.10x of baseline."""
    directory, fitted = workload

    def sweep():
        # Warm the page cache and JIT-ish lazy imports once, untimed, so the
        # baseline (measured first) doesn't eat the cold-start cost.
        _time_streaming(directory, fitted)
        baseline = _time_streaming(directory, fitted)

        previous = set_analysis_enabled(True)
        LEASES.reset()
        LEASES.enabled = True
        try:
            instrumented = _time_streaming(directory, fitted)
            leases_tracked = LEASES.activated_total
        finally:
            LEASES.enabled = False
            LEASES.reset()
            GRAPH.clear()
            set_analysis_enabled(previous)
        return baseline, instrumented, leases_tracked

    baseline, instrumented, leases_tracked = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    # The instrumented run must actually have been instrumented: straddling
    # chunks lease pooled buffers, and every lease reports to the tracker.
    assert leases_tracked > 0

    payload = {
        "rows": ROWS,
        "cols": COLS,
        "chunk_rows": CHUNK_ROWS,
        "rounds": ROUNDS,
        "max_ratio": MAX_RATIO,
        "epsilon_s": EPSILON_S,
        "baseline": baseline,
        "instrumented": instrumented,
        "leases_tracked": leases_tracked,
        "overhead": {
            phase: instrumented[f"{phase}_s"] / baseline[f"{phase}_s"]
            for phase in ("fit", "predict")
        },
    }
    _assert_metrics_clean(payload)
    Path("BENCH_analysis.json").write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "Runtime analysis overhead (streaming fit/predict)",
        "\n".join(
            f"{phase:8s} baseline {baseline[f'{phase}_s']:.3f}s  "
            f"instrumented {instrumented[f'{phase}_s']:.3f}s  "
            f"ratio {payload['overhead'][phase]:.3f}x"
            for phase in ("fit", "predict")
        ),
    )

    for phase in ("fit", "predict"):
        assert (
            instrumented[f"{phase}_s"]
            <= baseline[f"{phase}_s"] * MAX_RATIO + EPSILON_S
        ), (
            f"{phase}: instrumented {instrumented[f'{phase}_s']:.3f}s exceeds "
            f"{MAX_RATIO}x baseline {baseline[f'{phase}_s']:.3f}s"
        )
