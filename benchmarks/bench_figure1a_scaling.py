"""Figure 1a: M3 runtime vs dataset size (10–190 GB, RAM = 32 GB).

Regenerates the paper's scaling series for logistic regression (10 iterations
of L-BFGS) and checks the claims the figure makes: linear scaling on both
sides of the RAM boundary, with a steeper slope out of core.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench.figure1a import run_figure1a
from repro.bench.reporting import format_table
from repro.bench.workloads import FIGURE_1A_SIZES_GB


@pytest.mark.benchmark(group="figure1a")
def test_figure1a_scaling_series(benchmark, m3_runtime_model, lr_workload):
    """Full 10–190 GB sweep on the simulated 32 GB machine."""

    def run():
        return run_figure1a(
            sizes_gb=FIGURE_1A_SIZES_GB, model=m3_runtime_model, workload=lr_workload
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "Figure 1a — M3 runtime of 10 iterations of L-BFGS (logistic regression)",
        format_table(
            result.rows,
            columns=["size_gb", "runtime_s", "fits_in_ram", "disk_utilization", "cpu_utilization"],
        )
        + (
            f"\nin-RAM slope {result.model.in_ram_slope * 1e9:.2f} s/GB | "
            f"out-of-core slope {result.model.out_of_core_slope * 1e9:.2f} s/GB | "
            f"slowdown {result.model.slowdown_factor:.2f}x | R^2 {result.linearity_r2():.4f}"
        ),
    )

    # Paper claims: linear in both regimes, steeper out of core.
    assert result.linearity_r2() > 0.95
    assert result.model.out_of_core_slope > result.model.in_ram_slope
    runtimes = [row.runtime_s for row in result.rows]
    assert all(b > a for a, b in zip(runtimes, runtimes[1:]))


@pytest.mark.benchmark(group="figure1a")
def test_figure1a_out_of_core_point_190gb(benchmark, m3_runtime_model, lr_workload):
    """The single 190 GB point (the paper's headline M3 runtime, ≈1950 s)."""

    def run():
        return m3_runtime_model.estimate(lr_workload, 190 * 1000 ** 3)

    estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Figure 1a — 190 GB point",
        f"runtime {estimate.wall_time_s:.0f}s (paper: 1950s), "
        f"disk {estimate.disk_utilization * 100:.0f}%, cpu {estimate.cpu_utilization * 100:.0f}%",
    )
    assert 1950 / 2 < estimate.wall_time_s < 1950 * 2
