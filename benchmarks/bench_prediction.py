"""Performance prediction and energy estimation (the paper's ongoing work).

Fits the piecewise-linear runtime predictor on the small half of the
Figure 1a sweep, extrapolates to 130–190 GB, and estimates the energy of the
190 GB job on the M3 desktop vs the Spark clusters.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench.figure1a import run_figure1a
from repro.bench.figure1b import run_figure1b
from repro.bench.workloads import FIGURE_1A_SIZES_GB, PAPER_RAM_BYTES
from repro.profiling.energy import DESKTOP_I7, EC2_M3_2XLARGE_POWER, EnergyModel
from repro.profiling.predictor import PerformancePredictor


@pytest.mark.benchmark(group="prediction")
def test_runtime_prediction_extrapolates_across_ram_boundary(
    benchmark, m3_runtime_model, lr_workload
):
    def run():
        sweep = run_figure1a(
            sizes_gb=FIGURE_1A_SIZES_GB, model=m3_runtime_model, workload=lr_workload
        )
        train = [(r.dataset_bytes, r.runtime_s) for r in sweep.rows if r.size_gb <= 100]
        test = [(r.dataset_bytes, r.runtime_s) for r in sweep.rows if r.size_gb > 100]
        predictor = PerformancePredictor(ram_bytes=PAPER_RAM_BYTES)
        model = predictor.fit(train)
        return model, predictor.relative_error(model, test), test

    model, error, test = benchmark.pedantic(run, rounds=1, iterations=1)
    predictions = "\n".join(
        f"  {size / 1e9:6.0f} GB: predicted {model.predict(size):7.0f}s, measured {measured:7.0f}s"
        for size, measured in test
    )
    emit(
        "Performance prediction — fitted on <=100 GB, extrapolated beyond",
        predictions + f"\nmean relative error {error * 100:.1f}%",
    )
    assert error < 0.15


@pytest.mark.benchmark(group="prediction")
def test_energy_comparison_m3_vs_clusters(benchmark, m3_runtime_model, lr_workload, kmeans_workload):
    def run():
        figure1b = run_figure1b(
            dataset_gb=190,
            m3_model=m3_runtime_model,
            lr_workload=lr_workload,
            kmeans_workload=kmeans_workload,
        )
        m3_estimate = m3_runtime_model.estimate(lr_workload, 190 * 1000 ** 3)
        desktop = EnergyModel(DESKTOP_I7).estimate(
            figure1b.runtime("logistic_regression", "M3"),
            cpu_utilization=m3_estimate.cpu_utilization,
            disk_utilization=m3_estimate.disk_utilization,
        )
        clusters = {
            instances: EnergyModel(EC2_M3_2XLARGE_POWER, machines=instances).estimate(
                figure1b.runtime("logistic_regression", f"{instances}x Spark"),
                cpu_utilization=0.7,
                disk_utilization=0.3,
            )
            for instances in (4, 8)
        }
        return desktop, clusters

    desktop, clusters = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Energy — 190 GB logistic regression",
        (
            f"M3 desktop: {desktop.watt_hours:.0f} Wh\n"
            f"4x Spark:   {clusters[4].watt_hours:.0f} Wh\n"
            f"8x Spark:   {clusters[8].watt_hours:.0f} Wh"
        ),
    )
    assert desktop.joules < clusters[4].joules
    assert desktop.joules < clusters[8].joules
