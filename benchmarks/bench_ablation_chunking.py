"""Ablation over the streaming chunk size used by the estimators.

The chunk size trades Python/per-chunk overhead against peak resident memory;
the simulated runtime is insensitive to it (the same bytes move either way),
which is itself the result worth recording — the knob is about memory
footprint, not speed.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.bench.ablations import run_chunk_size_ablation
from repro.bench.reporting import format_table
from repro.data.synthetic import make_classification
from repro.ml import LogisticRegression

GIB = 1024 ** 3


@pytest.mark.benchmark(group="ablation-chunking")
def test_chunk_size_simulated_ablation(benchmark):
    def run():
        return run_chunk_size_ablation(
            size_gb=8, chunk_rows_options=(256, 1024, 4096, 16384), ram_bytes=4 * GIB
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — streaming chunk size (simulated 8 GB workload)",
        format_table(rows, columns=["setting", "runtime_s", "major_faults"]),
    )
    runtimes = [row.runtime_s for row in rows]
    assert max(runtimes) / min(runtimes) < 1.2


@pytest.mark.benchmark(group="ablation-chunking")
@pytest.mark.parametrize("chunk_size", [128, 1024, 8192])
def test_chunk_size_real_training_time(benchmark, chunk_size):
    """Measured (not simulated) training time as a function of chunk size."""
    X, y = make_classification(n_samples=4000, n_features=64, seed=0)

    def train():
        return LogisticRegression(max_iterations=5, chunk_size=chunk_size).fit(X, y)

    model = benchmark(train)
    assert model.score(X, y) > 0.9
