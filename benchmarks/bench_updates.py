"""Appendable datasets under load: mixed append/scan cost and delta training.

Two acceptance bars for the appendable-dataset refactor:

1. **Snapshot scans are (nearly) free under appends.**  A reader pinned to a
   manifest generation scans its snapshot while a writer commits batch after
   batch into the same directory; the scan may regress at most 10% against
   the identical scan on a quiescent (static) dataset.  Generation isolation
   means the reader never re-reads a manifest, never sees tail rewrites, and
   never blocks on the appender's lock.
2. **Delta training beats full refits.**  Catching a model up on an appended
   delta (``partial_fit`` over only the new rows, the ``m3 traind`` loop)
   must be >= 3x faster than refitting from scratch over the grown dataset —
   the whole point of tailing generations instead of re-training per commit.

As in ``bench_compression``, CI page caches make real reads free and real
appends cheap, so the storage device is modelled explicitly: every gather
charges ``SEEK_S + bytes / BANDWIDTH`` of ``time.sleep`` (GIL-releasing,
like a blocking ``read(2)``).  Scan cost is then deterministic — dominated
by the modelled device, not by CI jitter — and the delta/full ratio reflects
the rows actually streamed.

Writes ``BENCH_updates.json`` (consumed and validated by CI): scan walls and
the mixed/static ratio, delta vs full-refit walls and the speedup, plus the
bit-identity result for the snapshot scan under appends.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.api.chunks import open_chunk_stream, plan_chunks
from repro.api.sharded import (
    ShardAppender,
    ShardedMatrix,
    write_sharded_dataset,
)
from repro.ml import GaussianNaiveBayes

ROWS = 6000
COLS = 32
SHARD_ROWS = 750      # 8 shards
CHUNK_ROWS = 250
APPEND_BATCHES = 6
APPEND_ROWS = 250     # per batch
DELTA_ROWS = 1000
# Slow enough that the modelled stalls dominate the scan wall (~5 ms per
# chunk): appender CPU/fsync jitter on the other thread then costs the
# pinned reader well under the 10% bar.
SEEK_S = 0.001
BANDWIDTH = 15e6      # modelled device: ~15 MB/s (cold object store)


class ThrottledMatrix(ShardedMatrix):
    """Every gather pays the modelled device for the logical bytes."""

    def _charge(self, rows: int) -> None:
        time.sleep(SEEK_S + rows * self.manifest.cols * self.dtype.itemsize / BANDWIDTH)

    def _gather_range(self, start, stop):
        self._charge(max(0, min(stop, self.manifest.rows) - max(0, start)))
        return super()._gather_range(start, stop)

    def gather_into(self, start, stop, out):
        self._charge(max(0, min(stop, self.manifest.rows) - max(0, start)))
        return super().gather_into(start, stop, out)


def _make(rows, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(rows, COLS))
    y = (X @ np.linspace(-1.0, 1.0, COLS) > 0).astype(np.int64)
    return X, y


def _scan(matrix, labels) -> tuple[float, np.ndarray]:
    """One full pass over ``matrix``; returns (wall_s, concatenated rows)."""
    parts = []
    began = time.perf_counter()
    stream = open_chunk_stream(
        matrix, labels=labels, chunk_rows=CHUNK_ROWS, io_workers=2
    )
    with stream:
        for chunk in stream:
            parts.append(np.array(chunk.X))
            chunk.release()
    wall = time.perf_counter() - began
    return wall, np.concatenate(parts)


def _assert_metrics_clean(payload: dict, prefix: str = "") -> None:
    """No emitted metric may be NaN or negative, at any nesting level."""
    for key, value in payload.items():
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            _assert_metrics_clean(value, prefix=f"{label}.")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        elif isinstance(value, (int, float)):
            assert not math.isnan(value), f"{label} is NaN"
            assert value >= 0, f"{label} is negative: {value}"


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """The same dataset in a static and an appendable-under-load copy."""
    root = tmp_path_factory.mktemp("bench_updates")
    X, y = _make(ROWS, seed=7)
    static_dir = root / "static"
    mixed_dir = root / "mixed"
    write_sharded_dataset(static_dir, X, y, shard_rows=SHARD_ROWS)
    write_sharded_dataset(mixed_dir, X, y, shard_rows=SHARD_ROWS)
    return static_dir, mixed_dir, X, y


@pytest.mark.benchmark(group="updates")
def test_mixed_append_scan_and_delta_training(benchmark, workload):
    static_dir, mixed_dir, X, y = workload

    # -- 1. static baseline: the scan on a quiescent dataset -----------------
    def static_scan():
        with ThrottledMatrix(static_dir) as matrix:
            return _scan(matrix, matrix.lazy_labels)

    # -- 2. mixed: the same scan while a writer commits batches --------------
    def mixed_scan():
        with ThrottledMatrix(mixed_dir) as matrix:  # pins its generation
            appender = ShardAppender(mixed_dir, shard_rows=SHARD_ROWS)
            stop = threading.Event()
            offset = [ROWS]

            def writer():
                for _ in range(APPEND_BATCHES):
                    if stop.is_set():
                        return
                    Xb, yb = _make(APPEND_ROWS, seed=offset[0])
                    appender.append(Xb, yb)
                    offset[0] += APPEND_ROWS
            thread = threading.Thread(target=writer, name="bench-appender")
            thread.start()
            try:
                return _scan(matrix, matrix.lazy_labels)
            finally:
                stop.set()
                thread.join(timeout=60.0)

    def sweep():
        results = {}
        # Interleave the repeats so drift hits both variants equally;
        # best-of-N on a modelled device is stable to well under 10%.
        statics, mixeds = [], []
        for _ in range(3):
            statics.append(static_scan())
            mixeds.append(mixed_scan())
        results["static"] = min(statics, key=lambda r: r[0])
        results["mixed"] = min(mixeds, key=lambda r: r[0])
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    static_s, static_rows = results["static"]
    mixed_s, mixed_rows = results["mixed"]

    # The pinned reader saw exactly its generation's rows, bit-identically,
    # despite the appends landing mid-scan.
    assert np.array_equal(static_rows, X)
    assert np.array_equal(mixed_rows, X)

    ratio = mixed_s / static_s if static_s > 0 else float("inf")
    scan = {
        "static_s": static_s,
        "mixed_s": mixed_s,
        "mixed_over_static": ratio,
        "static_rows_per_s": ROWS / static_s if static_s > 0 else 0.0,
        "mixed_rows_per_s": ROWS / mixed_s if mixed_s > 0 else 0.0,
        "append_batches": APPEND_BATCHES,
        "append_rows": APPEND_BATCHES * APPEND_ROWS,
        "snapshot_bit_identical": bool(np.array_equal(mixed_rows, X)),
    }
    # Acceptance bar: appends may cost the pinned scan at most 10%.
    assert ratio <= 1.10, scan

    # -- 3. delta partial_fit vs full refit ----------------------------------
    # The mixed directory has grown; train the delta the way m3 traind does
    # (a row_range plan over the new generation) against a from-scratch
    # refit over everything.
    delta_dir = static_dir  # reuse the quiescent copy for determinism
    Xd, yd = _make(DELTA_ROWS, seed=1234)
    ShardAppender(delta_dir, shard_rows=SHARD_ROWS).append(Xd, yd)
    classes = np.unique(y)
    total = ROWS + DELTA_ROWS

    def stream_fit(model, row_range):
        with ThrottledMatrix(delta_dir) as matrix:
            plan = plan_chunks(matrix, chunk_rows=CHUNK_ROWS, row_range=row_range)
            stream = open_chunk_stream(
                matrix, labels=matrix.lazy_labels, plan=plan, io_workers=2
            )
            began = time.perf_counter()
            with stream:
                for chunk in stream:
                    try:
                        model.partial_fit(chunk.X, chunk.y, classes=classes)
                    finally:
                        chunk.release()
            return time.perf_counter() - began

    # Warm the delta model to the seed rows off-clock (the served model has
    # already seen them), then time only the catch-up.
    delta_model = GaussianNaiveBayes().partial_fit(X, y, classes=classes)
    delta_s = stream_fit(delta_model, (ROWS, total))
    full_s = stream_fit(GaussianNaiveBayes(), (0, total))
    speedup = full_s / delta_s if delta_s > 0 else float("inf")
    train = {
        "delta_s": delta_s,
        "full_s": full_s,
        "delta_speedup": speedup,
        "delta_rows": DELTA_ROWS,
        "total_rows": total,
    }
    # Acceptance bar: catching up on the delta beats refitting >= 3x.
    assert speedup >= 3.0, train

    payload = {
        "workload": (
            f"{ROWS} x {COLS} shard:// dataset, {APPEND_BATCHES} x "
            f"{APPEND_ROWS}-row appends under a 2-reader scan, then a "
            f"{DELTA_ROWS}-row delta catch-up vs full refit "
            f"(modelled ~{BANDWIDTH / 1e6:.0f} MB/s device)"
        ),
        "rows": ROWS,
        "chunk_rows": CHUNK_ROWS,
        "scan": scan,
        "train": train,
    }
    _assert_metrics_clean(payload)
    Path("BENCH_updates.json").write_text(json.dumps(payload, indent=2) + "\n")
    emit(
        "Appendable datasets (mixed append/scan + delta training)",
        f"scan: static {static_s * 1e3:.0f}ms, mixed {mixed_s * 1e3:.0f}ms "
        f"({ratio:.3f}x, <= 1.10 required)\n"
        f"train: delta {delta_s * 1e3:.0f}ms vs full {full_s * 1e3:.0f}ms "
        f"({speedup:.1f}x, >= 3.0 required)",
    )
