"""§3.1 finding 1: M3 is I/O bound out of core (disk ≈100 %, CPU ≈13 %)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.bench.utilization import run_utilization_experiment


@pytest.mark.benchmark(group="utilization")
def test_utilization_in_ram_vs_out_of_core(benchmark, m3_runtime_model, lr_workload):
    def run():
        return run_utilization_experiment(
            sizes_gb=[10, 40, 190], model=m3_runtime_model, workload=lr_workload
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Resource utilisation of the simulated M3 machine (paper: disk 100%, CPU ~13%)",
        format_table(
            rows,
            columns=["size_gb", "disk_utilization", "cpu_utilization", "io_bound", "wall_time_s"],
        ),
    )

    out_of_core = rows[-1]
    assert out_of_core.io_bound
    assert out_of_core.disk_utilization > 0.8
    assert out_of_core.cpu_utilization < 0.25
    # The in-RAM run is relatively more CPU-bound than the out-of-core run.
    assert rows[0].cpu_utilization > out_of_core.cpu_utilization
