"""Ablations over the page-cache design knobs (not in the paper).

The paper attributes M3's efficiency to the OS's LRU caching, read-ahead and
the possibility of faster storage (RAID 0).  These benchmarks quantify each of
those knobs in the simulator.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench.ablations import (
    run_raid_ablation,
    run_readahead_ablation,
    run_replacement_policy_ablation,
)
from repro.bench.m3_model import M3RuntimeModel
from repro.bench.reporting import format_table

GIB = 1024 ** 3


@pytest.mark.benchmark(group="ablation-pagecache")
def test_replacement_policy_ablation(benchmark):
    def run():
        return run_replacement_policy_ablation(size_gb=8, model=M3RuntimeModel(ram_bytes=4 * GIB))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — page replacement policy (8 GB scan workload, 4 GiB RAM)",
        format_table(rows, columns=["setting", "runtime_s", "major_faults", "hit_rate"]),
    )
    assert {row.setting for row in rows} == {"lru", "clock", "fifo"}
    # For a pure sequential scan larger than RAM, all policies degenerate to
    # the same fault count — the interesting signal is that none is better.
    runtimes = [row.runtime_s for row in rows]
    assert max(runtimes) / min(runtimes) < 1.5


@pytest.mark.benchmark(group="ablation-pagecache")
def test_readahead_ablation(benchmark):
    def run():
        return run_readahead_ablation(
            size_gb=2, windows=(0, 2, 8, 32), ram_bytes=512 * 1024 * 1024, page_size=64 * 1024
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — read-ahead window (2 GB scan, 512 MiB RAM, 64 KiB pages)",
        format_table(rows, columns=["setting", "runtime_s", "major_faults", "hit_rate"]),
    )
    runtimes = {row.setting: row.runtime_s for row in rows}
    assert runtimes["window=32"] < runtimes["window=0"]


@pytest.mark.benchmark(group="ablation-pagecache")
def test_raid_ablation(benchmark):
    def run():
        return run_raid_ablation(size_gb=190, raid_factors=(1, 2, 4))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — RAID 0 striping (190 GB logistic regression, the paper's suggestion)",
        format_table(rows, columns=["setting", "runtime_s", "hit_rate"]),
    )
    runtimes = [row.runtime_s for row in rows]
    assert runtimes[2] < runtimes[1] < runtimes[0]
