"""Figure 1b (right group): k-means — M3 vs 4x and 8x Spark.

Regenerates the three k-means bars of Figure 1b (10 iterations, 5 clusters,
190 GB) and checks the paper's comparative claims.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench.figure1b import run_figure1b
from repro.bench.reporting import format_table


@pytest.mark.benchmark(group="figure1b-kmeans")
def test_figure1b_kmeans(benchmark, m3_runtime_model, lr_workload, kmeans_workload):
    def run():
        return run_figure1b(
            dataset_gb=190,
            m3_model=m3_runtime_model,
            lr_workload=lr_workload,
            kmeans_workload=kmeans_workload,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [row for row in result.rows if row.workload == "kmeans"]
    emit(
        "Figure 1b — k-means (10 iterations, 5 clusters, 190 GB)",
        format_table(rows, columns=["system", "runtime_s", "paper_runtime_s"])
        + (
            f"\n4x Spark / M3 = {result.speedup_over('kmeans', '4x Spark'):.2f} (paper ~3.0) | "
            f"8x Spark / M3 = {result.speedup_over('kmeans', '8x Spark'):.2f} (paper 1.37)"
        ),
    )

    # Paper: M3 more than twice as fast as 4-instance Spark, comparable to 8-instance (1.37x).
    assert result.speedup_over("kmeans", "4x Spark") > 2.0
    assert 1.0 < result.speedup_over("kmeans", "8x Spark") < 2.0
    assert result.runtime("kmeans", "M3") < result.runtime("kmeans", "8x Spark")
    # The paper's M3 k-means runtime is 1164 s; ours should be in the same ballpark.
    assert 1164 / 2 < result.runtime("kmeans", "M3") < 1164 * 2
