"""Compressed (v2) vs raw (v1) sharded streaming on a throttled device.

The acceptance bar of the compressed shard format: on an out-of-core sharded
dataset behind a modelled ~150 MB/s device, streaming *fit* over zlib v2
shards must beat the same fit over raw v1 shards by >= 1.3x throughput —
because the readers pull ~10x fewer bytes off the device while decompression
rides the compute pool — and predictions must stay bit-identical (zlib is
lossless and float64 storage is exact).

As in ``bench_parallel_pipeline``, CI page caches make real reads free, so
the device is modelled explicitly: the throttled matrices charge every fetch
``SEEK_S + bytes / BANDWIDTH`` of ``time.sleep`` — raw shards pay for the
logical bytes, compressed shards pay only for the *coded* bytes they
actually fetch.  ``time.sleep`` releases the GIL like a blocking ``read(2)``
so reader threads overlap the stalls realistically; decode cost is not
modelled — it is the real zlib CPU burn on the decode pool.

Writes ``BENCH_compression.json`` (consumed and validated by CI): wall times
and rows/s for raw vs zlib across block sizes x fit/predict, the compression
ratio, the speedups, and the bit-identity / allocation-discipline results.
"""

from __future__ import annotations

import json
import math
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.api.chunks import ChunkBufferPool
from repro.api.dataset import Dataset
from repro.api.engines import StreamingEngine
from repro.api.sharded import (
    CompressedShardedMatrix,
    ShardedMatrix,
    write_sharded_dataset,
)
from repro.api.storage import StorageHandle
from repro.ml import LogisticRegression

ROWS = 8000
COLS = 64
SHARDS = 8            # 1000-row shards
CHUNK_ROWS = 250      # 32 chunks per pass
BLOCK_SIZES = (250, 1000)
EPOCHS = 3
SEEK_S = 0.0002       # per-fetch latency floor
BANDWIDTH = 30e6      # modelled device: ~30 MB/s (cold object store / NFS)


class ThrottledRawMatrix(ShardedMatrix):
    """v1 shards: every gather pays for the full logical bytes."""

    def _charge(self, rows: int) -> None:
        time.sleep(SEEK_S + rows * self.manifest.cols * self.dtype.itemsize / BANDWIDTH)

    def _gather_range(self, start, stop):
        self._charge(max(0, min(stop, self.manifest.rows) - max(0, start)))
        return super()._gather_range(start, stop)

    def gather_into(self, start, stop, out):
        self._charge(max(0, min(stop, self.manifest.rows) - max(0, start)))
        return super().gather_into(start, stop, out)


class ThrottledCompressedMatrix(CompressedShardedMatrix):
    """v2 shards: fetches pay only for the coded bytes pulled off storage."""

    def _charge_bytes(self, nbytes: int) -> None:
        time.sleep(SEEK_S + nbytes / BANDWIDTH)

    def fetch_compressed(self, start, stop):
        fetched = super().fetch_compressed(start, stop)
        self._charge_bytes(fetched.compressed_bytes)
        return fetched

    def _gather_range(self, start, stop):
        self._charge_bytes(self.compressed_bytes_for(start, stop))
        return super()._gather_range(start, stop)


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """The same compressible dataset written raw and as zlib v2 variants."""
    rng = np.random.default_rng(99)
    # Small-integer features: realistic for count/categorical data and
    # compressible (~10x under zlib) — random doubles would not compress.
    X = rng.integers(0, 4, size=(ROWS, COLS)).astype(np.float64)
    scores = X @ rng.normal(size=COLS)
    y = (scores > np.median(scores)).astype(np.int64)
    root = tmp_path_factory.mktemp("bench_compression")
    raw_dir = root / "raw"
    write_sharded_dataset(raw_dir, X, y, shard_rows=ROWS // SHARDS)
    zlib_dirs = {}
    for block_rows in BLOCK_SIZES:
        directory = root / f"zlib-{block_rows}"
        write_sharded_dataset(directory, X, y, shard_rows=ROWS // SHARDS,
                              codec="zlib", block_rows=block_rows)
        zlib_dirs[block_rows] = directory
    model = LogisticRegression(
        max_iterations=EPOCHS, solver="sgd", chunk_size=CHUNK_ROWS, seed=0
    ).fit(X, y)
    return raw_dir, zlib_dirs, X, y, model


def _open(directory, compressed: bool) -> Dataset:
    matrix = (ThrottledCompressedMatrix if compressed else ThrottledRawMatrix)(directory)
    return Dataset(
        StorageHandle(matrix=matrix, labels=matrix.lazy_labels),
        spec=f"shard://{directory}",
    )


def _engine(**overrides) -> StreamingEngine:
    options = dict(chunk_rows=CHUNK_ROWS, io_workers=2, compute_workers=2)
    options.update(overrides)
    return StreamingEngine(**options)


def _assert_metrics_clean(payload: dict, prefix: str = "") -> None:
    """No emitted metric may be NaN or negative, at any nesting level."""
    for key, value in payload.items():
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            _assert_metrics_clean(value, prefix=f"{label}.")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        elif isinstance(value, (int, float)):
            assert not math.isnan(value), f"{label} is NaN"
            assert value >= 0, f"{label} is negative: {value}"


@pytest.mark.benchmark(group="compression")
def test_compressed_streaming_throughput(benchmark, workload):
    """raw vs zlib x block sizes x fit/predict on the modelled device."""
    raw_dir, zlib_dirs, X, y, fitted = workload

    def run_fit(directory, compressed):
        dataset = _open(directory, compressed)
        model = LogisticRegression(
            max_iterations=EPOCHS, solver="sgd", chunk_size=CHUNK_ROWS, seed=0
        )
        result = _engine().fit(model, dataset)
        dataset.close()
        return result

    def run_predict(directory, compressed):
        dataset = _open(directory, compressed)
        result = _engine().predict(fitted, dataset)
        dataset.close()
        return result

    def sweep():
        results = {"fit": {}, "predict": {}}
        results["fit"]["raw"] = run_fit(raw_dir, compressed=False)
        results["predict"]["raw"] = run_predict(raw_dir, compressed=False)
        for block_rows, directory in zlib_dirs.items():
            results["fit"][block_rows] = run_fit(directory, compressed=True)
            results["predict"][block_rows] = run_predict(directory, compressed=True)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Bit-identity: zlib-on-float64 is lossless, so every compressed
    # configuration serves exactly the in-core predictions.
    expected = fitted.predict(X)
    for label, result in results["predict"].items():
        assert np.array_equal(result.predictions, expected), label
    # And every configuration learns the identical model.
    raw_coef = results["fit"]["raw"].model.coef_
    for label, result in results["fit"].items():
        np.testing.assert_array_equal(result.model.coef_, raw_coef, err_msg=str(label))

    rows_trained = ROWS * EPOCHS
    payload = {
        "workload": (
            f"LogisticRegression sgd on {SHARDS}-shard shard:// "
            f"({ROWS} x {COLS} small-int features, {EPOCHS} epochs, "
            f"modelled ~{BANDWIDTH / 1e6:.0f} MB/s device)"
        ),
        "rows": ROWS,
        "shards": SHARDS,
        "chunk_rows": CHUNK_ROWS,
    }
    for phase, rows_done in (("fit", rows_trained), ("predict", ROWS)):
        raw_wall = results[phase]["raw"].wall_time_s
        payload[phase] = {
            "raw_wall_s": raw_wall,
            "raw_rows_per_s": rows_done / raw_wall if raw_wall > 0 else 0.0,
        }
        for block_rows in BLOCK_SIZES:
            result = results[phase][block_rows]
            wall = result.wall_time_s
            details = result.details
            key = f"zlib_block_{block_rows}"
            payload[phase][f"{key}_wall_s"] = wall
            payload[phase][f"{key}_rows_per_s"] = (
                rows_done / wall if wall > 0 else 0.0
            )
            payload[phase][f"{key}_speedup"] = raw_wall / wall if wall > 0 else 0.0
            payload[phase][f"{key}_ratio"] = details.get("ratio") or 0.0
            payload[phase][f"{key}_decode_s"] = details.get("decode_s", 0.0)

    # Acceptance bar: chunk-matched blocks stream fit >= 1.3x over raw.
    best_fit = max(
        payload["fit"][f"zlib_block_{b}_speedup"] for b in BLOCK_SIZES
    )
    assert best_fit >= 1.3, payload["fit"]
    # The modelled device only saw the coded bytes: the ratio must be real.
    assert payload["fit"][f"zlib_block_{BLOCK_SIZES[0]}_ratio"] > 2.0

    _assert_metrics_clean(payload)
    Path("BENCH_compression.json").write_text(json.dumps(payload, indent=2) + "\n")
    emit(
        "Compressed shard streaming (zlib v2 vs raw v1)",
        "\n".join(
            f"{phase}: raw {payload[phase]['raw_rows_per_s']:.0f} rows/s, "
            + ", ".join(
                f"zlib/{b} {payload[phase][f'zlib_block_{b}_speedup']:.2f}x"
                for b in BLOCK_SIZES
            )
            for phase in ("fit", "predict")
        ),
    )


@pytest.mark.benchmark(group="compression")
def test_compressed_predict_allocation_free(benchmark, workload):
    """Decode lands in the preallocated ring: peak allocation stays bounded."""
    _raw_dir, zlib_dirs, X, _y, fitted = workload
    block_rows = BLOCK_SIZES[0]
    pool = ChunkBufferPool(
        buffers=4, chunk_rows=CHUNK_ROWS, n_cols=COLS,
        dtype=np.float64, label_dtype=np.int64,
    )
    engine = _engine(buffer_pool=pool)

    def serve():
        dataset = _open(zlib_dirs[block_rows], compressed=True)
        tracemalloc.start()
        result = engine.predict(fitted, dataset)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        dataset.close()
        return result, peak

    result, peak = benchmark.pedantic(serve, rounds=1, iterations=1)
    assert np.array_equal(result.predictions, fitted.predict(X))
    assert pool.leases_served > pool.buffers  # the ring actually recycled
    assert pool.available == pool.buffers     # every lease came home
    output_bytes = result.predictions.nbytes
    chunk_bytes = CHUNK_ROWS * COLS * 8
    # The bound: the ring, the output buffer, coded payloads in flight and a
    # few chunks of scratch — never the decoded matrix (~4 MB).
    budget = pool.nbytes + output_bytes + 8 * chunk_bytes
    assert peak <= budget, f"peak {peak} exceeds budget {budget}"
    emit(
        "Compressed predict allocation bound",
        f"peak traced allocation {peak / 1e6:.2f} MB <= budget "
        f"{budget / 1e6:.2f} MB (ring {pool.nbytes / 1e6:.2f} MB, "
        f"{pool.leases_served} leases served)",
    )
