"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one of the paper's result artifacts and prints the
corresponding rows/series (run ``pytest benchmarks/ --benchmark-only -s`` to
see them).  The heavy simulations are executed exactly once per benchmark via
``benchmark.pedantic`` so the suite stays fast while still recording timings.
"""

from __future__ import annotations

import pytest

from repro.bench.m3_model import M3RuntimeModel


def emit(title: str, body: str) -> None:
    """Print a benchmark's reproduced table under a clear heading."""
    print(f"\n=== {title} ===")
    print(body)


@pytest.fixture(scope="session")
def m3_runtime_model() -> M3RuntimeModel:
    """The paper-scale M3 machine model (32 GB RAM, PCIe SSD), shared."""
    return M3RuntimeModel()


@pytest.fixture(scope="session")
def lr_workload(m3_runtime_model):
    """The calibrated L-BFGS logistic-regression workload (calibrated once)."""
    return m3_runtime_model.logistic_regression_workload()


@pytest.fixture(scope="session")
def kmeans_workload(m3_runtime_model):
    """The calibrated k-means workload."""
    return m3_runtime_model.kmeans_workload()
