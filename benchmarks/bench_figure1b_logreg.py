"""Figure 1b (left group): logistic regression — M3 vs 4x and 8x Spark.

Regenerates the three logistic-regression bars of Figure 1b at the paper's
190 GB scale and checks the paper's comparative claims.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench.figure1b import run_figure1b
from repro.bench.reporting import format_table


@pytest.mark.benchmark(group="figure1b-logreg")
def test_figure1b_logistic_regression(benchmark, m3_runtime_model, lr_workload, kmeans_workload):
    def run():
        return run_figure1b(
            dataset_gb=190,
            m3_model=m3_runtime_model,
            lr_workload=lr_workload,
            kmeans_workload=kmeans_workload,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [row for row in result.rows if row.workload == "logistic_regression"]
    emit(
        "Figure 1b — logistic regression (10 iterations of L-BFGS, 190 GB)",
        format_table(rows, columns=["system", "runtime_s", "paper_runtime_s"])
        + (
            f"\n4x Spark / M3 = {result.speedup_over('logistic_regression', '4x Spark'):.2f} "
            f"(paper 4.2) | 8x Spark / M3 = "
            f"{result.speedup_over('logistic_regression', '8x Spark'):.2f} (paper ~1.47)"
        ),
    )

    # Paper: M3 significantly faster than 4-instance Spark, comparable to 8-instance.
    assert result.speedup_over("logistic_regression", "4x Spark") > 2.5
    assert 1.0 < result.speedup_over("logistic_regression", "8x Spark") < 2.2
    m3 = result.runtime("logistic_regression", "M3")
    assert result.runtime("logistic_regression", "8x Spark") > m3
    assert result.runtime("logistic_regression", "4x Spark") > result.runtime(
        "logistic_regression", "8x Spark"
    )
