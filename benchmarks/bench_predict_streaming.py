"""Streaming-vs-local inference over the chunk pipeline.

The serving half of the streaming story: ``session.predict(...,
engine="streaming")`` must produce *bit-identical* predictions to the in-core
``model.predict`` while holding only one chunk of input rows (plus the
prefetcher's buffers) — that is what makes serving a sharded dataset larger
than RAM viable at all.

This benchmark times the same fitted model through ``engine="local"`` and
``engine="streaming"`` on the sharded backend, verifies the outputs are
bit-identical for both ``predict`` and ``predict_proba``, and writes
``BENCH_predict_streaming.json`` (consumed and validated by the CI benchmark
smoke job): wall times, serving throughput, and the chunk pipeline's read /
I/O-wait / compute accounting.  Every emitted metric is asserted finite and
non-negative here as well, so a NaN regression fails the benchmark itself,
not just the CI validator.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.api import Session
from repro.ml import LogisticRegression


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """A sharded dataset plus a model fitted once, shared by the benchmarks."""
    rng = np.random.default_rng(321)
    X = rng.normal(size=(6000, 64))
    y = (X @ rng.normal(size=64) > 0).astype(np.int64)
    tmp_path = tmp_path_factory.mktemp("bench_predict")
    session = Session()
    spec = f"shard://{tmp_path}/serve_shards"
    session.create(spec, X, y, shard_rows=1024)
    model = session.fit(
        LogisticRegression(max_iterations=5, solver="sgd", chunk_size=1024, seed=0),
        session.open(spec),
    ).model
    yield session, spec, model, X
    session.close()


def _assert_metrics_clean(payload: dict) -> None:
    """No emitted metric may be NaN or negative (None = honest 'undefined')."""
    for key, value in payload.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        assert not math.isnan(value), f"{key} is NaN"
        assert value >= 0, f"{key} is negative: {value}"


@pytest.mark.benchmark(group="streaming")
def test_streaming_vs_local_predict(benchmark, serving_setup):
    """Serve the same model through the local and the streaming engine."""
    session, spec, model, X = serving_setup

    def serve_both():
        # The streaming engine sizes chunks from the model's chunk_size
        # (1024), matching the shard size — every chunk is a zero-copy view.
        results = {}
        for engine in ("local", "streaming"):
            dataset = session.open(spec)
            results[engine] = session.predict(dataset, model, engine=engine)
        return results

    results = benchmark.pedantic(serve_both, rounds=1, iterations=1)
    local, streaming = results["local"], results["streaming"]

    # Acceptance bar: bit-identical serving across engines.
    assert np.array_equal(local.predictions, model.predict(np.asarray(X)))
    assert np.array_equal(streaming.predictions, local.predictions)

    proba = session.predict(
        session.open(spec), model, method="predict_proba", engine="streaming"
    )
    assert np.array_equal(proba.predictions, model.predict_proba(np.asarray(X)))

    details = streaming.details
    rows = streaming.n_rows
    payload = {
        "workload": "LogisticRegression.predict on shard:// (6000 x 64)",
        "rows": rows,
        "local_wall_time_s": local.wall_time_s,
        "streaming_wall_time_s": streaming.wall_time_s,
        "streaming_rows_per_s": (
            rows / streaming.wall_time_s if streaming.wall_time_s > 0 else 0.0
        ),
        "chunks": details["chunks"],
        "chunk_rows": details["chunk_rows"],
        "bytes_read": details["bytes_read"],
        "read_s": details["read_s"],
        "io_wait_s": details["io_wait_s"],
        "compute_s": details["compute_s"],
        "io_overlap": details["io_overlap"],
    }
    _assert_metrics_clean(payload)
    assert details["chunks"] > 0 and details["bytes_read"] == rows * 64 * 8
    if payload["io_overlap"] is not None:
        assert 0.0 <= payload["io_overlap"] <= 1.0
    Path("BENCH_predict_streaming.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(
        "Streaming vs local inference (sharded backend)",
        "\n".join(f"{key}: {value}" for key, value in payload.items()),
    )
