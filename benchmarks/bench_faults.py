"""Fault-injection overhead: armed-but-silent plan vs the zero-cost gate.

The injection sites are always compiled into the pipeline; robustness that
only exists in a special build protects nothing.  What keeps that honest is
the overhead budget measured here, in two configurations over the same
on-disk streaming fit:

* **disabled** — no plan active: each site costs one function call and a
  ``None`` check (the zero-cost gate);
* **armed** — every site armed with ``p=0``: the full plan path runs on
  every check (lock, RNG draw, budget accounting) but never fires — the
  worst case that is still a no-op.

The acceptance bar from the robustness spec: the armed-but-silent fit stays
within **1.03x** of the disabled fit.  Sites sit at block/lease/commit
granularity — never per row — which is what makes this budget holdable.

Writes ``BENCH_faults.json`` (consumed and validated by CI): wall times per
configuration, the overhead ratio, and proof the armed run really consulted
the plan (per-site check counts).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.api.dataset import Dataset
from repro.api.engines import StreamingEngine
from repro.api.sharded import ShardedMatrix, write_sharded_dataset
from repro.api.storage import StorageHandle
from repro.faults import FaultPlan, FaultRule, fault_sites, set_fault_plan
from repro.ml import LogisticRegression

ROWS = 16000
COLS = 64
SHARDS = 8
CHUNK_ROWS = 900    # straddles the 2000-row shards: leases + gathers both hot
EPOCHS = 2
ROUNDS = 3          # best-of-N per configuration
MAX_RATIO = 1.03    # acceptance bar: <= 1.03x the disabled wall time
EPSILON_S = 0.050   # absolute slack so millisecond noise cannot flake the bar


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    rng = np.random.default_rng(42)
    X = rng.normal(size=(ROWS, COLS))
    y = (X @ rng.normal(size=COLS) > 0).astype(np.int64)
    directory = tmp_path_factory.mktemp("bench_faults") / "shards"
    write_sharded_dataset(directory, X, y, shard_rows=ROWS // SHARDS)
    return directory


def _open(directory) -> Dataset:
    matrix = ShardedMatrix(directory)
    return Dataset(
        StorageHandle(matrix=matrix, labels=matrix.lazy_labels),
        spec=f"shard://{directory}",
    )


def _time_fit(directory) -> float:
    engine = StreamingEngine(chunk_rows=CHUNK_ROWS, io_workers=2, align_shards=False)
    best = math.inf
    for _ in range(ROUNDS):
        dataset = _open(directory)
        model = LogisticRegression(
            max_iterations=EPOCHS, solver="sgd", chunk_size=CHUNK_ROWS, seed=0
        )
        began = time.perf_counter()
        engine.fit(model, dataset)
        best = min(best, time.perf_counter() - began)
        dataset.close()
    return best


def _silent_plan() -> FaultPlan:
    """Every site armed, probability zero: checks run, nothing ever fires."""
    return FaultPlan(
        [FaultRule(site=site, probability=0.0, count=None) for site in fault_sites()]
    )


@pytest.mark.benchmark(group="faults-overhead")
def test_fault_sites_overhead_within_budget(benchmark, workload):
    """An armed-but-silent fault plan stays within 1.03x of the gate."""
    directory = workload

    def sweep():
        _time_fit(directory)  # warm the page cache untimed
        disabled_s = _time_fit(directory)
        plan = _silent_plan()
        previous = set_fault_plan(plan)
        try:
            armed_s = _time_fit(directory)
        finally:
            set_fault_plan(previous)
        return disabled_s, armed_s, plan.stats()

    disabled_s, armed_s, site_stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    checks = sum(entry["checked"] for entry in site_stats.values())
    fired = sum(entry["fired"] for entry in site_stats.values())
    assert checks > 0, "the armed run never consulted the plan"
    assert fired == 0, "a p=0 plan must never fire"

    ratio = armed_s / disabled_s
    payload = {
        "rows": ROWS,
        "cols": COLS,
        "chunk_rows": CHUNK_ROWS,
        "rounds": ROUNDS,
        "max_ratio": MAX_RATIO,
        "epsilon_s": EPSILON_S,
        "disabled_fit_s": disabled_s,
        "armed_fit_s": armed_s,
        "overhead_ratio": ratio,
        "site_checks": checks,
        "sites_armed": len(site_stats),
    }
    for key, value in payload.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            assert not math.isnan(value), f"{key} is NaN"
            assert value >= 0, f"{key} is negative: {value}"
    Path("BENCH_faults.json").write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "Fault-injection site overhead (streaming fit)",
        f"disabled {disabled_s:.3f}s  armed-silent {armed_s:.3f}s  "
        f"ratio {ratio:.3f}x  ({checks} site checks, 0 fired)",
    )

    assert armed_s <= disabled_s * MAX_RATIO + EPSILON_S, (
        f"armed-but-silent fit {armed_s:.3f}s exceeds {MAX_RATIO}x "
        f"disabled fit {disabled_s:.3f}s"
    )
