"""Cluster-size scaling: how many Spark instances does it take to beat M3?

An extension of Figure 1b along the axis the paper's discussion raises
("using more Spark instances will increase speed, but ... additional
overhead"): sweep 2–32 instances and locate the crossover.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.bench.scaling import run_cluster_scaling


@pytest.mark.benchmark(group="cluster-scaling")
def test_cluster_scaling_crossover_logistic_regression(benchmark, m3_runtime_model, lr_workload):
    def run():
        return run_cluster_scaling(
            dataset_gb=190,
            instance_counts=(2, 4, 8, 16, 32),
            workload="logistic_regression",
            m3_model=m3_runtime_model,
            m3_workload=lr_workload,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Cluster scaling — logistic regression, 190 GB (extension of Figure 1b)",
        format_table(
            result.rows,
            columns=["system", "instances", "runtime_s", "relative_to_m3", "cached_fraction"],
        )
        + f"\ncrossover: Spark first beats M3 at {result.crossover_instances} instances",
    )

    # The paper's observations embedded as assertions:
    # 4 instances are far slower than M3, 8 are comparable; somewhere beyond
    # 8 instances the cluster finally wins — but never by the core-count ratio.
    assert result.runtime_for(4) > 2.5 * result.m3_runtime_s
    assert result.crossover_instances is not None
    assert result.crossover_instances > 8
    # Diminishing returns: doubling 16 -> 32 instances gains far less than 2x.
    assert result.runtime_for(16) / result.runtime_for(32) < 2.0


@pytest.mark.benchmark(group="cluster-scaling")
def test_cluster_scaling_crossover_kmeans(benchmark, m3_runtime_model, kmeans_workload):
    def run():
        return run_cluster_scaling(
            dataset_gb=190,
            instance_counts=(2, 4, 8, 16),
            workload="kmeans",
            m3_model=m3_runtime_model,
            m3_workload=kmeans_workload,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Cluster scaling — k-means, 190 GB",
        format_table(
            result.rows,
            columns=["system", "instances", "runtime_s", "relative_to_m3", "cached_fraction"],
        )
        + f"\ncrossover: Spark first beats M3 at {result.crossover_instances} instances",
    )
    assert result.runtime_for(4) > 2.0 * result.m3_runtime_s
    assert result.crossover_instances is None or result.crossover_instances > 8
