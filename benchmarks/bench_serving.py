"""Request-level serving: micro-batched ModelServer vs a naive predict loop.

The acceptance bar of the serving redesign: under 16 concurrent closed-loop
clients, the micro-batching :class:`~repro.serve.ModelServer` must sustain
**>= 3x** the throughput of a naive per-request predict loop (one in-core
``model.predict`` call per request) — while every served prediction stays
bit-identical to the in-core prediction for that row.

Why this is winnable at all: single-row inference pays the model's per-call
*fixed* cost (array dispatch, per-class ufunc setup) on every request, while
the server's dispatcher coalesces whatever requests are queued into one
batched call, amortising that fixed cost across the batch.  The workload is
a 30-class Gaussian naive Bayes — per-call cost dominated by the per-class
likelihood loop, exactly the profile of a real multi-class scorer — and the
clients are *closed-loop* (each waits for its response before sending the
next request), the hardest case for a batcher because the queue refills only
as fast as responses drain.

Writes ``BENCH_serving.json`` (consumed and validated by CI): naive-loop
throughput, server throughput / speedup / mean batch size / p50+p99
queue-wait at 1, 4 and 16 concurrent clients, and the bit-identity check
result.  Every metric is asserted finite and non-negative here as well.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.ml import GaussianNaiveBayes
from repro.serve import ModelServer

N_ROWS = 3000
N_FEATURES = 256
N_CLASSES = 30      # per-class likelihood loop = high fixed per-call cost
REQUESTS = 2000     # total requests per configuration
CLIENT_COUNTS = (1, 4, 16)
MAX_BATCH = 256


@pytest.fixture(scope="module")
def workload():
    """A fitted multi-class scorer plus its in-core predictions."""
    rng = np.random.default_rng(4242)
    X = rng.normal(size=(N_ROWS, N_FEATURES))
    y = (np.arange(N_ROWS) % N_CLASSES).astype(np.int64)
    model = GaussianNaiveBayes().fit(X, y)
    return X, model, model.predict(X)


def _assert_metrics_clean(payload: dict, prefix: str = "") -> None:
    """No emitted metric may be NaN or negative, at any nesting level."""
    for key, value in payload.items():
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            _assert_metrics_clean(value, prefix=f"{label}.")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        else:
            assert not math.isnan(value), f"{label} is NaN"
            assert value >= 0, f"{label} is negative: {value}"


def _run_naive_loop(X, model, expected) -> float:
    """The baseline: one in-core predict call per request, sequentially."""
    began = time.perf_counter()
    for i in range(REQUESTS):
        row = i % N_ROWS
        prediction = model.predict(X[row : row + 1])
        assert prediction[0] == expected[row]
    return time.perf_counter() - began


def _run_server(X, model, expected, clients: int):
    """Closed-loop clients hammering predict_one; returns (wall_s, stats)."""
    per_client = REQUESTS // clients
    mismatches = []
    with ModelServer(max_batch=MAX_BATCH, max_delay_ms=0.0, workers=1) as server:
        server.publish("default", model)

        def client(index: int) -> None:
            for j in range(per_client):
                row = (index * per_client + j) % N_ROWS
                result = server.predict_one(X[row])
                # Bit-identity per response, against the in-core prediction.
                if result.predictions[0] != expected[row]:
                    mismatches.append((row, result.model_key))

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(clients)
        ]
        began = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - began
        stats = server.stats()
    assert not mismatches, f"served predictions diverged from in-core: {mismatches[:5]}"
    assert stats.requests == per_client * clients
    return wall, stats


@pytest.mark.benchmark(group="serving")
def test_micro_batched_serving_throughput(benchmark, workload):
    """Naive per-request loop vs the server at 1/4/16 concurrent clients."""
    X, model, expected = workload

    def sweep():
        naive_s = _run_naive_loop(X, model, expected)
        per_clients = {
            clients: _run_server(X, model, expected, clients)
            for clients in CLIENT_COUNTS
        }
        return naive_s, per_clients

    naive_s, per_clients = benchmark.pedantic(sweep, rounds=1, iterations=1)

    naive_rate = REQUESTS / naive_s if naive_s > 0 else 0.0
    payload = {
        "workload": (
            f"GaussianNaiveBayes ({N_CLASSES} classes x {N_FEATURES} features), "
            f"{REQUESTS} single-row requests, closed-loop clients, "
            f"max_batch={MAX_BATCH}, greedy dispatch"
        ),
        "requests": REQUESTS,
        "naive_loop": {
            "wall_s": naive_s,
            "requests_per_s": naive_rate,
        },
        "bit_identical_to_in_core_predict": True,  # asserted per response
    }
    for clients, (wall, stats) in per_clients.items():
        served = stats.requests
        rate = served / wall if wall > 0 else 0.0
        payload[f"clients_{clients}"] = {
            "wall_s": wall,
            "requests_per_s": rate,
            "speedup_vs_naive": rate / naive_rate if naive_rate > 0 else 0.0,
            "batches": stats.batches,
            "mean_batch_rows": stats.mean_batch_rows,
            "queue_wait_p50_ms": stats.queue_wait_percentile(50) * 1e3,
            "queue_wait_p99_ms": stats.queue_wait_percentile(99) * 1e3,
        }

    # Acceptance bar: >= 3x the naive loop's throughput at 16 clients, and
    # the batcher must genuinely batch (not just win on thread scheduling).
    assert payload["clients_16"]["speedup_vs_naive"] >= 3.0, payload["clients_16"]
    assert payload["clients_16"]["mean_batch_rows"] > 2.0, payload["clients_16"]

    _assert_metrics_clean(payload)
    Path("BENCH_serving.json").write_text(json.dumps(payload, indent=2) + "\n")
    emit(
        "Request-level serving (micro-batched server vs naive loop)",
        f"naive loop: {naive_rate:.0f} req/s\n"
        + "\n".join(
            f"{clients:2d} client(s): "
            f"{payload[f'clients_{clients}']['requests_per_s']:.0f} req/s "
            f"({payload[f'clients_{clients}']['speedup_vs_naive']:.2f}x, "
            f"mean batch {payload[f'clients_{clients}']['mean_batch_rows']:.1f} rows, "
            f"queue-wait p50 {payload[f'clients_{clients}']['queue_wait_p50_ms']:.2f}ms / "
            f"p99 {payload[f'clients_{clients}']['queue_wait_p99_ms']:.2f}ms)"
            for clients in CLIENT_COUNTS
        ),
    )


@pytest.mark.benchmark(group="serving")
def test_hot_swap_costs_no_downtime(benchmark, workload):
    """Requests keep flowing, and keep matching a published version, across
    repeated hot-swaps."""
    X, model, expected = workload
    y2 = ((np.arange(N_ROWS) + 1) % N_CLASSES).astype(np.int64)  # permuted labels
    retrained = GaussianNaiveBayes().fit(X, y2)
    by_version = {1: expected, 2: retrained.predict(X)}

    def run():
        errors = []
        with ModelServer(max_batch=64, max_delay_ms=0.0) as server:
            server.publish("default", model)
            stop = threading.Event()

            def hammer():
                i = 0
                while not stop.is_set():
                    row = i % N_ROWS
                    result = server.predict_one(X[row])
                    version = 1 if result.model_version % 2 == 1 else 2
                    if result.predictions[0] != by_version[version][row]:
                        errors.append(result.model_key)
                    i += 1

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for _ in range(20):  # land 20 hot-swaps under load
                server.publish("default", retrained if _ % 2 == 0 else model)
                time.sleep(0.002)
            stop.set()
            for thread in threads:
                thread.join()
            stats = server.stats()
        return errors, stats

    errors, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not errors, errors[:5]
    assert stats.errors == 0
    assert stats.requests > 0
    emit(
        "Hot-swap under load",
        f"{stats.requests} requests served across 20 hot-swaps, "
        f"0 errors, 0 mismatches",
    )
