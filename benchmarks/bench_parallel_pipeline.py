"""Multi-reader vs single-reader streaming over the parallel chunk pipeline.

The acceptance bar of the parallel I/O refactor: on a sharded out-of-core
dataset, fanning the chunk reads across a reader pool must beat the PR 3
single-reader prefetch pipeline by >= 1.3x throughput for *both* streaming
fit and streaming predict — while predictions stay bit-identical to in-core
and peak memory stays bounded by the preallocated buffer ring.

CI machines keep small test datasets entirely in page cache, where mmap reads
cost microseconds and no reader pool can show its worth.  The benchmark
therefore models the *device* explicitly: :class:`ThrottledShardedMatrix`
charges every gather a seek latency plus bytes/bandwidth (a ~200 MB/s NVMe-ish
profile), implemented as a real ``time.sleep`` — which releases the GIL
exactly like a blocking ``read(2)``, so reader threads genuinely overlap the
stalls the way they overlap real device waits.  Everything else (chunk
planning, buffer pool, reorder buffer, partial_fit, predict) runs for real.

Writes ``BENCH_parallel.json`` (consumed and validated by CI): wall times and
rows/s for 1/2/4 readers x fit/predict, the speedups over the single-reader
baseline, and the bit-identity / memory-bound check results.  Every metric is
asserted finite and non-negative here as well, so a NaN regression fails the
benchmark itself, not just the CI validator.
"""

from __future__ import annotations

import json
import math
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.api.chunks import ChunkBufferPool
from repro.api.dataset import Dataset
from repro.api.engines import StreamingEngine
from repro.api.sharded import ShardedMatrix, write_sharded_dataset
from repro.api.storage import StorageHandle
from repro.ml import LogisticRegression

ROWS = 6000
COLS = 64
SHARDS = 8          # >= 4-shard out-of-core layout
CHUNK_ROWS = 250    # 24 chunks per pass
EPOCHS = 3
SEEK_S = 0.0002     # per-gather latency floor
BANDWIDTH = 200e6   # modelled device: ~200 MB/s sequential


class ThrottledShardedMatrix(ShardedMatrix):
    """A ShardedMatrix whose gathers pay a modelled device latency.

    ``time.sleep`` releases the GIL like a blocking device read, so parallel
    readers overlap these stalls exactly as they overlap real I/O waits.
    """

    def _charge(self, rows: int) -> None:
        time.sleep(SEEK_S + rows * self.manifest.cols * self.dtype.itemsize / BANDWIDTH)

    def _gather_range(self, start, stop):
        self._charge(max(0, min(stop, self.manifest.rows) - max(0, start)))
        return super()._gather_range(start, stop)

    def gather_into(self, start, stop, out):
        self._charge(max(0, min(stop, self.manifest.rows) - max(0, start)))
        return super().gather_into(start, stop, out)


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A sharded dataset on disk plus a model fitted once in-core."""
    rng = np.random.default_rng(1234)
    X = rng.normal(size=(ROWS, COLS))
    y = (X @ rng.normal(size=COLS) > 0).astype(np.int64)
    directory = tmp_path_factory.mktemp("bench_parallel") / "shards"
    write_sharded_dataset(directory, X, y, shard_rows=ROWS // SHARDS)
    model = LogisticRegression(
        max_iterations=EPOCHS, solver="sgd", chunk_size=CHUNK_ROWS, seed=0
    ).fit(X, y)
    return directory, X, y, model


def _open_throttled(directory) -> Dataset:
    matrix = ThrottledShardedMatrix(directory)
    return Dataset(
        StorageHandle(matrix=matrix, labels=matrix.lazy_labels),
        spec=f"shard://{directory}",
    )


def _engine(io_workers) -> StreamingEngine:
    return StreamingEngine(chunk_rows=CHUNK_ROWS, io_workers=io_workers)


def _assert_metrics_clean(payload: dict, prefix: str = "") -> None:
    """No emitted metric may be NaN or negative, at any nesting level."""
    for key, value in payload.items():
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            _assert_metrics_clean(value, prefix=f"{label}.")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        elif isinstance(value, (int, float)):
            assert not math.isnan(value), f"{label} is NaN"
            assert value >= 0, f"{label} is negative: {value}"


@pytest.mark.benchmark(group="parallel-pipeline")
def test_parallel_pipeline_throughput(benchmark, workload):
    """1/2/4 readers x fit/predict vs the single-reader baseline."""
    directory, X, y, fitted = workload

    def run_fit(io_workers):
        dataset = _open_throttled(directory)
        model = LogisticRegression(
            max_iterations=EPOCHS, solver="sgd", chunk_size=CHUNK_ROWS, seed=0
        )
        result = _engine(io_workers).fit(model, dataset)
        dataset.close()
        return result

    def run_predict(io_workers):
        dataset = _open_throttled(directory)
        result = _engine(io_workers).predict(fitted, dataset)
        dataset.close()
        return result

    def sweep():
        results = {"fit": {}, "predict": {}}
        # io_workers=None is the PR 3 single-reader prefetch baseline.
        for label, io_workers in (("baseline", None), (1, 1), (2, 2), (4, 4)):
            results["fit"][label] = run_fit(io_workers)
            results["predict"][label] = run_predict(io_workers)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Bit-identity: every configuration serves the in-core predictions.
    expected = fitted.predict(X)
    for label, result in results["predict"].items():
        assert np.array_equal(result.predictions, expected), label
    # Plan-order re-emission: every configuration learns the same model.
    baseline_coef = results["fit"]["baseline"].model.coef_
    for label, result in results["fit"].items():
        np.testing.assert_array_equal(result.model.coef_, baseline_coef, err_msg=str(label))

    rows_trained = ROWS * EPOCHS
    payload = {
        "workload": (
            f"LogisticRegression sgd on {SHARDS}-shard shard:// "
            f"({ROWS} x {COLS}, {EPOCHS} epochs, modelled ~200 MB/s device)"
        ),
        "rows": ROWS,
        "shards": SHARDS,
        "chunk_rows": CHUNK_ROWS,
    }
    for phase, rows_done in (("fit", rows_trained), ("predict", ROWS)):
        base_wall = results[phase]["baseline"].wall_time_s
        payload[phase] = {
            "baseline_wall_s": base_wall,
            "baseline_rows_per_s": rows_done / base_wall if base_wall > 0 else 0.0,
        }
        for readers in (1, 2, 4):
            result = results[phase][readers]
            wall = result.wall_time_s
            payload[phase][f"readers_{readers}_wall_s"] = wall
            payload[phase][f"readers_{readers}_rows_per_s"] = (
                rows_done / wall if wall > 0 else 0.0
            )
            payload[phase][f"readers_{readers}_speedup"] = (
                base_wall / wall if wall > 0 else 0.0
            )
            payload[phase][f"readers_{readers}_hints"] = (
                result.details["hints_applied"]
            )
        payload[phase]["io_overlap_readers_4"] = (
            results[phase][4].details["io_overlap"] or 0.0
        )

    # Acceptance bar: >= 1.3x throughput for multi-reader fit AND predict.
    assert payload["fit"]["readers_4_speedup"] >= 1.3, payload["fit"]
    assert payload["predict"]["readers_4_speedup"] >= 1.3, payload["predict"]

    _assert_metrics_clean(payload)
    Path("BENCH_parallel.json").write_text(json.dumps(payload, indent=2) + "\n")
    emit(
        "Parallel chunk pipeline (multi-reader vs single-reader)",
        "\n".join(
            f"{phase}: baseline {payload[phase]['baseline_rows_per_s']:.0f} rows/s, "
            + ", ".join(
                f"{r} readers {payload[phase][f'readers_{r}_speedup']:.2f}x"
                for r in (1, 2, 4)
            )
            for phase in ("fit", "predict")
        ),
    )


@pytest.mark.benchmark(group="parallel-pipeline")
def test_parallel_predict_memory_bounded_by_buffer_pool(benchmark, workload):
    """Peak allocation on the stitched-chunk path stays under ring + output."""
    directory, X, _, fitted = workload
    # 400-row chunks over 750-row shards: most chunks straddle a boundary,
    # so (with alignment off) they flow through the buffer ring.
    straddling_rows = 400
    pool = ChunkBufferPool(
        buffers=4, chunk_rows=straddling_rows, n_cols=COLS,
        dtype=np.float64, label_dtype=np.int64,
    )
    engine = StreamingEngine(
        chunk_rows=straddling_rows, align_shards=False,
        io_workers=4, compute_workers=2, buffer_pool=pool,
    )

    def serve():
        dataset = _open_throttled(directory)
        tracemalloc.start()
        result = engine.predict(fitted, dataset)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        dataset.close()
        return result, peak

    result, peak = benchmark.pedantic(serve, rounds=1, iterations=1)
    assert np.array_equal(result.predictions, fitted.predict(X))
    assert pool.leases_served > pool.buffers  # the ring actually recycled
    output_bytes = result.predictions.nbytes
    chunk_bytes = straddling_rows * COLS * 8
    # The bound: the preallocated ring, the output buffer, and a few chunks
    # of transient per-worker scratch — never the stitched matrix (~3 MB).
    budget = pool.nbytes + output_bytes + 6 * chunk_bytes
    assert peak <= budget, f"peak {peak} exceeds budget {budget}"
    assert pool.available == pool.buffers  # every lease came home
    emit(
        "Parallel predict memory bound",
        f"peak traced allocation {peak / 1e6:.2f} MB <= budget {budget / 1e6:.2f} MB "
        f"(ring {pool.nbytes / 1e6:.2f} MB, {pool.leases_served} leases served)",
    )
