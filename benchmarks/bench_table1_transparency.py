"""Table 1: transparency of M3 — minimal code change, identical results, low overhead.

Two benchmarks:

* the Table 1 experiment itself (train the same estimator on in-memory and
  memory-mapped copies of a dataset, count changed lines, compare models);
* a direct measurement of M3's runtime overhead at laptop scale — the same
  training run timed on an in-memory array and on the memory-mapped file
  (with a warm page cache the two should be close; this is the measurable
  content of "minimal modifications to existing code" having no hidden cost).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core as m3
from benchmarks.conftest import emit
from repro.bench.table1 import run_table1
from repro.data.writers import write_infimnist_dataset
from repro.ml import LogisticRegression


@pytest.mark.benchmark(group="table1")
def test_table1_transparency(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: run_table1(tmp_path, n_samples=3000, n_features=64), rounds=1, iterations=1
    )
    emit(
        "Table 1 — code change and model equality",
        (
            f"lines changed: {result.lines_changed} of {result.total_lines}\n"
            f"max |coef delta|: {result.max_coef_difference:.2e}\n"
            f"predictions identical: {result.predictions_identical}\n"
            f"accuracy in-memory {result.in_memory_accuracy:.4f} vs "
            f"memory-mapped {result.mmap_accuracy:.4f}"
        ),
    )
    assert result.transparent
    assert result.lines_changed == 1


@pytest.mark.benchmark(group="table1")
def test_table1_inmemory_training_baseline(benchmark, tmp_path):
    """Wall time of training on an in-memory array (baseline for the overhead check)."""
    path = tmp_path / "table1_overhead.m3"
    write_infimnist_dataset(path, num_examples=2000, seed=0)
    X_map, y_map = m3.open_dataset(path)
    X = np.asarray(X_map).copy()
    y = (np.asarray(y_map) >= 5).astype(np.int64)

    def train():
        return LogisticRegression(max_iterations=5).fit(X, y)

    model = benchmark(train)
    assert model.score(X, y) > 0.7


@pytest.mark.benchmark(group="table1")
def test_table1_memory_mapped_training(benchmark, tmp_path):
    """Wall time of the identical training run through the memory map."""
    path = tmp_path / "table1_overhead_mmap.m3"
    write_infimnist_dataset(path, num_examples=2000, seed=0)
    X_map, y_map = m3.open_dataset(path)
    y = (np.asarray(y_map) >= 5).astype(np.int64)

    def train():
        return LogisticRegression(max_iterations=5).fit(X_map, y)

    model = benchmark(train)
    assert model.score(X_map, y) > 0.7
