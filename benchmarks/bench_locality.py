"""Access-pattern locality of the algorithms (the paper's ongoing-work study).

Records the *actual* access traces of two training runs on a real memory-
mapped dataset — chunked L-BFGS logistic regression (sequential scans) and
shuffled mini-batch SGD (randomised batch order) — and analyses them with the
reuse-distance machinery: sequentiality, working set, and the RAM needed for
the page cache to absorb 90 % of accesses.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core as m3
from benchmarks.conftest import emit
from repro.data.writers import write_infimnist_dataset
from repro.ml import LogisticRegression
from repro.vmem.locality import analyze_trace

PAGE_64K = 64 * 1024


def _record_trace(tmp_path, solver: str, shuffle_seed=None):
    path = tmp_path / f"locality_{solver}.m3"
    write_infimnist_dataset(path, num_examples=1500, seed=0)
    runtime = m3.M3(m3.M3Config(record_traces=True, chunk_rows=128))
    X, y = runtime.open_dataset(path)
    labels = (np.asarray(y) >= 5).astype(np.int64)
    model = LogisticRegression(
        max_iterations=3, solver=solver, chunk_size=128, seed=shuffle_seed
    )
    model.fit(X, labels)
    return X.trace


@pytest.mark.benchmark(group="locality")
def test_locality_of_lbfgs_is_sequential(benchmark, tmp_path):
    trace = _record_trace(tmp_path, solver="lbfgs")

    report = benchmark.pedantic(
        lambda: analyze_trace(trace, page_size=PAGE_64K, working_set_window=256),
        rounds=1,
        iterations=1,
    )
    emit(
        "Locality — L-BFGS logistic regression (chunked full-batch scans)",
        (
            f"pattern: {report.access_pattern} "
            f"(sequential fraction {report.sequential_fraction:.2f})\n"
            f"distinct pages {report.distinct_pages}, accesses {report.total_page_accesses}\n"
            f"RAM for 90% hit ratio: "
            f"{(report.ram_for_90_percent_hits_bytes or 0) / 1e6:.1f} MB"
        ),
    )
    assert report.access_pattern == "sequential"
    # L-BFGS re-scans the data every evaluation, so reuse is high and a cache
    # holding the dataset absorbs (almost) all accesses.
    assert report.compulsory_miss_ratio < 0.3


@pytest.mark.benchmark(group="locality")
def test_locality_comparison_sgd(benchmark, tmp_path):
    trace = _record_trace(tmp_path, solver="sgd", shuffle_seed=0)

    report = benchmark.pedantic(
        lambda: analyze_trace(trace, page_size=PAGE_64K, working_set_window=256),
        rounds=1,
        iterations=1,
    )
    emit(
        "Locality — SGD logistic regression (mini-batches)",
        (
            f"pattern: {report.access_pattern} "
            f"(sequential fraction {report.sequential_fraction:.2f})\n"
            f"distinct pages {report.distinct_pages}, accesses {report.total_page_accesses}"
        ),
    )
    # SGD still touches the whole file each epoch; its pattern remains
    # mapping-friendly (sequential or mixed, never fully random).
    assert report.access_pattern in ("sequential", "mixed")
