"""Storage-backend overhead of the unified Session API.

The redesign's promise is that the `Dataset`/`Session` indirection is free:
training through `session.fit` on any backend must produce the identical
model, and the per-backend overhead at laptop scale must stay small (the
memory backend is the floor; mmap adds page-cache traffic; sharding adds
chunk stitching at shard boundaries).  This benchmark times the same
logistic-regression workload through all three backends and prints the
resulting coefficients' maximum divergence (which must be zero).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.api import Session
from repro.ml import LogisticRegression


@pytest.fixture(scope="module")
def backend_specs(tmp_path_factory):
    rng = np.random.default_rng(123)
    X = rng.normal(size=(6000, 64))
    y = (X @ rng.normal(size=64) > 0).astype(np.int64)
    tmp_path = tmp_path_factory.mktemp("bench_backends")
    session = Session()
    session.create("memory://bench", X, y)
    session.create(f"mmap://{tmp_path}/bench.m3", X, y)
    session.create(f"shard://{tmp_path}/bench_shards", X, y, shard_rows=1024)
    specs = {
        "memory": "memory://bench",
        "mmap": f"mmap://{tmp_path}/bench.m3",
        "shard": f"shard://{tmp_path}/bench_shards",
    }
    yield session, specs
    session.close()


@pytest.mark.benchmark(group="backends")
@pytest.mark.parametrize("backend", ["memory", "mmap", "shard"])
def test_backend_training_overhead(benchmark, backend_specs, backend):
    session, specs = backend_specs

    def train():
        dataset = session.open(specs[backend])
        return session.fit(LogisticRegression(max_iterations=10), dataset)

    result = benchmark.pedantic(train, rounds=1, iterations=1)
    emit(
        f"Session.fit through the {backend} backend",
        (
            f"wall time: {result.wall_time_s:.3f}s\n"
            f"engine: {result.engine}\n"
            f"final loss: {result.model.result_.value:.6f}"
        ),
    )
    assert hasattr(result.model, "coef_")


@pytest.mark.benchmark(group="backends")
def test_backend_transparency(benchmark, backend_specs):
    session, specs = backend_specs

    def train_all():
        coefs = {}
        for backend, spec in specs.items():
            dataset = session.open(spec)
            result = session.fit(LogisticRegression(max_iterations=10), dataset)
            coefs[backend] = result.model.coef_
        return coefs

    coefs = benchmark.pedantic(train_all, rounds=1, iterations=1)
    deltas = {
        backend: float(np.max(np.abs(coef - coefs["memory"])))
        for backend, coef in coefs.items()
    }
    emit(
        "Transparency across storage backends (max |coef - coef(memory)|)",
        "\n".join(f"{backend}: {delta:.2e}" for backend, delta in deltas.items()),
    )
    assert all(delta == 0.0 for delta in deltas.values())
