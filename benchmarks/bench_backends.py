"""Storage-backend overhead of the unified Session API.

The redesign's promise is that the `Dataset`/`Session` indirection is free:
training through `session.fit` on any backend must produce the identical
model, and the per-backend overhead at laptop scale must stay small (the
memory backend is the floor; mmap adds page-cache traffic; sharding adds
chunk stitching at shard boundaries).  This benchmark times the same
logistic-regression workload through all three backends and prints the
resulting coefficients' maximum divergence (which must be zero).

The streaming-vs-local comparison additionally writes ``BENCH_streaming.json``
(consumed by the CI benchmark smoke job): wall time of the same SGD workload
through ``engine="local"`` and ``engine="streaming"`` on the sharded backend,
plus the chunk pipeline's read / I/O-wait / compute accounting, so regressions
in the prefetch overlap are visible as data, not vibes.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.api import Session
from repro.ml import LogisticRegression


@pytest.fixture(scope="module")
def backend_specs(tmp_path_factory):
    rng = np.random.default_rng(123)
    X = rng.normal(size=(6000, 64))
    y = (X @ rng.normal(size=64) > 0).astype(np.int64)
    tmp_path = tmp_path_factory.mktemp("bench_backends")
    session = Session()
    session.create("memory://bench", X, y)
    session.create(f"mmap://{tmp_path}/bench.m3", X, y)
    session.create(f"shard://{tmp_path}/bench_shards", X, y, shard_rows=1024)
    specs = {
        "memory": "memory://bench",
        "mmap": f"mmap://{tmp_path}/bench.m3",
        "shard": f"shard://{tmp_path}/bench_shards",
    }
    yield session, specs
    session.close()


@pytest.mark.benchmark(group="backends")
@pytest.mark.parametrize("backend", ["memory", "mmap", "shard"])
def test_backend_training_overhead(benchmark, backend_specs, backend):
    session, specs = backend_specs

    def train():
        dataset = session.open(specs[backend])
        return session.fit(LogisticRegression(max_iterations=10), dataset)

    result = benchmark.pedantic(train, rounds=1, iterations=1)
    emit(
        f"Session.fit through the {backend} backend",
        (
            f"wall time: {result.wall_time_s:.3f}s\n"
            f"engine: {result.engine}\n"
            f"final loss: {result.model.result_.value:.6f}"
        ),
    )
    assert hasattr(result.model, "coef_")


@pytest.mark.benchmark(group="backends")
def test_backend_transparency(benchmark, backend_specs):
    session, specs = backend_specs

    def train_all():
        coefs = {}
        for backend, spec in specs.items():
            dataset = session.open(spec)
            result = session.fit(LogisticRegression(max_iterations=10), dataset)
            coefs[backend] = result.model.coef_
        return coefs

    coefs = benchmark.pedantic(train_all, rounds=1, iterations=1)
    deltas = {
        backend: float(np.max(np.abs(coef - coefs["memory"])))
        for backend, coef in coefs.items()
    }
    emit(
        "Transparency across storage backends (max |coef - coef(memory)|)",
        "\n".join(f"{backend}: {delta:.2e}" for backend, delta in deltas.items()),
    )
    assert all(delta == 0.0 for delta in deltas.values())


@pytest.mark.benchmark(group="streaming")
def test_streaming_vs_local(benchmark, backend_specs):
    """Same SGD workload through the local and the streaming engine.

    Trains on the sharded backend (the streaming engine's target workload),
    checks the two engines learn equivalent models, and emits
    ``BENCH_streaming.json`` with wall times plus the chunk pipeline's
    I/O-wait vs compute accounting.
    """
    session, specs = backend_specs
    model_args = dict(max_iterations=5, solver="sgd", chunk_size=1024, seed=0)

    def train_both():
        results = {}
        for engine in ("local", "streaming"):
            dataset = session.open(specs["shard"])
            results[engine] = session.fit(
                LogisticRegression(**model_args), dataset, engine=engine
            )
        return results

    results = benchmark.pedantic(train_both, rounds=1, iterations=1)
    local, streaming = results["local"], results["streaming"]
    coef_delta = float(np.max(np.abs(local.model.coef_ - streaming.model.coef_)))
    details = streaming.details
    payload = {
        "workload": "LogisticRegression(solver='sgd', 5 epochs) on shard://",
        "local_wall_time_s": local.wall_time_s,
        "streaming_wall_time_s": streaming.wall_time_s,
        "max_coef_delta_vs_local": coef_delta,
        "chunks": details["chunks"],
        "chunk_rows": details["chunk_rows"],
        "passes": details["passes"],
        "bytes_read": details["bytes_read"],
        "read_s": details["read_s"],
        "io_wait_s": details["io_wait_s"],
        "compute_s": details["compute_s"],
        "io_overlap": details["io_overlap"],
    }
    Path("BENCH_streaming.json").write_text(json.dumps(payload, indent=2) + "\n")
    emit(
        "Streaming vs local engine (sharded backend)",
        "\n".join(f"{key}: {value}" for key, value in payload.items()),
    )
    # Shard-aligned chunking keeps the SGD batch sequence identical here
    # (shard_rows=1024 == chunk_size), so the models must agree tightly.
    assert coef_delta < 1e-8
    assert details["chunks"] > 0 and details["bytes_read"] > 0
